//! Shard equivalence suite: the parameter server partitioned across N
//! model shards must be invisible to training semantics. `--shards 1` is
//! the unsharded protocol verbatim (bitwise identical on the
//! deterministic simulator), higher shard counts complete and learn on
//! all three backends, and the hot-standby failover path promotes a
//! sharded mirror exactly like a single-shard one.

use lc_asgd::prelude::*;
use lc_asgd::simcluster::{ClusterSim, SimPayload};

fn task() -> (Dataset, Dataset) {
    lc_asgd::data::synth::blobs_split(4, 6, 30, 12, 0.5, 37)
}

fn cfg(algo: Algorithm, workers: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(algo, workers, Scale::Tiny, 29);
    cfg.epochs = 10;
    cfg.batch_size = 10;
    cfg.lr = lc_asgd::nn::optimizer::LrSchedule::constant(0.1);
    cfg
}

fn build(rng: &mut Rng) -> lc_asgd::nn::Network {
    lc_asgd::nn::mlp::mlp(&[6, 16, 4], false, rng)
}

/// `shards == 1` must not perturb the run at all: same message schedule,
/// same RNG draws, same floats. Compared bitwise against the plain
/// (pre-sharding) driver on the deterministic simulator, for both the
/// fused ASGD push and LC-ASGD's two-phase exchange.
#[test]
fn single_shard_is_bitwise_identical_to_unsharded_on_sim() {
    let (train, test) = task();
    for algo in [Algorithm::Asgd, Algorithm::LcAsgd] {
        let c = cfg(algo, 4);
        let base = run_cluster(ClusterSim::new(c.cluster.clone()), &c, &build, &train, &test)
            .expect("unsharded sim run failed");
        let one = run_cluster_with(
            ClusterSim::new(c.cluster.clone()),
            &c,
            &build,
            &train,
            &test,
            RunOptions::default().shards(1),
        )
        .expect("shards=1 sim run failed");
        assert_eq!(one.shards, 1, "{algo}");
        assert_eq!(base.staleness, one.staleness, "{algo}: staleness stream must be identical");
        assert_eq!(base.iterations, one.iterations, "{algo}");
        for (b, o) in base.epochs.iter().zip(&one.epochs) {
            assert_eq!(b.time, o.time, "{algo}: epoch {} virtual time", b.epoch);
        }
        if algo == Algorithm::Asgd {
            // The fused ASGD path is a pure function of the schedule:
            // hold every float to bitwise equality.
            assert_eq!(
                base.final_test_error(),
                one.final_test_error(),
                "final error must be bitwise identical"
            );
            for (b, o) in base.epochs.iter().zip(&one.epochs) {
                assert_eq!(b.train_loss, o.train_loss, "epoch {} loss", b.epoch);
                assert_eq!(b.test_error, o.test_error, "epoch {} error", b.epoch);
            }
        } else {
            // LC-ASGD's step predictor ingests *measured* wall times
            // (t_comm/t_comp) even on the simulator, so its floats
            // wobble in the low bits between any two runs of the same
            // binary (cf. sim_failover_is_bit_reproducible pinning ASGD,
            // not LC). The schedule assertions above are the sharding
            // claim; the learning outcome only has to agree closely.
            assert!(
                (base.final_test_error() - one.final_test_error()).abs() < 0.05,
                "final error drifted: {} vs {}",
                base.final_test_error(),
                one.final_test_error()
            );
        }
    }
}

/// Sharded runs are pure reorderings of the same arithmetic: every
/// backend must reach the same applied-update target and learn the task,
/// and the simulator must be bit-reproducible at every shard count.
#[test]
fn sharded_runs_complete_on_all_three_backends() {
    let (train, test) = task();
    let c = cfg(Algorithm::Asgd, 4);
    let target = c.epochs * train.len().div_ceil(c.batch_size);
    for shards in [2usize, 4] {
        let opts = || RunOptions::default().shards(shards);
        let sim_run = || {
            let sim: ClusterSim<SimPayload> = ClusterSim::new(c.cluster.clone());
            run_cluster_with(sim, &c, &build, &train, &test, opts())
                .expect("sim sharded run failed")
        };
        let runs: Vec<(&str, RunResult)> = vec![
            ("sim", sim_run()),
            (
                "threads",
                run_cluster_with(ThreadCluster::new(4), &c, &build, &train, &test, opts())
                    .expect("thread sharded run failed"),
            ),
            (
                "tcp",
                run_cluster_with(
                    NetCluster::new(4).with_config(NetConfig::fast()),
                    &c,
                    &build,
                    &train,
                    &test,
                    opts(),
                )
                .expect("tcp sharded run failed"),
            ),
        ];
        for (name, r) in &runs {
            assert_eq!(r.shards, shards, "{name}");
            assert_eq!(
                r.iterations as usize, target,
                "{name}: shards={shards} must reach the update target"
            );
            assert_eq!(r.epochs.len(), c.epochs, "{name}: shards={shards}");
            assert!(
                r.final_test_error() < 0.35,
                "{name}: shards={shards} err {}",
                r.final_test_error()
            );
        }
        let again = sim_run();
        assert_eq!(runs[0].1.staleness, again.staleness, "sim shards={shards} reproducible");
        assert_eq!(runs[0].1.final_test_error(), again.final_test_error());
    }
}

/// LC-ASGD over shards: the merged arrival stream on the lead shard must
/// keep feeding the predictors — the run records a staleness sample per
/// applied push and still converges.
#[test]
fn lc_asgd_predictors_ride_the_merged_shard_stream() {
    let (train, test) = task();
    let mut c = cfg(Algorithm::LcAsgd, 4);
    c.record_traces = true;
    let target = c.epochs * train.len().div_ceil(c.batch_size);
    let sim: ClusterSim<SimPayload> = ClusterSim::new(c.cluster.clone());
    let r = run_cluster_with(sim, &c, &build, &train, &test, RunOptions::default().shards(3))
        .expect("LC sharded run failed");
    assert_eq!(r.iterations as usize, target);
    assert_eq!(r.staleness.len(), target, "one staleness sample per completed push");
    let o = r.overhead.as_ref().expect("LC reports predictor overhead");
    assert_eq!(o.iterations as usize, target);
    assert!(r.final_test_error() < 0.35, "err {}", r.final_test_error());
}

/// The tentpole chaos gate: a planned primary kill with a 4-shard server
/// and a hot standby must promote the mirrored shards and finish training
/// on every backend, with the same accounting as the single-shard
/// failover (one promotion, bounded lost tail, per-shard WAL records).
#[test]
fn primary_kill_failover_completes_with_four_shards() {
    let (train, test) = task();
    let c = cfg(Algorithm::Asgd, 4);
    let shards = 4usize;
    let target = c.epochs * train.len().div_ceil(c.batch_size);
    let kill_at = (target / 2) as u64;
    let standby = StandbyConfig { flush_every: 4, lease: std::time::Duration::from_millis(500) };
    let opts = |plan: &FaultPlan| RunOptions {
        fault_plan: Some(plan.clone()),
        standby: Some(standby.clone()),
        shards,
        ..RunOptions::default()
    };
    let plan = FaultPlan::new().with_primary_kill(kill_at);
    let sim: ClusterSim<SimPayload> =
        ClusterSim::new(c.cluster.clone()).with_fault_plan(plan.clone());
    let runs: Vec<(&str, RunResult)> = vec![
        (
            "sim",
            run_cluster_with(sim, &c, &build, &train, &test, opts(&plan))
                .expect("sim sharded failover failed"),
        ),
        (
            "threads",
            run_cluster_with(
                ThreadCluster::new(4).with_fault_plan(plan.clone()),
                &c,
                &build,
                &train,
                &test,
                opts(&plan),
            )
            .expect("thread sharded failover failed"),
        ),
        (
            "tcp",
            run_cluster_with(
                NetCluster::new(4).with_config(NetConfig::fast()).with_fault_plan(plan.clone()),
                &c,
                &build,
                &train,
                &test,
                opts(&plan),
            )
            .expect("tcp sharded failover failed"),
        ),
    ];
    for (name, r) in &runs {
        assert_eq!(r.shards, shards, "{name}");
        assert_eq!(r.iterations as usize, target, "{name}: promoted run reaches the target");
        let rep = r.replication.as_ref().expect("standby runs carry a replication report");
        assert_eq!(rep.failovers, 1, "{name}: exactly one promotion");
        assert_eq!(rep.final_epoch, 1, "{name}: promotion bumps the fencing epoch once");
        assert!(
            rep.lost_updates < standby.flush_every,
            "{name}: lost tail bounded by the flush batch, got {}",
            rep.lost_updates
        );
        assert_eq!(
            rep.log_records % shards as u64,
            0,
            "{name}: the WAL carries whole per-shard record groups"
        );
        assert!(rep.snapshots >= 2, "{name}: bootstrap plus post-promotion re-arm");
        let faults = r.faults.as_ref().expect("fault plan must produce a report");
        assert!(
            faults.records.iter().any(|rec| matches!(
                rec,
                FaultRecord::FailedOver { at_update, from_epoch: 0, to_epoch: 1, .. }
                    if *at_update >= kill_at
            )),
            "{name}: the failover is recorded at or after the planned kill"
        );
        assert!(r.final_test_error() < 0.4, "{name}: err {}", r.final_test_error());
    }
}

/// Sharded checkpoints round-trip: a run snapshotted under `shards = 2`
/// resumes under the same layout, and a *single-shard* checkpoint (empty
/// `shard_versions`) resumes under any layout because lockstep versions
/// let every shard adopt the global counter.
#[test]
fn sharded_checkpoints_resume() {
    let (train, test) = task();
    let c = cfg(Algorithm::Asgd, 4);
    let target = c.epochs * train.len().div_ceil(c.batch_size);
    let dir = std::env::temp_dir().join("lcasgd-shard-resume-test");
    std::fs::create_dir_all(&dir).unwrap();

    // Halt a sharded run midway via the fault plan's server restart.
    let halt_at = (target / 2) as u64;
    let path = dir.join("sharded.ck");
    let plan = FaultPlan::new().with_server_restart(halt_at);
    let halted = run_cluster_with(
        ThreadCluster::new(4).with_fault_plan(plan.clone()),
        &c,
        &build,
        &train,
        &test,
        RunOptions {
            fault_plan: Some(plan),
            checkpoint_path: Some(path.clone()),
            shards: 2,
            ..RunOptions::default()
        },
    )
    .expect("sharded halt run failed");
    let f = halted.faults.as_ref().expect("halt produces a report");
    assert!(f.server_halted, "the plan halts the server at {halt_at}");

    let ck = TrainingCheckpoint::load(&path).expect("halt wrote a resumable checkpoint");
    assert_eq!(ck.shard_versions.len(), 2, "a 2-shard run records 2 shard versions");
    let resumed = run_cluster_with(
        ThreadCluster::new(4),
        &c,
        &build,
        &train,
        &test,
        RunOptions { resume: Some(ck), shards: 2, ..RunOptions::default() },
    )
    .expect("sharded resume failed");
    assert_eq!(resumed.iterations as usize, target, "resume finishes the remaining updates");
    assert!(resumed.final_test_error() < 0.35, "err {}", resumed.final_test_error());

    // A checkpoint with no shard-version list resumes under a sharded
    // layout: every shard adopts the global version counter.
    let path1 = dir.join("single.ck");
    let plan = FaultPlan::new().with_server_restart(halt_at);
    run_cluster_with(
        ThreadCluster::new(4).with_fault_plan(plan.clone()),
        &c,
        &build,
        &train,
        &test,
        RunOptions {
            fault_plan: Some(plan),
            checkpoint_path: Some(path1.clone()),
            ..RunOptions::default()
        },
    )
    .expect("single-shard halt run failed");
    let ck = TrainingCheckpoint::load(&path1).expect("checkpoint loads");
    assert!(ck.shard_versions.is_empty(), "single-shard checkpoints stay layout-free");
    let cross = run_cluster_with(
        ThreadCluster::new(4),
        &c,
        &build,
        &train,
        &test,
        RunOptions { resume: Some(ck), shards: 4, ..RunOptions::default() },
    )
    .expect("layout-free checkpoint must resume under 4 shards");
    assert_eq!(cross.iterations as usize, target);
    std::fs::remove_dir_all(&dir).ok();
}
