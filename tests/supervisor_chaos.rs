//! Chaos suite for the self-healing training supervisor: one combined
//! storm — a NaN burst, a sustained valid-CRC corrupt-payload barrage,
//! and a sustained straggler — driven through all three backends. The
//! supervised run must complete with a finite loss while the same storm
//! without a supervisor diverges, and the health report must show the
//! quarantine → demotion ladder (LC-ASGD → DC-ASGD → ASGD) doing its
//! job. On the discrete-event simulator the transition sequence must be
//! bit-reproducible for a fixed seed.

use lc_asgd::core::config::DataPartition;
use lc_asgd::prelude::*;
use lc_asgd::simcluster::{ClusterSim, SimPayload};
use proptest::prelude::*;

fn task() -> (Dataset, Dataset) {
    lc_asgd::data::synth::blobs_split(4, 6, 30, 12, 0.5, 33)
}

fn cfg(algo: Algorithm, workers: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(algo, workers, Scale::Tiny, 23);
    cfg.epochs = 10;
    cfg.batch_size = 10;
    // Partitioned data gives the straggler reshard something real to
    // move: donated indices leave one worker's shard for another's.
    cfg.partition = DataPartition::Partitioned;
    cfg.lr = lc_asgd::nn::optimizer::LrSchedule::constant(0.1);
    cfg
}

fn build(rng: &mut Rng) -> lc_asgd::nn::Network {
    lc_asgd::nn::mlp::mlp(&[6, 16, 4], false, rng)
}

/// The combined storm: two NaN bursts on worker 0 separated by more than
/// the quarantine (the second must land after release to earn the second
/// demotion), a dense corrupt-payload barrage on worker 1 (valid CRC,
/// garbage values — only the semantic sentinels can catch it), and a
/// sustained straggler on worker 2.
///
/// Op placement: an LC worker's cycle is Pull=0 / State=1 / Grad=2 (mod
/// 3), so op 2 is the first gradient push. After its demotion the worker
/// runs a 2-op Pull/Grad cycle, so a burst on two consecutive ops is
/// guaranteed to cover exactly one gradient push regardless of parity.
///
/// `straggle_ms` must dominate the backend's per-op cost for the
/// straggler score to trip: the simulator's virtual compute step is
/// ~32ms (so 60ms there), the real backends' is ~1ms (so 15ms there).
fn storm_plan(straggle_ms: u32) -> FaultPlan {
    let mut plan = FaultPlan::new()
        .with_event(0, 2, FaultKind::NanGrad)
        .with_event(0, 40, FaultKind::NanGrad)
        .with_event(0, 41, FaultKind::NanGrad)
        .with_event(2, 4, FaultKind::Straggle { delay_ms: straggle_ms, ops: 200 });
    for op in 9..=45 {
        plan = plan.with_event(1, op, FaultKind::CorruptPayload);
    }
    plan
}

/// Supervisor tuned for the storm run: instant demotions, short
/// quarantines, an armed loss-explosion detector, and an effectively
/// disabled predictor watchdog (its demerits depend on wall-measured
/// timings and would jitter the transition sequence).
fn storm_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        grad_norm_factor: 3.0,
        grad_norm_warmup: 6,
        quarantine_strikes: 2,
        quarantine_updates: 8,
        loss_window: 4,
        explode_factor: 1.4,
        snapshot_every: 6,
        max_rollbacks: 4,
        demote_after: 1,
        promote_after: 10_000,
        pred_err_ratio: 1e6,
        straggler_factor: 2.0,
        straggler_min_arrivals: 2,
        ..SupervisorConfig::default()
    }
}

fn opts(plan: &FaultPlan, sup: Option<SupervisorConfig>) -> RunOptions {
    RunOptions { fault_plan: Some(plan.clone()), supervisor: sup, ..RunOptions::default() }
}

fn run_sim(c: &ExperimentConfig, sup: Option<SupervisorConfig>) -> RunResult {
    let (train, test) = task();
    let plan = storm_plan(60);
    let sim: ClusterSim<SimPayload> =
        ClusterSim::new(c.cluster.clone()).with_fault_plan(plan.clone());
    run_cluster_with(sim, c, &build, &train, &test, opts(&plan, sup)).expect("sim storm run failed")
}

fn final_loss(r: &RunResult) -> f32 {
    r.epochs.last().expect("run produced epochs").train_loss
}

fn demotions(h: &HealthReport) -> Vec<(usize, AlgoMode, AlgoMode)> {
    h.events
        .iter()
        .filter_map(|(_, e)| match e {
            HealthEvent::Demoted { worker, from, to } => Some((*worker, *from, *to)),
            _ => None,
        })
        .collect()
}

/// The core storm assertions shared by every backend.
fn assert_storm_handled(name: &str, r: &RunResult) {
    let h = r.health.as_ref().expect("supervised runs carry a health report");
    assert!(
        final_loss(r).is_finite(),
        "{name}: the supervised run must keep the loss finite, got {}",
        final_loss(r)
    );
    assert!(h.quarantines() >= 1, "{name}: the NaN burst must trigger a quarantine");
    let d = demotions(h);
    assert!(
        d.contains(&(0, AlgoMode::Lc, AlgoMode::Dc)),
        "{name}: worker 0's first NaN must demote LC→DC, got {d:?}"
    );
    assert!(
        d.contains(&(0, AlgoMode::Dc, AlgoMode::Asgd)),
        "{name}: worker 0's second NaN burst must demote DC→ASGD, got {d:?}"
    );
    assert!(h.reshards() >= 1, "{name}: the sustained straggler must donate part of its shard");
}

#[test]
fn the_supervised_storm_survives_on_the_simulator_and_rolls_back() {
    let c = cfg(Algorithm::LcAsgd, 4);
    let r = run_sim(&c, Some(storm_supervisor()));
    assert_storm_handled("sim", &r);
    let h = r.health.as_ref().unwrap();
    assert!(
        h.rollbacks() >= 1,
        "the corrupt-payload ascent must explode the loss window and roll back; events:\n{}",
        h.to_text()
    );
    assert!(h.quarantine_drops > 0, "quarantined pushes must be dropped, not applied");
}

#[test]
fn the_same_storm_without_a_supervisor_diverges() {
    let c = cfg(Algorithm::LcAsgd, 4);
    let supervised = run_sim(&c, Some(storm_supervisor()));
    let unsupervised = run_sim(&c, None);
    assert!(unsupervised.health.is_none());
    let (s, u) = (final_loss(&supervised), final_loss(&unsupervised));
    assert!(s.is_finite(), "supervised loss must stay finite, got {s}");
    assert!(
        !u.is_finite() || s < u,
        "the unsupervised storm must end worse (supervised {s}, unsupervised {u})"
    );
}

#[test]
fn sim_transition_sequences_are_bit_reproducible() {
    // Count-driven supervisor only: the norm sentinel and the explosion
    // detector react to gradient/loss *values*, which on LC runs carry
    // wall-measured timing through the compensation path. NaN sentinels,
    // quarantines, demotions, and straggler scoring are driven purely by
    // message ordering, which the discrete-event simulator fixes.
    let sup = SupervisorConfig { grad_norm_factor: 1e9, explode_factor: 1e9, ..storm_supervisor() };
    let c = cfg(Algorithm::LcAsgd, 4);
    let a = run_sim(&c, Some(sup.clone()));
    let b = run_sim(&c, Some(sup));
    let (ha, hb) = (a.health.as_ref().unwrap(), b.health.as_ref().unwrap());
    assert!(!ha.events.is_empty(), "the storm must produce health events");
    assert_eq!(
        ha.events, hb.events,
        "the same seed must produce the identical transition sequence"
    );
    assert_eq!(ha.quarantine_drops, hb.quarantine_drops);
}

#[test]
fn the_storm_completes_on_the_thread_cluster() {
    let (train, test) = task();
    let c = cfg(Algorithm::LcAsgd, 4);
    let plan = storm_plan(15);
    let r = run_cluster_with(
        ThreadCluster::new(4).with_fault_plan(plan.clone()),
        &c,
        &build,
        &train,
        &test,
        opts(&plan, Some(storm_supervisor())),
    )
    .expect("thread storm run failed");
    assert_storm_handled("threads", &r);
}

#[test]
fn the_storm_completes_on_the_tcp_cluster() {
    let (train, test) = task();
    let c = cfg(Algorithm::LcAsgd, 4);
    let plan = storm_plan(15);
    let r = run_cluster_with(
        NetCluster::new(4).with_config(NetConfig::fast()).with_fault_plan(plan.clone()),
        &c,
        &build,
        &train,
        &test,
        opts(&plan, Some(storm_supervisor())),
    )
    .expect("tcp storm run failed");
    assert_storm_handled("tcp", &r);
}

// ------------------------------------------------------- admission bound

fn bounded_supervisor(bound: u32) -> SupervisorConfig {
    SupervisorConfig { staleness_bound: Some(bound), ..SupervisorConfig::default() }
}

fn assert_bound_held(r: &RunResult, bound: u32) {
    assert!(
        r.staleness.iter().all(|&s| s <= bound),
        "an applied update exceeded the staleness bound {bound}: {:?}",
        r.staleness.iter().filter(|&&s| s > bound).collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under the reject policy, no applied update's staleness may exceed
    /// the bound — for any generated fault plan, on the simulator.
    #[test]
    fn reject_policy_bounds_staleness_on_the_simulator(
        seed in any::<u64>(),
        bound in 1u32..4,
    ) {
        let (train, test) = task();
        let c = cfg(Algorithm::Asgd, 4);
        let plan = FaultPlan::generate(seed, 4, 40, 5);
        let sim: ClusterSim<SimPayload> =
            ClusterSim::new(c.cluster.clone()).with_fault_plan(plan.clone());
        let r = run_cluster_with(
            sim, &c, &build, &train, &test, opts(&plan, Some(bounded_supervisor(bound))),
        ).expect("sim bounded run failed");
        assert_bound_held(&r, bound);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The same invariant on the real-thread backend, whose arrival
    /// order is scheduler-driven rather than simulated.
    #[test]
    fn reject_policy_bounds_staleness_on_the_thread_cluster(
        seed in any::<u64>(),
        bound in 1u32..4,
    ) {
        let (train, test) = task();
        let c = cfg(Algorithm::Asgd, 4);
        let plan = FaultPlan::generate(seed, 4, 40, 5);
        let r = run_cluster_with(
            ThreadCluster::new(4).with_fault_plan(plan.clone()),
            &c, &build, &train, &test, opts(&plan, Some(bounded_supervisor(bound))),
        ).expect("thread bounded run failed");
        assert_bound_held(&r, bound);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// And over real TCP, where reconnects and timeouts stretch staleness
    /// the furthest.
    #[test]
    fn reject_policy_bounds_staleness_on_the_tcp_cluster(
        seed in any::<u64>(),
        bound in 1u32..4,
    ) {
        let (train, test) = task();
        let c = cfg(Algorithm::Asgd, 4);
        let plan = FaultPlan::generate(seed, 4, 40, 5);
        let r = run_cluster_with(
            NetCluster::new(4).with_config(NetConfig::fast()).with_fault_plan(plan.clone()),
            &c, &build, &train, &test, opts(&plan, Some(bounded_supervisor(bound))),
        ).expect("tcp bounded run failed");
        assert_bound_held(&r, bound);
    }
}
