//! End-to-end observability contract: a traced LC-ASGD run on each of the
//! three `ClusterBackend`s must produce
//!
//! * a valid Chrome `trace_event` JSON document,
//! * phase spans that *tile* each worker's timeline — the tiling phases
//!   summed over all workers and divided by M land within 5% of the run's
//!   `total_time`, in the run's own clock domain,
//! * fault-log entries as instant events on the same timeline,
//! * a Prometheus dump carrying the staleness histogram and transport
//!   counters,
//!
//! plus frame-exact transport byte accounting on the TCP backend
//! (heartbeats, hellos and goodbyes must not leak into the counters).

use lc_asgd::core::trace::{self, phase};
use lc_asgd::data::synth::blobs_split;
use lc_asgd::nn::mlp::mlp;
use lc_asgd::nn::optimizer::LrSchedule;
use lc_asgd::prelude::*;
use lc_asgd::simcluster::{ClusterSim, ServerCtx, SimPayload, WireMsg};

// ------------------------------------------------------- tiny JSON check
//
// A minimal recursive-descent validator (no serde in the workspace): the
// Chrome exporter is hand-written, so the test must prove the output is
// well-formed JSON, not just that it contains the right substrings.

fn json_validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    json_value(b, &mut i)?;
    json_ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(format!("trailing garbage at byte {i}"))
    }
}

fn json_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn json_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    json_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            json_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                json_ws(b, i);
                json_string(b, i)?;
                json_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                json_value(b, i)?;
                json_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            json_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                json_value(b, i)?;
                json_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => json_string(b, i),
        Some(b't') => json_literal(b, i, "true"),
        Some(b'f') => json_literal(b, i, "false"),
        Some(b'n') => json_literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            *i += 1;
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            Ok(())
        }
        other => Err(format!("unexpected {other:?} at byte {i}")),
    }
}

fn json_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            0x00..=0x1f => return Err(format!("raw control byte 0x{c:02x} in string at {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn json_literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

// --------------------------------------------------------- shared set-up

const WORKERS: usize = 4;

fn task() -> (Dataset, Dataset) {
    blobs_split(4, 6, 40, 12, 0.5, 71)
}

fn lc_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(Algorithm::LcAsgd, WORKERS, Scale::Tiny, 17);
    cfg.epochs = 12;
    cfg.batch_size = 10;
    cfg.lr = LrSchedule::constant(0.1);
    cfg
}

fn build(rng: &mut Rng) -> lc_asgd::nn::Network {
    mlp(&[6, 16, 4], false, rng)
}

/// The ISSUE's acceptance contract, per backend.
fn assert_trace_contract(r: &RunResult, label: &str) {
    let log = r.timeline.as_ref().unwrap_or_else(|| panic!("{label}: traced run has no timeline"));
    assert!(!log.is_empty(), "{label}: timeline is empty");

    // 1. Phase tiling: the covering phases, summed over all M workers and
    //    divided by M, must land within 5% of total_time in the run's own
    //    clock domain. (codec/comm on the TCP backend are nested inside
    //    pull/push and deliberately excluded.)
    let tiling: &[&str] = match r.clock {
        ClockDomain::Virtual => &[phase::COMPUTE, phase::COMM, phase::FAULT_INJECT],
        ClockDomain::Wall => &[phase::PULL, phase::COMPUTE, phase::PUSH],
    };
    let covered: f64 =
        tiling.iter().map(|p| log.phase_total(p, r.clock)).sum::<f64>() / WORKERS as f64;
    assert!(r.total_time > 0.0, "{label}: total_time must be positive");
    let rel = (covered - r.total_time).abs() / r.total_time;
    assert!(
        rel < 0.05,
        "{label}: phase tiling off by {:.2}% ({} clock): covered {covered:.6}s vs total {:.6}s",
        rel * 100.0,
        r.clock,
        r.total_time
    );

    // 2. Fault events ride the same timeline as instants.
    assert!(
        log.instants().any(|e| e.phase == phase::FAULT_INJECT),
        "{label}: injected faults must appear as instant events"
    );

    // 3. Valid Chrome trace JSON with the expected envelope.
    let chrome = trace::export(r, TraceFormat::Chrome).expect("chrome export");
    json_validate(&chrome).unwrap_or_else(|e| panic!("{label}: invalid chrome JSON: {e}"));
    assert!(chrome.contains("\"traceEvents\""), "{label}: missing traceEvents array");
    assert!(chrome.contains("\"ph\":\"X\""), "{label}: no complete (span) events");
    assert!(chrome.contains("\"ph\":\"i\""), "{label}: no instant (fault) events");

    // 4. Prometheus dump: staleness histogram and phase totals present.
    let prom = trace::export(r, TraceFormat::Prometheus).expect("prometheus export");
    assert!(
        prom.contains(&format!("lcasgd_staleness_count {}\n", r.staleness.len())),
        "{label}: staleness count missing"
    );
    assert!(!r.staleness.is_empty(), "{label}: async run records staleness");
    assert!(prom.contains("lcasgd_phase_seconds_total{phase="), "{label}: phase totals missing");
    assert!(prom.contains("lcasgd_fault_events_total"), "{label}: fault counter missing");

    // 5. The per-epoch summary renders without a panic and names the
    //    run's clock domain.
    let summary = trace::export(r, TraceFormat::Summary).expect("summary export");
    assert!(
        summary.contains(&format!("({} clock", r.clock)),
        "{label}: summary must name the clock domain"
    );
}

// ------------------------------------------------------------- backends

#[test]
fn traced_lc_asgd_on_the_simulator_tiles_virtual_time() {
    let (train, test) = task();
    let cfg = lc_cfg();
    // Crashes and link delays are fine here: the simulator charges the
    // outage to virtual `fault_inject` spans, so the tiling stays exact.
    let plan = FaultPlan::new()
        .with_event(1, 6, FaultKind::Crash { restart_after_ms: Some(40) })
        .with_event(3, 4, FaultKind::SlowLink { delay_ms: 25 });
    let backend: ClusterSim<SimPayload> =
        ClusterSim::new(cfg.cluster.clone()).with_fault_plan(plan.clone());
    let opts = RunOptions { fault_plan: Some(plan), trace: true, ..RunOptions::default() };
    let r = run_cluster_with(backend, &cfg, &build, &train, &test, opts).expect("sim run");

    assert_eq!(r.clock, ClockDomain::Virtual, "the simulator reports virtual time");
    assert!(r.wall_time > 0.0, "wall time is recorded alongside");
    assert_trace_contract(&r, "sim");
}

#[test]
fn traced_lc_asgd_on_threads_tiles_wall_time() {
    let (train, test) = task();
    let cfg = lc_cfg();
    // Only a link stall: it is injected inside the blocked request, so it
    // stays covered by the worker's own pull/push spans. (A crash would
    // leave the restart window as an uncovered hole in wall time.)
    let plan = FaultPlan::new().with_event(2, 5, FaultKind::SlowLink { delay_ms: 10 });
    let backend = ThreadCluster::new(WORKERS).with_fault_plan(plan.clone());
    let opts = RunOptions { fault_plan: Some(plan), trace: true, ..RunOptions::default() };
    let r = run_cluster_with(backend, &cfg, &build, &train, &test, opts).expect("thread run");

    assert_eq!(r.clock, ClockDomain::Wall);
    assert_trace_contract(&r, "threads");
}

#[test]
fn traced_lc_asgd_over_tcp_tiles_wall_time_and_nests_codec() {
    let (train, test) = task();
    let cfg = lc_cfg();
    let plan = FaultPlan::new().with_event(1, 5, FaultKind::SlowLink { delay_ms: 10 });
    let backend =
        NetCluster::new(WORKERS).with_config(NetConfig::fast()).with_fault_plan(plan.clone());
    let opts = RunOptions { fault_plan: Some(plan), trace: true, ..RunOptions::default() };
    let r = run_cluster_with(backend, &cfg, &build, &train, &test, opts).expect("tcp run");

    assert_eq!(r.clock, ClockDomain::Wall);
    assert_trace_contract(&r, "tcp");

    // Codec time must land in `codec` spans, not inflate `compute`: every
    // second the transport books as serialize_seconds has a matching span,
    // so the two totals agree.
    let log = r.timeline.as_ref().unwrap();
    let codec = log.phase_total(phase::CODEC, ClockDomain::Wall);
    let t = r.transport.as_ref().expect("tcp reports transport");
    assert!(codec > 0.0, "codec spans must be recorded");
    assert!(
        (codec - t.serialize_seconds).abs() < 1e-6,
        "codec span total {codec} must equal serialize_seconds {}",
        t.serialize_seconds
    );
    // And codec is a nested refinement: it can never exceed the
    // pull/push/compute envelope it lives inside.
    let envelope = log.phase_total(phase::PULL, ClockDomain::Wall)
        + log.phase_total(phase::PUSH, ClockDomain::Wall)
        + log.phase_total(phase::COMPUTE, ClockDomain::Wall);
    assert!(codec < envelope, "codec ({codec}) must nest inside pull/push/compute ({envelope})");
}

// ------------------------------------------------- transport accounting

#[test]
fn netcluster_byte_accounting_is_frame_exact() {
    // Fixed-size request/reply payloads make the expected wire traffic
    // computable to the byte: M workers × K requests, each one
    // header + payload in both directions. Heartbeats run concurrently on
    // their own thread (interval 20ms < the sleep below), so if they — or
    // the hello/goodbye handshakes — leaked into the counters, the
    // equality would fail.
    const HEADER: u64 = 24;
    const M: usize = 3;
    const K: usize = 20;
    let req: Vec<f32> = vec![1.5; 16];
    let resp: Vec<f32> = vec![2.5; 32];
    let req_wire = HEADER + req.encoded().len() as u64;
    let resp_wire = HEADER + resp.encoded().len() as u64;

    let resp_payload = resp.clone();
    let stats = NetCluster::new(M)
        .with_config(NetConfig::fast())
        .run(
            move |_w, got: Vec<f32>, ctx: &mut ServerCtx<Vec<f32>>| {
                assert_eq!(got.len(), 16);
                ctx.reply(resp_payload.clone());
            },
            |_w, link| {
                for k in 0..K {
                    if k == K / 2 {
                        // Long enough for several heartbeat frames to
                        // cross the wire mid-run.
                        std::thread::sleep(std::time::Duration::from_millis(60));
                    }
                    let r = link.request(req.clone()).expect("request");
                    assert_eq!(r.len(), 32);
                }
            },
        )
        .expect("net run");

    let n = (M * K) as u64;
    assert_eq!(stats.requests, n, "every request counted exactly once");
    assert_eq!(stats.oneways, 0);
    assert_eq!(
        stats.bytes_sent,
        n * req_wire,
        "worker→server bytes must equal the encoded request frames exactly"
    );
    assert_eq!(
        stats.bytes_received,
        n * resp_wire,
        "server→worker bytes must equal the encoded reply frames exactly"
    );
    assert_eq!(stats.rtt.count(), n, "one RTT sample per request, no retry double-count");
    assert!(stats.serialize_seconds > 0.0, "codec time is accounted");
}

// --------------------------------------------------------- clock domains

#[test]
fn co_simulated_drivers_report_the_virtual_clock() {
    let (train, test) = task();
    for algo in [Algorithm::Sgd, Algorithm::Ssgd, Algorithm::Asgd, Algorithm::LcAsgd] {
        let mut cfg = ExperimentConfig::new(algo, WORKERS, Scale::Tiny, 17);
        cfg.epochs = 2;
        cfg.batch_size = 10;
        let r = run_experiment(&cfg, &build, &train, &test);
        assert_eq!(r.clock, ClockDomain::Virtual, "{algo}: co-sim time is virtual");
        assert!(r.wall_time > 0.0, "{algo}: wall time still measured");
        assert!(r.total_time > 0.0, "{algo}");
        // Epoch records are stamped on the same clock as total_time: the
        // last epoch can never end after the run does.
        let last = r.epochs.last().expect("epochs recorded");
        assert!(
            last.time <= r.total_time + 1e-9,
            "{algo}: epoch time {} is on a different clock than total {}",
            last.time,
            r.total_time
        );
    }
}

#[test]
fn cluster_epoch_records_share_the_runs_clock() {
    let (train, test) = task();
    let mut cfg = lc_cfg();
    cfg.epochs = 3;
    let r = run_cluster(ThreadCluster::new(WORKERS), &cfg, &build, &train, &test).expect("run");
    assert_eq!(r.clock, ClockDomain::Wall);
    let mut prev = 0.0;
    for e in &r.epochs {
        assert!(e.time >= prev, "epoch times are monotonic");
        prev = e.time;
    }
    assert!(prev <= r.total_time + 1e-9, "epoch times and total_time share the wall clock");
}
