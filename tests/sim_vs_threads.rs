//! Cross-validation of the discrete-event simulator against the
//! real-thread backend: both run the same ASGD protocol; the organic
//! staleness from OS scheduling should look like the simulated one, and
//! both should converge.

use lc_asgd::core::trainer::{run_experiment, run_threaded_asgd};
use lc_asgd::data::synth::blobs_split;
use lc_asgd::nn::mlp::mlp;
use lc_asgd::prelude::*;

fn task() -> (Dataset, Dataset) {
    blobs_split(4, 6, 30, 12, 0.5, 31)
}

fn cfg(workers: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(Algorithm::Asgd, workers, Scale::Tiny, 17);
    cfg.epochs = 10;
    cfg.batch_size = 10;
    cfg
}

fn build(rng: &mut Rng) -> lc_asgd::nn::Network {
    mlp(&[6, 16, 4], false, rng)
}

#[test]
fn both_backends_converge_on_the_same_task() {
    let (train, test) = task();
    let sim = run_experiment(&cfg(4), &build, &train, &test);
    let threads = run_threaded_asgd(&cfg(4), &build, &train, &test);
    assert!(sim.final_test_error() < 0.25, "sim err {}", sim.final_test_error());
    assert!(threads.final_test_error() < 0.25, "thread err {}", threads.final_test_error());
}

#[test]
fn staleness_scales_with_worker_count_in_both_backends() {
    let (train, test) = task();
    for backend in ["sim", "threads"] {
        let run = |m: usize| {
            if backend == "sim" {
                run_experiment(&cfg(m), &build, &train, &test)
            } else {
                run_threaded_asgd(&cfg(m), &build, &train, &test)
            }
        };
        let s2 = run(2).mean_staleness();
        let s8 = run(8).mean_staleness();
        assert!(s8 > s2, "{backend}: staleness should grow with workers ({s2:.2} vs {s8:.2})");
    }
}

#[test]
fn simulated_staleness_mean_matches_theory() {
    // In a near-homogeneous cluster, each of M workers sees roughly M−1
    // other updates per iteration once the pipeline is warm.
    let (train, test) = task();
    let m = 8;
    let r = run_experiment(&cfg(m), &build, &train, &test);
    let mean = r.mean_staleness();
    assert!(
        (mean - (m as f64 - 1.0)).abs() < 2.0,
        "mean staleness {mean:.2} should be near {}",
        m - 1
    );
}

#[test]
fn threaded_staleness_is_nonnegative_and_bounded() {
    let (train, test) = task();
    let r = run_threaded_asgd(&cfg(4), &build, &train, &test);
    // Every gradient's staleness is well-defined and no worker starves
    // completely (upper bound: nothing should exceed total updates).
    assert!(!r.staleness.is_empty());
    let max = *r.staleness.iter().max().unwrap() as u64;
    assert!(max < r.iterations, "staleness {max} vs iterations {}", r.iterations);
}
