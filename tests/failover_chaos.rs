//! Failover chaos suite: a hot standby shadows the parameter server on
//! every backend, the primary is killed mid-run, and the promoted standby
//! must finish training — deterministically on the simulator, and with
//! the fencing/at-most-once invariants holding everywhere. Extends the
//! backend-equivalence guarantee from worker faults (`chaos_faults.rs`)
//! to the server side.

use lc_asgd::core::{EpochFence, PushVerdict};
use lc_asgd::prelude::*;
use lc_asgd::simcluster::{ClusterSim, FaultKind, SimPayload};

fn task() -> (Dataset, Dataset) {
    lc_asgd::data::synth::blobs_split(4, 6, 30, 12, 0.5, 33)
}

fn cfg(algo: Algorithm, workers: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(algo, workers, Scale::Tiny, 23);
    cfg.epochs = 10;
    cfg.batch_size = 10;
    cfg.lr = lc_asgd::nn::optimizer::LrSchedule::constant(0.1);
    cfg
}

fn build(rng: &mut Rng) -> lc_asgd::nn::Network {
    lc_asgd::nn::mlp::mlp(&[6, 16, 4], false, rng)
}

fn standby() -> StandbyConfig {
    StandbyConfig { flush_every: 4, lease: std::time::Duration::from_millis(500) }
}

fn opts(plan: &FaultPlan) -> RunOptions {
    RunOptions { fault_plan: Some(plan.clone()), standby: Some(standby()), ..RunOptions::default() }
}

/// The run must reach the target update count through the promotion, the
/// report must account one failover with a bounded lost tail, and the
/// task must still be learned.
fn assert_failed_over(name: &str, r: &RunResult, target: usize, kill_at: u64, baseline_err: f32) {
    assert_eq!(r.iterations as usize, target, "{name}: promoted run must reach the target");
    let rep = r.replication.as_ref().expect("standby runs carry a replication report");
    assert_eq!(rep.failovers, 1, "{name}: exactly one promotion");
    assert_eq!(rep.final_epoch, 1, "{name}: promotion bumps the fencing epoch once");
    assert!(
        rep.lost_updates < standby().flush_every,
        "{name}: the lost tail is bounded by the un-flushed batch, got {}",
        rep.lost_updates
    );
    assert!(
        rep.fenced_reads + rep.fenced_pushes >= 1,
        "{name}: survivors of the old epoch must have been fenced at least once"
    );
    assert!(rep.snapshots >= 2, "{name}: bootstrap plus post-promotion re-arm");
    let faults = r.faults.as_ref().expect("fault plan must produce a report");
    assert!(
        faults.records.iter().any(|rec| matches!(
            rec,
            FaultRecord::FailedOver { at_update, from_epoch: 0, to_epoch: 1, .. }
                if *at_update >= kill_at
        )),
        "{name}: the failover must be recorded at or after the planned kill"
    );
    assert!(
        r.final_test_error() < baseline_err + 0.2,
        "{name}: failover err {} vs fault-free {}",
        r.final_test_error(),
        baseline_err
    );
}

#[test]
fn primary_kill_completes_on_all_three_backends() {
    let (train, test) = task();
    let c = cfg(Algorithm::Asgd, 4);
    let target = c.epochs * train.len().div_ceil(c.batch_size);
    let kill_at = (target / 2) as u64;
    let plan = FaultPlan::new().with_primary_kill(kill_at);
    let baseline = run_cluster(ThreadCluster::new(4), &c, &build, &train, &test)
        .expect("fault-free baseline failed");

    let sim: ClusterSim<SimPayload> =
        ClusterSim::new(c.cluster.clone()).with_fault_plan(plan.clone());
    let runs: Vec<(&str, RunResult)> = vec![
        (
            "sim",
            run_cluster_with(sim, &c, &build, &train, &test, opts(&plan))
                .expect("sim failover run failed"),
        ),
        (
            "threads",
            run_cluster_with(
                ThreadCluster::new(4).with_fault_plan(plan.clone()),
                &c,
                &build,
                &train,
                &test,
                opts(&plan),
            )
            .expect("thread failover run failed"),
        ),
        (
            "tcp",
            run_cluster_with(
                NetCluster::new(4).with_config(NetConfig::fast()).with_fault_plan(plan.clone()),
                &c,
                &build,
                &train,
                &test,
                opts(&plan),
            )
            .expect("tcp failover run failed"),
        ),
    ];
    for (name, r) in &runs {
        assert_failed_over(name, r, target, kill_at, baseline.final_test_error());
    }
}

#[test]
fn lc_asgd_failover_restores_predictors_on_threads() {
    // LC-ASGD exercises the widest promotion surface: the standby must
    // hand back predictor weights, arrival history, and the two-phase
    // State→Grad exchange must survive the epoch bump mid-protocol.
    let (train, test) = task();
    let c = cfg(Algorithm::LcAsgd, 4);
    let target = c.epochs * train.len().div_ceil(c.batch_size);
    let kill_at = (target / 2) as u64;
    let plan = FaultPlan::new().with_primary_kill(kill_at);
    let r = run_cluster_with(
        ThreadCluster::new(4).with_fault_plan(plan.clone()),
        &c,
        &build,
        &train,
        &test,
        RunOptions { supervisor: Some(SupervisorConfig::default()), ..opts(&plan) },
    )
    .expect("LC failover run failed");
    assert_eq!(r.iterations as usize, target);
    let rep = r.replication.as_ref().unwrap();
    assert_eq!(rep.failovers, 1);
    let health = r.health.as_ref().expect("a supervised run carries a health report");
    assert_eq!(health.failovers(), 1, "the supervisor logs the promotion");
    assert_eq!(r.epochs.len(), c.epochs, "all epochs complete through the promotion");
    assert!(r.final_test_error() < 0.35, "err {}", r.final_test_error());
}

#[test]
fn sim_failover_is_bit_reproducible() {
    let (train, test) = task();
    let c = cfg(Algorithm::Asgd, 4);
    let target = c.epochs * train.len().div_ceil(c.batch_size);
    let kill_at = (target / 2) as u64;
    let run = || {
        let plan = FaultPlan::new().with_primary_kill(kill_at);
        let sim: ClusterSim<SimPayload> =
            ClusterSim::new(c.cluster.clone()).with_fault_plan(plan.clone());
        run_cluster_with(sim, &c, &build, &train, &test, opts(&plan))
            .expect("sim failover run failed")
    };
    let a = run();
    let b = run();
    assert_eq!(a.staleness, b.staleness, "identical staleness stream through the failover");
    assert_eq!(
        a.final_test_error(),
        b.final_test_error(),
        "the simulated failover must be bit-reproducible"
    );
    let (ra, rb) = (a.replication.as_ref().unwrap(), b.replication.as_ref().unwrap());
    assert_eq!(ra.lost_updates, rb.lost_updates, "the discarded tail is deterministic");
    assert_eq!(ra.log_records, rb.log_records);
    assert_eq!(
        a.faults.as_ref().unwrap().records,
        b.faults.as_ref().unwrap().records,
        "identical fault records through the failover"
    );
}

#[test]
fn epoch_fencing_rejects_stale_pushes_without_double_apply() {
    // Unit-level proof of at-most-once apply across a promotion: the
    // fence admits a push exactly once, rejects its replay as a
    // duplicate, and rejects anything from a dead epoch outright.
    let mut fence = EpochFence::new(2, true);
    assert_eq!(fence.epoch(), 0);
    assert!(fence.admit_read(0));

    let push = 1u64; // worker 0, first push of incarnation 0
    assert!(matches!(fence.check_push(0, 0, push), PushVerdict::Admit));
    fence.commit_push(0, push);
    assert!(
        matches!(fence.check_push(0, 0, push), PushVerdict::Duplicate),
        "an applied push replayed on the same epoch must be deduplicated"
    );

    // The standby applied up to push 1 from worker 0; promote with that
    // dedup state.
    let new_epoch = fence.promote(fence.push_seqs().to_vec());
    assert_eq!(new_epoch, 1);
    assert!(!fence.admit_read(0), "reads carrying the dead epoch are fenced");
    assert!(
        matches!(fence.check_push(0, 0, 2), PushVerdict::StaleEpoch),
        "even a fresh sequence number is rejected when its epoch is dead"
    );
    assert!(
        matches!(fence.check_push(0, 1, push), PushVerdict::Duplicate),
        "a replayed push on the new epoch is still a duplicate — no double apply"
    );
    assert!(matches!(fence.check_push(0, 1, 2), PushVerdict::Admit));
    assert!(
        matches!(fence.check_push(1, 1, u64::from(1u32) << 32 | 1), PushVerdict::Admit),
        "a restarted worker's new incarnation starts a fresh sequence space"
    );
}

#[test]
fn standby_lag_stays_bounded_under_straggle() {
    // A straggling worker stretches the run out; the synchronous flush
    // protocol must still bound the primary-to-standby lag by the batch
    // size, straggler or not.
    let (train, test) = task();
    let c = cfg(Algorithm::Asgd, 4);
    let target = c.epochs * train.len().div_ceil(c.batch_size);
    let plan = FaultPlan::new().with_event(2, 4, FaultKind::Straggle { delay_ms: 25, ops: 100 });
    let sim: ClusterSim<SimPayload> =
        ClusterSim::new(c.cluster.clone()).with_fault_plan(plan.clone());
    let r = run_cluster_with(sim, &c, &build, &train, &test, opts(&plan))
        .expect("straggle standby run failed");
    assert_eq!(r.iterations as usize, target);
    let rep = r.replication.as_ref().unwrap();
    assert_eq!(rep.failovers, 0, "no kill was planned");
    assert_eq!(rep.log_records, target as u64, "every applied push is logged");
    assert!(
        rep.max_lag <= standby().flush_every,
        "lag {} exceeds the flush batch bound {}",
        rep.max_lag,
        standby().flush_every
    );
    assert!(rep.flushes >= rep.log_records / standby().flush_every);
}
