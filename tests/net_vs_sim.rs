//! Backend equivalence: the same LC-ASGD/ASGD protocol driven through all
//! three `ClusterBackend` implementations — the discrete-event simulator,
//! real threads, and loopback TCP — must train to the same loss ballpark,
//! because `core::trainer::run_cluster` is the identical code path in each
//! case. Plus property tests that the wire encodings survive a round trip.

use lc_asgd::core::comm::{CompressedGrad, Compression};
use lc_asgd::core::protocol::{ClusterReq, ClusterResp};
use lc_asgd::data::synth::blobs_split;
use lc_asgd::nn::mlp::mlp;
use lc_asgd::nn::optimizer::LrSchedule;
use lc_asgd::prelude::*;
use lc_asgd::simcluster::{ClusterSim, SimPayload, WireMsg};
use proptest::prelude::*;

fn task() -> (Dataset, Dataset) {
    blobs_split(4, 6, 30, 12, 0.5, 33)
}

fn cfg(algo: Algorithm, workers: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(algo, workers, Scale::Tiny, 23);
    cfg.epochs = 10;
    cfg.batch_size = 10;
    cfg.lr = LrSchedule::constant(0.1);
    cfg
}

fn build(rng: &mut Rng) -> lc_asgd::nn::Network {
    mlp(&[6, 16, 4], false, rng)
}

#[test]
fn lc_asgd_over_tcp_matches_the_thread_backend() {
    let (train, test) = task();
    let c = cfg(Algorithm::LcAsgd, 4);
    let net =
        run_cluster(NetCluster::new(4).with_config(NetConfig::fast()), &c, &build, &train, &test)
            .expect("loopback TCP run failed");
    let thr =
        run_cluster(ThreadCluster::new(4), &c, &build, &train, &test).expect("thread run failed");

    assert!(net.final_test_error() < 0.3, "tcp err {}", net.final_test_error());
    assert!(thr.final_test_error() < 0.3, "thread err {}", thr.final_test_error());
    assert!(
        (net.final_test_error() - thr.final_test_error()).abs() < 0.25,
        "same protocol, same ballpark: tcp {} vs threads {}",
        net.final_test_error(),
        thr.final_test_error()
    );

    // Only the TCP backend actually moves bytes.
    let t = net.transport.as_ref().expect("backend runs report transport");
    assert!(t.bytes_sent > 0 && t.bytes_received > 0, "tcp must move bytes");
    assert!(t.requests > 0 && t.oneways > 0, "pulls and pushes both flow");
    assert!(t.rtt.count() > 0, "round trips must be measured");
    assert!(t.serialize_seconds > 0.0, "codec time must be accounted");
}

#[test]
fn all_three_backends_drive_the_trainer() {
    let (train, test) = task();
    let c = cfg(Algorithm::Asgd, 4);
    let updates = c.epochs * train.len().div_ceil(c.batch_size);

    let sim_backend: ClusterSim<SimPayload> = ClusterSim::new(c.cluster.clone());
    let runs = [
        ("sim", run_cluster(sim_backend, &c, &build, &train, &test)),
        ("threads", run_cluster(ThreadCluster::new(4), &c, &build, &train, &test)),
        (
            "tcp",
            run_cluster(
                NetCluster::new(4).with_config(NetConfig::fast()),
                &c,
                &build,
                &train,
                &test,
            ),
        ),
    ];
    for (name, run) in runs {
        let r = run.unwrap_or_else(|e| panic!("{name} backend failed: {e}"));
        assert_eq!(r.epochs.len(), c.epochs, "{name}");
        assert_eq!(r.iterations as usize, updates, "{name} must apply exactly the target");
        assert_eq!(r.staleness.len() as u64, r.iterations, "{name}");
        assert!(r.final_test_error() < 0.3, "{name} err {}", r.final_test_error());
        assert!(r.transport.is_some(), "{name} must report transport stats");
    }
}

#[test]
fn compression_shrinks_tcp_bytes() {
    let (train, test) = task();
    let mut plain = cfg(Algorithm::Asgd, 2);
    plain.epochs = 2;
    let mut lossy = plain.clone();
    lossy.compression = Compression::TopK { k_frac: 0.1 };

    let fat = run_cluster(
        NetCluster::new(2).with_config(NetConfig::fast()),
        &plain,
        &build,
        &train,
        &test,
    )
    .unwrap();
    let thin = run_cluster(
        NetCluster::new(2).with_config(NetConfig::fast()),
        &lossy,
        &build,
        &train,
        &test,
    )
    .unwrap();
    let fat_bytes = fat.transport.unwrap().bytes_sent;
    let thin_bytes = thin.transport.unwrap().bytes_sent;
    assert!(
        thin_bytes < fat_bytes,
        "top-k gradients must shrink the uplink: {thin_bytes} vs {fat_bytes}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every compression scheme's output survives the wire bit-exactly.
    #[test]
    fn compressed_grads_survive_the_wire(
        grads in prop::collection::vec(-10.0f32..10.0, 1..64),
        pick in 0u8..3,
        k_pct in 1u32..100,
        bits in 2u8..8,
    ) {
        let scheme = match pick {
            0 => Compression::None,
            1 => Compression::TopK { k_frac: k_pct as f32 / 100.0 },
            _ => Compression::Uniform { bits },
        };
        let sent = scheme.compress(&grads, None);
        let got = CompressedGrad::decoded(&sent.encoded()).unwrap();
        prop_assert_eq!(got.decompress(), sent.decompress());
    }

    /// The protocol's gradient push roundtrips with any payload.
    #[test]
    fn grad_messages_survive_the_wire(
        grads in prop::collection::vec(-5.0f32..5.0, 1..48),
        pull_version in any::<u64>(),
        loss in 0.0f32..20.0,
        epoch in any::<u64>(),
        push_seq in any::<u64>(),
        shard in any::<u32>(),
    ) {
        let msg = ClusterReq::Grad {
            grads: CompressedGrad::Dense(grads.clone()),
            pull_version,
            loss,
            batch_stats: Vec::new(),
            running: Default::default(),
            epoch,
            push_seq,
            shard,
        };
        match ClusterReq::decoded(&msg.encoded()).unwrap() {
            ClusterReq::Grad {
                grads: g, pull_version: v, loss: l, epoch: e, push_seq: s, shard: sh, ..
            } => {
                prop_assert_eq!(g.decompress(), grads);
                prop_assert_eq!(v, pull_version);
                prop_assert_eq!(l, loss);
                prop_assert_eq!(e, epoch);
                prop_assert_eq!(s, push_seq);
                prop_assert_eq!(sh, shard);
            }
            _ => prop_assert!(false, "variant changed across the wire"),
        }
    }

    /// The weights reply roundtrips with any payload.
    #[test]
    fn weight_replies_survive_the_wire(
        flat in prop::collection::vec(-3.0f32..3.0, 0..64),
        version in any::<u64>(),
        epoch in any::<u64>(),
    ) {
        let msg = ClusterResp::Weights { flat: flat.clone(), version, directive: None, epoch };
        match ClusterResp::decoded(&msg.encoded()).unwrap() {
            ClusterResp::Weights { flat: f, version: v, directive: None, epoch: e } => {
                prop_assert_eq!(f, flat);
                prop_assert_eq!(v, version);
                prop_assert_eq!(e, epoch);
            }
            _ => prop_assert!(false, "variant changed across the wire"),
        }
    }
}
