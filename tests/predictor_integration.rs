//! LC-ASGD predictor behaviour inside full training runs: the traces that
//! become Figures 7–8 must show the predictors actually tracking their
//! targets, and the compensation must engage.

use lc_asgd::nn::resnet::ResNetConfig;
use lc_asgd::prelude::*;

fn run_lc(workers: usize, epochs: usize) -> RunResult {
    let (train, test) = SyntheticImageSpec::cifar10_like(8, 8, 16, 8).generate();
    let resnet = ResNetConfig::tiny(3, 10);
    let build = |rng: &mut Rng| resnet.build(rng);
    let mut cfg = ExperimentConfig::new(Algorithm::LcAsgd, workers, Scale::Tiny, 23);
    cfg.epochs = epochs;
    cfg.record_traces = true;
    run_experiment(&cfg, &build, &train, &test)
}

#[test]
fn loss_predictor_tracks_the_loss_series() {
    let r = run_lc(8, 10);
    let t = r.trace.expect("traces recorded");
    assert!(t.actual_loss.len() >= 80, "enough samples, got {}", t.actual_loss.len());
    // Compare the predictor against the naive "predict previous value"
    // baseline over the second half of training (after warm-up).
    let half = t.actual_loss.len() / 2;
    let mut pred_err = 0.0f64;
    let mut naive_err = 0.0f64;
    for i in half.max(1)..t.actual_loss.len() {
        pred_err += (t.predicted_loss[i] - t.actual_loss[i]).abs() as f64;
        naive_err += (t.actual_loss[i - 1] - t.actual_loss[i]).abs() as f64;
    }
    assert!(
        pred_err < naive_err * 1.5,
        "LSTM forecast ({pred_err:.3}) should be comparable to the last-value baseline ({naive_err:.3})"
    );
}

#[test]
fn step_predictor_tracks_mean_staleness() {
    let r = run_lc(8, 10);
    let t = r.trace.expect("traces recorded");
    assert!(!t.actual_step.is_empty());
    let half = t.actual_step.len() / 2;
    let mean_actual: f32 =
        t.actual_step[half..].iter().sum::<f32>() / (t.actual_step.len() - half) as f32;
    let mean_pred: f32 =
        t.predicted_step[half..].iter().sum::<f32>() / (t.predicted_step.len() - half) as f32;
    assert!(
        (mean_pred - mean_actual).abs() < mean_actual.max(1.0),
        "predicted mean step {mean_pred:.2} vs actual {mean_actual:.2}"
    );
}

#[test]
fn finish_order_covers_all_workers() {
    let m = 8;
    let r = run_lc(m, 6);
    let t = r.trace.expect("traces recorded");
    let mut seen = vec![false; m];
    for &w in &t.finish_order {
        seen[w] = true;
    }
    assert!(seen.iter().all(|&s| s), "every worker must appear in the iter log");
}

#[test]
fn overhead_is_measured_and_plausible() {
    let r = run_lc(4, 6);
    let o = r.overhead.expect("overhead recorded");
    assert!(o.iterations > 0);
    let per_iter = o.avg_loss_pred_ms() + o.avg_step_pred_ms();
    // Two small LSTMs on one core: between microseconds and tens of ms.
    assert!(per_iter > 0.001 && per_iter < 100.0, "per-iter predictor cost {per_iter} ms");
}
