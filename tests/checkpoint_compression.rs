//! Integration tests for the library extensions: checkpoint/restore
//! around distributed runs, gradient compression inside them, and
//! partitioned data end-to-end.

use lc_asgd::core::comm::Compression;
use lc_asgd::core::config::DataPartition;
use lc_asgd::nn::checkpoint::Checkpoint;
use lc_asgd::nn::resnet::ResNetConfig;
use lc_asgd::prelude::*;

fn task() -> (Dataset, Dataset) {
    SyntheticImageSpec::cifar10_like(8, 8, 16, 8).generate()
}

#[test]
fn checkpoint_resnet_roundtrip_preserves_eval() {
    let mut rng = Rng::seed_from_u64(71);
    let net = ResNetConfig::tiny(3, 10).build(&mut rng);
    let (train, _) = task();
    let idx: Vec<usize> = (0..32).collect();
    let (x, y) = train.batch(&idx);

    let eval = |net: &lc_asgd::nn::Network| lc_asgd::nn::metrics::evaluate(net, &x, &y, 16);
    let before = eval(&net);

    let mut buf = Vec::new();
    Checkpoint::capture(&net).write_to(&mut buf).unwrap();
    let restored_ck = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
    let mut other = ResNetConfig::tiny(3, 10).build(&mut Rng::seed_from_u64(999));
    restored_ck.restore(&mut other);
    let after = eval(&other);
    assert_eq!(before, after, "restored network must evaluate identically");
}

#[test]
fn compressed_distributed_training_on_images() {
    let (train, test) = task();
    let resnet = ResNetConfig::tiny(3, 10);
    let build = |rng: &mut Rng| resnet.build(rng);
    let mut cfg = ExperimentConfig::new(Algorithm::Asgd, 4, Scale::Tiny, 29);
    cfg.epochs = 6;
    cfg.compression = Compression::Uniform { bits: 8 };
    let lossy = run_experiment(&cfg, &build, &train, &test);
    let first = lossy.epochs.first().unwrap().train_error;
    let last = lossy.epochs.last().unwrap().train_error;
    assert!(last <= first, "compressed run should still improve: {first} -> {last}");
}

#[test]
fn compression_is_deterministic_too() {
    let (train, test) = task();
    let resnet = ResNetConfig::tiny(3, 10);
    let build = |rng: &mut Rng| resnet.build(rng);
    let mut cfg = ExperimentConfig::new(Algorithm::LcAsgd, 4, Scale::Tiny, 31);
    cfg.epochs = 4;
    cfg.compression = Compression::TopK { k_frac: 0.2 };
    let a = run_experiment(&cfg, &build, &train, &test);
    let b = run_experiment(&cfg, &build, &train, &test);
    assert_eq!(a.epochs.last().unwrap().train_loss, b.epochs.last().unwrap().train_loss);
}

#[test]
fn partitioned_images_cover_all_classes_per_worker() {
    // With contiguous interleaved shards each of 4 workers sees all 10
    // classes — the IID sharding the extension targets.
    let (train, _) = task();
    let shards = lc_asgd::data::BatchIter::partition(train.len(), 4);
    for shard in shards {
        let mut classes: Vec<usize> = shard.iter().map(|&i| train.labels[i]).collect();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(classes.len(), 10, "each shard should contain every class");
    }
}

#[test]
fn partitioned_distributed_run_on_images() {
    let (train, test) = task();
    let resnet = ResNetConfig::tiny(3, 10);
    let build = |rng: &mut Rng| resnet.build(rng);
    let mut cfg = ExperimentConfig::new(Algorithm::LcAsgd, 4, Scale::Tiny, 37);
    cfg.epochs = 6;
    cfg.partition = DataPartition::Partitioned;
    let r = run_experiment(&cfg, &build, &train, &test);
    let first = r.epochs.first().unwrap().train_error;
    let last = r.epochs.last().unwrap().train_error;
    assert!(last <= first + 0.05, "partitioned run should improve: {first} -> {last}");
}
