//! Quantized wire codec suite: property tests for the bf16 / int8
//! encodings (round-trip + precision bounds), CRC rejection of corrupted
//! or truncated quantized frames, the bitwise-invisibility of the `f32`
//! codec (quantization off is byte-identical to the plain protocol, on
//! every backend), and end-to-end convergence of quantized training runs
//! over both the in-process and TCP transports.

use lc_asgd::core::protocol::ClusterResp;
use lc_asgd::netcluster::frame;
use lc_asgd::nn::mlp::mlp;
use lc_asgd::nn::optimizer::LrSchedule;
use lc_asgd::prelude::*;
use lc_asgd::simcluster::codec::{bf16_decode, bf16_encode, int8_pack, int8_unpack, INT8_BLOCK};
use lc_asgd::simcluster::{ClusterSim, PackedF32, SimPayload, WireCodec, WireMsg, WireReader};
use proptest::prelude::*;

// ------------------------------------------------------ codec properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// bf16 truncates the mantissa to 8 bits with round-to-nearest-even:
    /// the round trip stays within 2^-8 relative error.
    #[test]
    fn bf16_roundtrip_is_bounded(vals in prop::collection::vec(-1e6f32..1e6, 0..200)) {
        for &v in &vals {
            let d = bf16_decode(bf16_encode(v));
            prop_assert!(
                (d - v).abs() <= v.abs() / 256.0 + f32::MIN_POSITIVE,
                "bf16 error too large: {v} -> {d}"
            );
        }
    }

    /// int8 quantization is block-scaled: each reconstructed value lands
    /// within half a quantization step of its source, where the step is
    /// the block's own max/127 scale.
    #[test]
    fn int8_roundtrip_is_bounded(vals in prop::collection::vec(-50f32..50.0, 0..600)) {
        let (levels, scales) = int8_pack(&vals);
        prop_assert_eq!(levels.len(), vals.len());
        prop_assert_eq!(scales.len(), vals.len().div_ceil(INT8_BLOCK));
        let dec = int8_unpack(&levels, &scales);
        prop_assert_eq!(dec.len(), vals.len());
        for (b, block) in vals.chunks(INT8_BLOCK).enumerate() {
            let bound = scales[b] * 0.5 + 1e-6;
            for (i, &v) in block.iter().enumerate() {
                let d = dec[b * INT8_BLOCK + i];
                prop_assert!(
                    (d - v).abs() <= bound,
                    "int8 error at block {b}: {v} -> {d} (bound {bound})"
                );
            }
        }
    }

    /// `PackedF32` preserves length and matches the raw codec functions;
    /// `F32` deliberately refuses to pack (the caller keeps the floats).
    #[test]
    fn packed_f32_matches_raw_codecs(vals in prop::collection::vec(-10f32..10.0, 1..300)) {
        prop_assert!(PackedF32::pack(WireCodec::F32, &vals).is_none());

        let bf = PackedF32::pack(WireCodec::Bf16, &vals).expect("bf16 packs");
        prop_assert_eq!(bf.len(), vals.len());
        let expect: Vec<f32> = vals.iter().map(|&v| bf16_decode(bf16_encode(v))).collect();
        prop_assert_eq!(bf.unpack(), expect);

        let i8p = PackedF32::pack(WireCodec::Int8, &vals).expect("int8 packs");
        prop_assert_eq!(i8p.len(), vals.len());
        let (levels, scales) = int8_pack(&vals);
        prop_assert_eq!(i8p.unpack(), int8_unpack(&levels, &scales));
    }

    /// With quantization off, `weights_for` must be *bitwise* the plain
    /// `Weights` encoding — the seed-parity guarantee every backend
    /// inherits, since they all share this one encode path.
    #[test]
    fn f32_codec_encodes_bitwise_identical_to_plain_weights(
        flat in prop::collection::vec(-3f32..3.0, 0..128),
        version in any::<u64>(),
        epoch in 0u64..1000,
    ) {
        let via_codec =
            ClusterResp::weights_for(WireCodec::F32, flat.clone(), version, None, epoch);
        let plain = ClusterResp::Weights { flat, version, directive: None, epoch };
        let mut a = Vec::new();
        let mut b = Vec::new();
        via_codec.encode(&mut a);
        plain.encode(&mut b);
        prop_assert_eq!(a, b);
    }

    /// A quantized reply inside a frame is CRC-protected: flipping any
    /// payload byte or cutting the stream short must be rejected by
    /// `read_frame`, never decoded into wrong weights.
    #[test]
    fn corrupted_or_truncated_quantized_frames_are_rejected(
        vals in prop::collection::vec(-2f32..2.0, 8..64),
        codec_int8 in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let codec = if codec_int8 { WireCodec::Int8 } else { WireCodec::Bf16 };
        let resp = ClusterResp::weights_for(codec, vals, 9, None, 1);
        let mut payload = Vec::new();
        resp.encode(&mut payload);

        let mut wire = Vec::new();
        frame::write_frame(&mut wire, &frame::Frame::new(frame::FrameKind::Reply, 3, payload))
            .expect("frame to memory");

        // Intact bytes round-trip (compared via re-encoding).
        let (f, _) = frame::read_frame(&mut &wire[..]).expect("intact frame reads");
        let back = ClusterResp::decode(&mut WireReader::new(&f.payload)).expect("decodes");
        let mut reenc = Vec::new();
        back.encode(&mut reenc);
        prop_assert_eq!(&reenc, &f.payload);

        // One flipped payload byte: CRC must catch it.
        let pos = frame::HEADER_LEN + (seed as usize) % (wire.len() - frame::HEADER_LEN);
        let mut flipped = wire.clone();
        flipped[pos] ^= 0x40;
        prop_assert!(
            frame::read_frame(&mut &flipped[..]).is_err(),
            "flipped byte at {pos} must fail CRC"
        );

        // Truncation anywhere (mid-header or mid-payload): hard error.
        let cut = 1 + (seed as usize).rotate_left(7) % (wire.len() - 1);
        prop_assert!(
            frame::read_frame(&mut &wire[..cut]).is_err(),
            "truncation at {cut}/{} must be rejected", wire.len()
        );
    }
}

// -------------------------------------------- end-to-end training parity

fn task() -> (Dataset, Dataset) {
    lc_asgd::data::synth::blobs_split(4, 6, 30, 12, 0.5, 33)
}

fn cfg(workers: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(Algorithm::Asgd, workers, Scale::Tiny, 23);
    cfg.epochs = 10;
    cfg.batch_size = 10;
    cfg.lr = LrSchedule::constant(0.1);
    cfg
}

fn build(rng: &mut Rng) -> lc_asgd::nn::Network {
    mlp(&[6, 16, 4], false, rng)
}

/// Quantization off: the simulator, the thread backend pinned to the
/// `f32` codec, and TCP with its default `f32` codec all drive the
/// trainer to the identical gradient-application target and the same
/// loss ballpark — the protocol path is one and the same.
#[test]
fn three_backends_agree_with_quantization_off() {
    let (train, test) = task();
    let c = cfg(4);
    let updates = c.epochs * train.len().div_ceil(c.batch_size);

    let sim_backend: ClusterSim<SimPayload> = ClusterSim::new(c.cluster.clone());
    let runs = [
        ("sim", run_cluster(sim_backend, &c, &build, &train, &test)),
        (
            "threads/f32",
            run_cluster(
                ThreadCluster::new(4).with_wire_codec(WireCodec::F32),
                &c,
                &build,
                &train,
                &test,
            ),
        ),
        (
            "tcp/f32",
            run_cluster(
                NetCluster::new(4).with_config(NetConfig::fast()),
                &c,
                &build,
                &train,
                &test,
            ),
        ),
    ];
    let mut errs = Vec::new();
    for (name, run) in runs {
        let r = run.unwrap_or_else(|e| panic!("{name} backend failed: {e}"));
        assert_eq!(r.iterations as usize, updates, "{name} must apply exactly the target");
        assert!(r.final_test_error() < 0.3, "{name} err {}", r.final_test_error());
        errs.push(r.final_test_error());
    }
    for w in errs.windows(2) {
        assert!((w[0] - w[1]).abs() < 0.25, "same protocol, same ballpark: {errs:?}");
    }
}

/// Quantized runs still train. The thread backend quantizes at protocol
/// construction (not transport encode), so this exercises the identical
/// lossy path a TCP run takes.
#[test]
fn quantized_thread_runs_converge() {
    let (train, test) = task();
    let c = cfg(4);
    for codec in [WireCodec::Bf16, WireCodec::Int8] {
        let r =
            run_cluster(ThreadCluster::new(4).with_wire_codec(codec), &c, &build, &train, &test)
                .unwrap_or_else(|e| panic!("{} run failed: {e}", codec.name()));
        assert!(
            r.final_test_error() < 0.35,
            "{} must still converge: err {}",
            codec.name(),
            r.final_test_error()
        );
    }
}

/// One full TCP run with bf16 on the wire: converges, and both directions
/// actually flow through the quantized encodings.
#[test]
fn bf16_over_tcp_converges() {
    let (train, test) = task();
    let c = cfg(4);
    let net_cfg = NetConfig { wire_codec: WireCodec::Bf16, ..NetConfig::fast() };
    let r = run_cluster(NetCluster::new(4).with_config(net_cfg), &c, &build, &train, &test)
        .expect("bf16 TCP run failed");
    assert!(r.final_test_error() < 0.35, "bf16/tcp err {}", r.final_test_error());
    let t = r.transport.as_ref().expect("tcp reports transport stats");
    assert!(t.bytes_sent > 0 && t.bytes_received > 0, "bytes must flow");
}
