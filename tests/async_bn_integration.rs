//! Async-BN (paper §5.3) across the crate boundary: worker batch
//! statistics → server accumulation (Formulas 6–7) → evaluation-network
//! injection.

use lc_asgd::core::server::ParameterServer;
use lc_asgd::nn::mlp::mlp;
use lc_asgd::nn::resnet::ResNetConfig;
use lc_asgd::prelude::*;
use lc_asgd::tensor::Tensor;
use lcasgd_autograd::ops::norm::BnBatchStats;

#[test]
fn server_bn_state_reaches_evaluation() {
    // Poisoning the server's BN state must visibly change eval outputs —
    // proving eval really consumes the server statistics, not local ones.
    let mut rng = Rng::seed_from_u64(41);
    let mut net = mlp(&[4, 8, 3], true, &mut rng);
    let x = Tensor::randn(&[6, 4], 1.0, &mut rng);

    let mut g1 = lc_asgd::autograd::Graph::new();
    let (y1, _) = net.forward(&mut g1, x.clone(), false);
    let before = g1.value(y1).clone();

    let mut state = net.bn_state();
    state.means[0] = Tensor::full(&[8], 50.0);
    net.set_bn_state(&state);
    let mut g2 = lc_asgd::autograd::Graph::new();
    let (y2, _) = net.forward(&mut g2, x, false);
    let after = g2.value(y2).clone();
    assert!(!before.allclose(&after, 1e-3), "eval must react to BN state changes");
}

#[test]
fn async_accumulation_converges_to_stationary_stats() {
    // Feeding the same batch statistics repeatedly, the Formula 6–7 EMA
    // must converge to them regardless of the starting state.
    let mut rng = Rng::seed_from_u64(42);
    let net = mlp(&[4, 8, 3], true, &mut rng);
    let mut server = ParameterServer::new(&net, 2, BnMode::Async, 0.2);
    let target = BnBatchStats { mean: Tensor::full(&[8], 3.0), var: Tensor::full(&[8], 7.0) };
    let running = net.bn_state();
    for _ in 0..100 {
        server.absorb_bn(&running, std::slice::from_ref(&target));
    }
    for &m in server.bn.means[0].data() {
        assert!((m - 3.0).abs() < 1e-3, "mean {m}");
    }
    for &v in server.bn.vars[0].data() {
        assert!((v - 7.0).abs() < 1e-3, "var {v}");
    }
}

#[test]
fn regular_bn_is_last_writer_wins_async_is_blend() {
    let mut rng = Rng::seed_from_u64(43);
    let net = mlp(&[4, 8, 3], true, &mut rng);

    let mut regular = ParameterServer::new(&net, 2, BnMode::Regular, 0.5);
    let mut asyncs = ParameterServer::new(&net, 2, BnMode::Async, 0.5);

    // Two workers report very different statistics.
    let mut running_a = net.bn_state();
    running_a.means[0] = Tensor::full(&[8], 10.0);
    let batch_a = vec![BnBatchStats { mean: Tensor::full(&[8], 10.0), var: Tensor::ones(&[8]) }];
    let mut running_b = net.bn_state();
    running_b.means[0] = Tensor::full(&[8], -10.0);
    let batch_b = vec![BnBatchStats { mean: Tensor::full(&[8], -10.0), var: Tensor::ones(&[8]) }];

    for s in [&mut regular, &mut asyncs] {
        s.absorb_bn(&running_a, &batch_a);
        s.absorb_bn(&running_b, &batch_b);
    }
    // Regular: worker B overwrote everything.
    assert_eq!(regular.bn.means[0].data(), &[-10.0; 8]);
    // Async: a blend of both, strictly between the extremes.
    let blended = asyncs.bn.means[0].data()[0];
    assert!(blended > -10.0 && blended < 10.0, "blend {blended}");
}

#[test]
fn bn_modes_produce_different_final_models_at_high_m() {
    let (train, test) = SyntheticImageSpec::cifar10_like(8, 8, 16, 8).generate();
    let resnet = ResNetConfig::tiny(3, 10);
    let build = |rng: &mut Rng| resnet.build(rng);
    let mut errs = Vec::new();
    for bn in [BnMode::Regular, BnMode::Async] {
        let mut cfg = ExperimentConfig::new(Algorithm::LcAsgd, 8, Scale::Tiny, 3);
        cfg.epochs = 6;
        cfg.bn_mode = bn;
        let r = run_experiment(&cfg, &build, &train, &test);
        errs.push(r.epochs.last().unwrap().test_error);
    }
    assert_ne!(errs[0], errs[1], "BN modes must actually change evaluation");
}
