//! Scale-out suite for the readiness-driven reactor transport:
//!
//! 1. 256 concurrent workers pushing uniquely-numbered oneways — the
//!    server must observe every `push_seq` exactly once (zero dropped,
//!    zero duplicated) across the whole storm.
//! 2. Pull coalescing is invisible on the wire: replies served from the
//!    per-version cache are byte-identical to the replies a
//!    coalescing-off server encodes per request, and identical across
//!    all workers sharing the key. The trace hook proves the cache
//!    actually fired (coalesce spans only when the knob is on).
//! 3. Chaos: a full `NetCluster` training run under an active
//!    `FaultPlan` completes while rogue connections repeatedly deliver
//!    partial headers / truncated payloads and disconnect mid-frame.

use lc_asgd::netcluster::{
    frame, NetCluster, NetConfig, NetWorker, ReactorServer, Transport, COALESCE_PHASE,
};
use lc_asgd::prelude::*;
use lc_asgd::simcluster::backend::wire;
use lc_asgd::simcluster::{ServerCtx, TraceHook, WireCodec, WireMsg, WireReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// --------------------------------------------------------- test protocol

#[derive(Debug, Clone, PartialEq)]
enum Req {
    Push { push_seq: u64 },
    Pull,
}

#[derive(Debug, Clone, PartialEq)]
struct Resp {
    flat: Vec<f32>,
    version: u64,
}

impl WireMsg for Req {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Req::Push { push_seq } => {
                wire::put_u8(buf, 0);
                wire::put_u64(buf, *push_seq);
            }
            Req::Pull => wire::put_u8(buf, 1),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, ClusterError> {
        match r.u8()? {
            0 => Ok(Req::Push { push_seq: r.u64()? }),
            1 => Ok(Req::Pull),
            tag => Err(ClusterError::Protocol(format!("unknown Req tag {tag}"))),
        }
    }
}

impl WireMsg for Resp {
    fn encode(&self, buf: &mut Vec<u8>) {
        wire::put_vec_f32(buf, &self.flat);
        wire::put_u64(buf, self.version);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, ClusterError> {
        Ok(Resp { flat: r.vec_f32()?, version: r.u64()? })
    }
}

/// Liveness windows wide enough for a 256-connection storm on few cores.
fn storm_config() -> NetConfig {
    NetConfig {
        heartbeat_timeout: Duration::from_secs(30),
        hello_timeout: Duration::from_secs(60),
        connect_attempts: 10,
        connect_backoff: Duration::from_millis(20),
        connect_backoff_cap: Duration::from_millis(500),
        ..NetConfig::default()
    }
}

// ------------------------------------------------- 1. zero drop/dup seqs

#[test]
fn reactor_at_256_workers_drops_and_duplicates_no_push_seqs() {
    const M: usize = 256;
    const PUSHES: u64 = 8;

    let cfg = storm_config();
    let server = ReactorServer::bind("127.0.0.1:0", M, cfg.clone()).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");

    let mut seen: Vec<u64> = Vec::with_capacity(M * PUSHES as usize);
    let replied = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for rank in 0..M {
            let cfg = cfg.clone();
            let replied = &replied;
            scope.spawn(move || {
                let mut link =
                    NetWorker::connect(addr, rank, cfg).expect("every rank must connect");
                for i in 0..PUSHES {
                    let push_seq = rank as u64 * PUSHES + i;
                    link.send(&Req::Push { push_seq }).expect("oneway push");
                }
                // A final request proves the request path interleaves with
                // the oneway stream without reordering past it.
                let resp = link.request::<_, Resp>(&Req::Pull).expect("final pull");
                assert_eq!(resp.flat.len(), 4, "reply payload intact");
                replied.fetch_add(1, Ordering::Relaxed);
                link.finish().expect("clean goodbye");
            });
        }

        server
            .serve(|_w, req: Req, ctx: &mut ServerCtx<Resp>| match req {
                Req::Push { push_seq } => seen.push(push_seq),
                Req::Pull => ctx.reply(Resp { flat: vec![0.5; 4], version: seen.len() as u64 }),
            })
            .expect("server must drain the storm cleanly");
    });

    assert_eq!(replied.load(Ordering::Relaxed), M, "every rank must get its pull answered");
    assert_eq!(seen.len(), M * PUSHES as usize, "no dropped or duplicated oneways");
    seen.sort_unstable();
    let expected: Vec<u64> = (0..M as u64 * PUSHES).collect();
    assert_eq!(seen, expected, "the received push_seq multiset must be exactly 0..M*PUSHES");
}

// ------------------------------------- 2. coalescing is wire-transparent

#[derive(Default)]
struct SpanCounter {
    coalesced: AtomicUsize,
}

impl TraceHook for SpanCounter {
    fn wall_span(
        &self,
        worker: Option<usize>,
        phase: &'static str,
        _start: std::time::Instant,
        _dur_seconds: f64,
    ) {
        if phase == COALESCE_PHASE {
            assert_eq!(worker, None, "coalesce spans are server-side work");
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Drives `workers` raw blocking sockets through hello + one keyed Pull
/// each (all requests written before any reply is read, so a coalescing
/// server answers them in one sweep), and returns the reply payloads
/// plus the number of coalesce spans the server emitted.
fn keyed_pull_replies(coalescing: bool, workers: usize) -> (Vec<Vec<u8>>, usize) {
    let cfg = NetConfig { pull_coalescing: coalescing, ..storm_config() };
    let mut server = ReactorServer::bind("127.0.0.1:0", workers, cfg).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let spans = Arc::new(SpanCounter::default());
    server.set_trace_hook(spans.clone());

    let serve = std::thread::spawn(move || {
        server.serve(|_w, req: Req, ctx: &mut ServerCtx<Resp>| {
            if let Req::Pull = req {
                // Same key for every request: maximally coalescable.
                let flat: Vec<f32> = (0..512).map(|i| (i as f32).sin()).collect();
                ctx.reply_keyed(Resp { flat, version: 7 }, 42);
            }
        })
    });

    let mut conns: Vec<TcpStream> = (0..workers)
        .map(|rank| {
            let mut s = TcpStream::connect(addr).expect("connect");
            frame::write_frame(&mut s, &frame::Frame::hello_for(rank, WireCodec::F32))
                .expect("hello");
            s
        })
        .collect();

    let mut payload = Vec::new();
    Req::Pull.encode(&mut payload);
    for s in &mut conns {
        frame::write_frame(s, &frame::Frame::new(frame::FrameKind::Request, 1, payload.clone()))
            .expect("request");
    }

    let replies: Vec<Vec<u8>> = conns
        .iter_mut()
        .map(|s| {
            let (f, _) = frame::read_frame(s).expect("reply frame");
            assert_eq!(f.kind, frame::FrameKind::Reply);
            assert_eq!(f.seq, 1, "reply must echo the request seq");
            f.payload
        })
        .collect();

    for s in &mut conns {
        frame::write_frame(s, &frame::Frame::new(frame::FrameKind::Goodbye, 2, Vec::new()))
            .expect("goodbye");
    }
    drop(conns);
    serve.join().expect("serve thread").expect("server exits cleanly");

    (replies, spans.coalesced.load(Ordering::Relaxed))
}

#[test]
fn coalesced_pull_replies_are_byte_identical_to_per_request_replies() {
    const WORKERS: usize = 3;
    let (coalesced, hits_on) = keyed_pull_replies(true, WORKERS);
    let (plain, hits_off) = keyed_pull_replies(false, WORKERS);

    for w in 1..WORKERS {
        assert_eq!(coalesced[w], coalesced[0], "same-key replies must share bytes (rank {w})");
        assert_eq!(plain[w], plain[0], "per-request encoding is deterministic (rank {w})");
    }
    assert_eq!(
        coalesced[0], plain[0],
        "a cache-served reply must be byte-identical to a freshly encoded one"
    );

    let decoded = Resp::decode(&mut WireReader::new(&coalesced[0])).expect("reply decodes");
    assert_eq!(decoded.version, 7);
    assert_eq!(decoded.flat.len(), 512);

    assert_eq!(hits_off, 0, "coalescing off must never serve from cache");
    assert!(
        hits_on >= 1,
        "with all {WORKERS} requests in flight on one key, at least one reply must coalesce"
    );
}

// ----------------------------- 3. mid-frame disconnects under chaos load

/// Writes deliberately unfinished traffic on a fresh connection: a valid
/// header whose payload never fully arrives, a bare header prefix, or
/// plain garbage — then drops the socket mid-frame.
fn rogue_burst(addr: SocketAddr, variant: usize) {
    let Ok(mut s) = TcpStream::connect(addr) else { return };
    use std::io::Write;
    let _ = match variant % 3 {
        0 => {
            // Full header announcing 64 payload bytes, deliver only 16.
            let hdr = frame::header_bytes(frame::FrameKind::Hello, 1, 64, 0xDEAD_BEEF)
                .expect("64-byte payload is within bounds");
            s.write_all(&hdr).and_then(|_| s.write_all(&[0u8; 16]))
        }
        1 => {
            // A header cut off halfway through.
            let hdr = frame::header_bytes(frame::FrameKind::Request, 2, 32, 0)
                .expect("32-byte payload is within bounds");
            s.write_all(&hdr[..frame::HEADER_LEN / 2])
        }
        _ => s.write_all(b"not a frame at all"),
    };
    // Dropping the stream here is the mid-frame disconnect.
}

#[test]
fn training_run_survives_mid_frame_disconnects_under_an_active_fault_plan() {
    // Reserve a concrete port so the rogue thread knows where to aim.
    let addr = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr")
    };

    let stop = AtomicBool::new(false);
    let bursts = Mutex::new(0usize);

    let plan = FaultPlan::new()
        .with_event(0, 4, FaultKind::Crash { restart_after_ms: Some(30) })
        .with_event(1, 3, FaultKind::Drop)
        .with_event(2, 5, FaultKind::Duplicate)
        .with_event(3, 2, FaultKind::SlowLink { delay_ms: 10 });

    let (train, test) = lc_asgd::data::synth::blobs_split(4, 6, 30, 12, 0.5, 33);
    let mut c = ExperimentConfig::new(Algorithm::Asgd, 4, Scale::Tiny, 23);
    c.epochs = 8;
    c.batch_size = 10;
    c.lr = lc_asgd::nn::optimizer::LrSchedule::constant(0.1);
    let build = |rng: &mut Rng| lc_asgd::nn::mlp::mlp(&[6, 16, 4], false, rng);

    let result = std::thread::scope(|scope| {
        let stop = &stop;
        let bursts = &bursts;
        scope.spawn(move || {
            let mut variant = 0usize;
            while !stop.load(Ordering::Relaxed) {
                rogue_burst(addr, variant);
                variant += 1;
                *bursts.lock().unwrap() += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        let cfg = NetConfig { transport: Transport::Reactor, ..NetConfig::fast() };
        let backend =
            NetCluster::new(4).with_config(cfg).with_addr(addr).with_fault_plan(plan.clone());
        let opts = RunOptions { fault_plan: Some(plan.clone()), ..RunOptions::default() };
        let r = run_cluster_with(backend, &c, &build, &train, &test, opts);
        stop.store(true, Ordering::Relaxed);
        r
    })
    .expect("training must complete despite rogue mid-frame disconnects");

    assert!(result.iterations > 0, "the run must actually train");
    assert!(result.final_test_error().is_finite(), "final error must be finite");
    let report = result.faults.as_ref().expect("chaos run carries a fault report");
    assert_eq!(report.injected(), 4, "all scheduled faults must fire");
    let fired = *bursts.lock().unwrap();
    assert!(fired > 0, "the rogue thread must have attacked at least once");
}
