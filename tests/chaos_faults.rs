//! Chaos suite: the same seeded `FaultPlan` driven through all three
//! `ClusterBackend` implementations must (a) be interpreted identically,
//! (b) recover every restartable crash with no hangs, and (c) land the
//! final evaluation loss in the same ballpark as the fault-free run —
//! extending the backend-equivalence guarantee to faulty executions.
//! Plus the planned server-restart drill: halt at a checkpoint mid-run,
//! then resume a fresh process from it to the same final loss.

use lc_asgd::prelude::*;
use lc_asgd::simcluster::{ClusterSim, SimPayload};
use std::path::PathBuf;

fn task() -> (Dataset, Dataset) {
    lc_asgd::data::synth::blobs_split(4, 6, 30, 12, 0.5, 33)
}

fn cfg(algo: Algorithm, workers: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(algo, workers, Scale::Tiny, 23);
    cfg.epochs = 10;
    cfg.batch_size = 10;
    cfg.lr = lc_asgd::nn::optimizer::LrSchedule::constant(0.1);
    cfg
}

fn build(rng: &mut Rng) -> lc_asgd::nn::Network {
    lc_asgd::nn::mlp::mlp(&[6, 16, 4], false, rng)
}

/// One of every fault kind, placed on deterministic ops of the ASGD
/// pull/push cycle (even ops are Pull requests, odd ops are Grad pushes).
fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .with_event(0, 4, FaultKind::Crash { restart_after_ms: Some(30) })
        .with_event(1, 3, FaultKind::Drop)
        .with_event(1, 7, FaultKind::Corrupt)
        .with_event(2, 5, FaultKind::Duplicate)
        .with_event(3, 2, FaultKind::SlowLink { delay_ms: 20 })
}

fn opts_with(plan: &FaultPlan) -> RunOptions {
    RunOptions { fault_plan: Some(plan.clone()), ..RunOptions::default() }
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lcasgd_{name}_{}.ckpt", std::process::id()))
}

#[test]
fn seeded_fault_plans_are_bit_reproducible_on_the_simulator() {
    let (train, test) = task();
    let c = cfg(Algorithm::Asgd, 4);
    let run = |seed: u64| {
        let plan = FaultPlan::generate(seed, 4, 40, 5);
        let sim: ClusterSim<SimPayload> =
            ClusterSim::new(c.cluster.clone()).with_fault_plan(plan.clone());
        let r = run_cluster_with(sim, &c, &build, &train, &test, opts_with(&plan))
            .expect("sim chaos run failed");
        (r, plan.records())
    };
    let (a, recs_a) = run(7);
    let (b, recs_b) = run(7);
    assert!(!recs_a.is_empty(), "the generated plan must actually fire");
    assert_eq!(recs_a, recs_b, "same seed must inject the same faults at the same ops");
    assert_eq!(a.staleness, b.staleness, "same faults must yield the same staleness stream");
    assert_eq!(
        a.final_test_error(),
        b.final_test_error(),
        "the simulated chaos run must be bit-reproducible"
    );
    // A different seed schedules a different plan.
    let other = FaultPlan::generate(8, 4, 40, 5);
    assert_ne!(
        FaultPlan::generate(7, 4, 40, 5).events,
        other.events,
        "distinct seeds must draw distinct schedules"
    );
}

#[test]
fn the_same_chaos_plan_completes_on_all_three_backends() {
    let (train, test) = task();
    let c = cfg(Algorithm::Asgd, 4);
    let target = c.epochs * train.len().div_ceil(c.batch_size);
    let baseline = run_cluster(ThreadCluster::new(4), &c, &build, &train, &test)
        .expect("fault-free baseline failed");

    let runs: Vec<(&str, RunResult)> = {
        let sim_plan = chaos_plan();
        let sim: ClusterSim<SimPayload> =
            ClusterSim::new(c.cluster.clone()).with_fault_plan(sim_plan.clone());
        let thr_plan = chaos_plan();
        let net_plan = chaos_plan();
        vec![
            (
                "sim",
                run_cluster_with(sim, &c, &build, &train, &test, opts_with(&sim_plan))
                    .expect("sim chaos run failed"),
            ),
            (
                "threads",
                run_cluster_with(
                    ThreadCluster::new(4).with_fault_plan(thr_plan.clone()),
                    &c,
                    &build,
                    &train,
                    &test,
                    opts_with(&thr_plan),
                )
                .expect("thread chaos run failed"),
            ),
            (
                "tcp",
                run_cluster_with(
                    NetCluster::new(4)
                        .with_config(NetConfig::fast())
                        .with_fault_plan(net_plan.clone()),
                    &c,
                    &build,
                    &train,
                    &test,
                    opts_with(&net_plan),
                )
                .expect("tcp chaos run failed"),
            ),
        ]
    };

    for (name, r) in &runs {
        // No hangs, no lost updates: the server still applies exactly the
        // target number of gradients.
        assert_eq!(r.iterations as usize, target, "{name} must reach the target");
        let report = r.faults.as_ref().expect("chaos runs must carry a fault report");
        assert_eq!(report.injected(), 5, "{name} must fire all five scheduled faults");
        assert_eq!(report.crashes(), 1, "{name} schedules exactly one explicit crash");
        assert!(
            report.worker_restarts() >= 1,
            "{name}: the crashed worker must have been restarted"
        );
        // The chaos run must still learn the task, within tolerance of the
        // fault-free baseline.
        assert!(
            r.final_test_error() < baseline.final_test_error() + 0.2,
            "{name}: chaos err {} vs fault-free {}",
            r.final_test_error(),
            baseline.final_test_error()
        );
    }
}

#[test]
fn lc_asgd_survives_worker_crashes_with_elastic_rejoin() {
    // LC-ASGD exercises the full rejoin path: the restarted worker's Join
    // resets its arrival history and step-predictor stream, and the
    // two-phase State→Grad exchange tolerates crashes between the phases.
    let (train, test) = task();
    let c = cfg(Algorithm::LcAsgd, 4);
    let plan = FaultPlan::new()
        .with_event(0, 5, FaultKind::Crash { restart_after_ms: Some(20) })
        .with_event(2, 8, FaultKind::Crash { restart_after_ms: Some(10) });
    let r = run_cluster_with(
        ThreadCluster::new(4).with_fault_plan(plan.clone()),
        &c,
        &build,
        &train,
        &test,
        opts_with(&plan),
    )
    .expect("LC chaos run failed");
    let report = r.faults.as_ref().unwrap();
    assert_eq!(report.crashes(), 2);
    assert_eq!(report.worker_restarts(), 2, "both crashed workers must rejoin");
    assert_eq!(r.epochs.len(), c.epochs);
    assert!(r.final_test_error() < 0.35, "err {}", r.final_test_error());
}

#[test]
fn server_restart_resumes_from_checkpoint_to_the_same_ballpark() {
    let (train, test) = task();
    let c = cfg(Algorithm::LcAsgd, 4);
    let updates_per_epoch = train.len().div_ceil(c.batch_size);
    let target = c.epochs * updates_per_epoch;
    let halt_at = (target / 2 + updates_per_epoch / 2) as u64; // mid-epoch
    let ckpt = tmp_path("server_restart");

    // Phase 1: run until the planned server restart point; the server
    // checkpoints and halts itself.
    let plan = FaultPlan::new().with_server_restart(halt_at);
    let first = run_cluster_with(
        ThreadCluster::new(4).with_fault_plan(plan.clone()),
        &c,
        &build,
        &train,
        &test,
        RunOptions {
            fault_plan: Some(plan.clone()),
            checkpoint_path: Some(ckpt.clone()),
            ..RunOptions::default()
        },
    )
    .expect("pre-restart run failed");
    let report = first.faults.as_ref().expect("fault plan must produce a report");
    assert!(report.server_halted, "the run must halt at the planned restart");
    assert!(first.epochs.len() < c.epochs, "the halted run is incomplete");
    assert!(
        report
            .records
            .iter()
            .any(|r| matches!(r, FaultRecord::ServerHalted { at_update } if *at_update == halt_at)),
        "halt must be recorded at exactly the planned update"
    );

    // Phase 2: a fresh process restores the checkpoint and finishes.
    let restored = TrainingCheckpoint::load(&ckpt).expect("checkpoint must load cleanly");
    assert_eq!(restored.applied, halt_at);
    assert!(restored.loss_pred.is_some() && restored.step_pred.is_some());
    let resume_plan = FaultPlan::new();
    let second = run_cluster_with(
        ThreadCluster::new(4),
        &c,
        &build,
        &train,
        &test,
        RunOptions {
            fault_plan: Some(resume_plan.clone()),
            resume: Some(restored),
            ..RunOptions::default()
        },
    )
    .expect("resumed run failed");
    std::fs::remove_file(&ckpt).ok();

    assert_eq!(second.epochs.len(), c.epochs, "the resumed run completes all epochs");
    assert_eq!(second.iterations as usize, target, "updates continue from the halt point");
    let report = second.faults.as_ref().unwrap();
    assert_eq!(report.resumed_at, halt_at);
    assert!(
        report
            .records
            .iter()
            .any(|r| matches!(r, FaultRecord::Resumed { at_update } if *at_update == halt_at)),
        "the resume must be recorded"
    );

    // The interrupted-and-resumed run must land within tolerance of an
    // uninterrupted one.
    let uninterrupted = run_cluster(ThreadCluster::new(4), &c, &build, &train, &test)
        .expect("uninterrupted run failed");
    assert!(
        (second.final_test_error() - uninterrupted.final_test_error()).abs() < 0.25,
        "resumed {} vs uninterrupted {}",
        second.final_test_error(),
        uninterrupted.final_test_error()
    );
}
