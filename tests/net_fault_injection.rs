//! Fault injection: one worker goes silent mid-epoch (socket left open,
//! heartbeats stopped — a hang, not a clean disconnect). The server must
//! detect it through the heartbeat timeout, drop the rank, and let the
//! survivors drive training to the target without stalling.
//!
//! The strongest assertion here is implicit: if the server did *not* reap
//! the hung rank, `serve` would wait on it forever and the test would
//! never return.

use lc_asgd::core::comm::CompressedGrad;
use lc_asgd::core::protocol::{ClusterReq, ClusterResp};
use lc_asgd::core::server::ParameterServer;
use lc_asgd::core::worker::WorkerNode;
use lc_asgd::data::synth::blobs_split;
use lc_asgd::netcluster::{NetConfig, NetServer, NetWorker};
use lc_asgd::nn::mlp::mlp;
use lc_asgd::prelude::*;
use lc_asgd::simcluster::ServerCtx;

#[test]
fn hung_worker_is_dropped_and_survivors_finish() {
    let (train, _test) = blobs_split(4, 6, 30, 10, 0.5, 41);
    let m = 3;
    let batch = 10;
    let target = 60usize; // gradient applications before Stop
    let hang_after = 3usize; // the victim's gradient pushes before it hangs
    let lr = 0.1f32;

    let mut rng = Rng::seed_from_u64(7);
    let canonical = mlp(&[6, 16, 4], false, &mut rng);
    let mut server = ParameterServer::new(&canonical, m, BnMode::Regular, 0.1);

    let cfg = NetConfig::fast();
    let net_server = NetServer::bind("127.0.0.1:0", m, cfg.clone()).expect("bind loopback");
    let addr = net_server.local_addr().expect("bound address");

    let mut applied = 0usize;
    let mut losses: Vec<f32> = Vec::new();
    let mut by_rank = vec![0usize; m];

    std::thread::scope(|scope| {
        for w in 0..m {
            let cfg = cfg.clone();
            let train = &train;
            scope.spawn(move || {
                let mut node_rng = Rng::seed_from_u64(100 + w as u64);
                let mut node = WorkerNode::new(
                    mlp(&[6, 16, 4], false, &mut node_rng),
                    train.len(),
                    batch,
                    1000 + w as u64,
                );
                let mut link = match NetWorker::connect(addr, w, cfg) {
                    Ok(link) => link,
                    Err(_) => return, // server already done
                };
                let mut pushed = 0usize;
                while let Ok(resp) =
                    link.request::<_, ClusterResp>(&ClusterReq::Pull { epoch: 0, shard: 0 })
                {
                    let (flat, version) = match resp {
                        ClusterResp::Weights { flat, version, .. } => (flat, version),
                        _ => break,
                    };
                    let (loss, grads, _stats) = node.compute_gradient(&flat, train);
                    let push = ClusterReq::Grad {
                        grads: CompressedGrad::Dense(grads),
                        pull_version: version,
                        loss,
                        batch_stats: Vec::new(),
                        running: Default::default(),
                        epoch: 0,
                        push_seq: 0,
                        shard: 0,
                    };
                    if link.send(&push).is_err() {
                        break;
                    }
                    pushed += 1;
                    if w == m - 1 && pushed == hang_after {
                        // Simulate a wedged process: socket stays open but
                        // nothing (not even heartbeats) flows anymore.
                        link.hang();
                        return;
                    }
                }
                let _ = link.finish();
            });
        }

        net_server
            .serve(|w, req: ClusterReq, ctx: &mut ServerCtx<ClusterResp>| match req {
                ClusterReq::Pull { .. } => {
                    if applied >= target {
                        ctx.reply(ClusterResp::Stop);
                    } else {
                        ctx.reply(ClusterResp::Weights {
                            flat: server.weights.clone(),
                            version: server.version,
                            directive: None,
                            epoch: 0,
                        });
                    }
                }
                ClusterReq::Grad { grads, loss, .. } if applied < target => {
                    server.apply_grad(&grads.decompress(), lr);
                    losses.push(loss);
                    by_rank[w] += 1;
                    applied += 1;
                }
                _ => {}
            })
            .expect("server must terminate cleanly despite the hung rank");
    });

    assert_eq!(applied, target, "survivors must reach the full target");
    assert!(
        by_rank[m - 1] <= hang_after,
        "the hung rank pushed {} gradients, expected at most {hang_after}",
        by_rank[m - 1]
    );
    let survivors: usize = by_rank[..m - 1].iter().sum();
    assert!(survivors >= target - hang_after, "survivors must carry the load: {by_rank:?}");

    // The run still trains: late losses below early losses.
    let early: f32 = losses[..10].iter().sum::<f32>() / 10.0;
    let late: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
    assert!(late < early, "loss must decrease: early {early} late {late}");
}
