//! Cross-crate end-to-end tests: synthetic data → ResNet → distributed
//! training on the simulated cluster, through the umbrella crate's public
//! API exactly as a downstream user would drive it.

use lc_asgd::nn::resnet::ResNetConfig;
use lc_asgd::prelude::*;

fn tiny_image_task() -> (Dataset, Dataset) {
    SyntheticImageSpec::cifar10_like(8, 8, 16, 8).generate()
}

fn cfg(algorithm: Algorithm, workers: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(algorithm, workers, Scale::Tiny, 5);
    cfg.epochs = 6;
    cfg
}

#[test]
fn every_algorithm_trains_a_resnet_end_to_end() {
    let (train, test) = tiny_image_task();
    let resnet = ResNetConfig::tiny(3, 10);
    let build = |rng: &mut Rng| resnet.build(rng);
    for algorithm in Algorithm::ALL {
        let workers = if algorithm == Algorithm::Sgd { 1 } else { 4 };
        let r = run_experiment(&cfg(algorithm, workers), &build, &train, &test);
        assert_eq!(r.epochs.len(), 6, "{algorithm}: epoch records");
        let first = r.epochs.first().unwrap();
        let last = r.epochs.last().unwrap();
        assert!(
            last.train_error < first.train_error + 0.05,
            "{algorithm}: train error should not grow ({} -> {})",
            first.train_error,
            last.train_error
        );
        assert!(last.train_loss.is_finite(), "{algorithm}: finite loss");
        assert!(r.total_time > 0.0, "{algorithm}: virtual time advanced");
    }
}

#[test]
fn all_algorithms_start_from_identical_weights() {
    // The paper requires "the same randomly initialized model" across
    // algorithms: the builder must be deterministic in the config seed.
    let resnet = ResNetConfig::tiny(3, 10);
    let w1 = resnet.build(&mut Rng::seed_from_u64(5)).flat_params();
    let w2 = resnet.build(&mut Rng::seed_from_u64(5)).flat_params();
    assert_eq!(w1, w2);
}

#[test]
fn full_run_is_bit_reproducible() {
    let (train, test) = tiny_image_task();
    let resnet = ResNetConfig::tiny(3, 10);
    let build = |rng: &mut Rng| resnet.build(rng);
    let c = cfg(Algorithm::LcAsgd, 4);
    let a = run_experiment(&c, &build, &train, &test);
    let b = run_experiment(&c, &build, &train, &test);
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(ea.train_error, eb.train_error);
        assert_eq!(ea.test_error, eb.test_error);
        assert_eq!(ea.time, eb.time);
    }
    assert_eq!(a.staleness, b.staleness);
}

#[test]
fn changing_seed_changes_the_run() {
    let (train, test) = tiny_image_task();
    let resnet = ResNetConfig::tiny(3, 10);
    let build = |rng: &mut Rng| resnet.build(rng);
    let mut c1 = cfg(Algorithm::Asgd, 4);
    let mut c2 = cfg(Algorithm::Asgd, 4);
    c1.seed = 1;
    c2.seed = 2;
    let a = run_experiment(&c1, &build, &train, &test);
    let b = run_experiment(&c2, &build, &train, &test);
    assert_ne!(
        a.epochs.last().unwrap().train_loss,
        b.epochs.last().unwrap().train_loss,
        "different seeds should diverge"
    );
}

#[test]
fn asgd_epoch_time_shrinks_with_more_workers() {
    // The throughput scaling that makes ASGD attractive (Figure 4's
    // x-axis compression from M=4 to M=16).
    let (train, test) = tiny_image_task();
    let resnet = ResNetConfig::tiny(3, 10);
    let build = |rng: &mut Rng| resnet.build(rng);
    let t4 = run_experiment(&cfg(Algorithm::Asgd, 4), &build, &train, &test).total_time;
    let t16 = run_experiment(&cfg(Algorithm::Asgd, 16), &build, &train, &test).total_time;
    assert!(
        t16 < t4 / 2.0,
        "16 workers should be at least 2x faster than 4 (got {t4:.1}s vs {t16:.1}s)"
    );
}

#[test]
fn lc_asgd_pays_predictor_overhead_in_virtual_time() {
    let (train, test) = tiny_image_task();
    let resnet = ResNetConfig::tiny(3, 10);
    let build = |rng: &mut Rng| resnet.build(rng);
    let asgd = run_experiment(&cfg(Algorithm::Asgd, 16), &build, &train, &test);
    let lc = run_experiment(&cfg(Algorithm::LcAsgd, 16), &build, &train, &test);
    assert!(
        lc.total_time > asgd.total_time,
        "LC-ASGD's serialized predictor work must cost virtual time ({:.2}s vs {:.2}s)",
        lc.total_time,
        asgd.total_time
    );
}
