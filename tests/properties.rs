//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary architectures, shapes and schedules.

use lc_asgd::autograd::Graph;
use lc_asgd::nn::mlp::mlp;
use lc_asgd::nn::optimizer::LrSchedule;
use lc_asgd::prelude::*;
use lc_asgd::simcluster::{ClusterSpec, EventQueue};
use lc_asgd::tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flat-parameter serialization roundtrips for arbitrary MLP shapes.
    #[test]
    fn flat_params_roundtrip(
        hidden in prop::collection::vec(1usize..12, 0..3),
        input in 1usize..6,
        classes in 2usize..5,
        with_bn in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut dims = vec![input];
        dims.extend(hidden);
        dims.push(classes);
        let mut rng = Rng::seed_from_u64(seed);
        let net = mlp(&dims, with_bn, &mut rng);
        let flat = net.flat_params();
        prop_assert_eq!(flat.len(), net.num_params());
        let mut rng2 = Rng::seed_from_u64(seed ^ 1);
        let mut net2 = mlp(&dims, with_bn, &mut rng2);
        net2.set_flat_params(&flat);
        prop_assert_eq!(net2.flat_params(), flat);
    }

    /// The backward seed scales every gradient linearly (the property the
    /// Literal compensation mode relies on).
    #[test]
    fn backward_seed_is_linear(
        seed_val in 0.1f32..3.0,
        rng_seed in any::<u64>(),
    ) {
        let mut rng = Rng::seed_from_u64(rng_seed);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0];
        let w = Tensor::randn(&[3, 3], 1.0, &mut rng);

        let grad_with = |s: f32| {
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let wv = g.leaf(w.clone());
            let y = g.matmul(xv, wv);
            let l = g.softmax_cross_entropy(y, &labels);
            g.backward_with_seed(l, s);
            g.grad(wv).unwrap().clone()
        };
        let g1 = grad_with(1.0);
        let gs = grad_with(seed_val);
        for (a, b) in g1.data().iter().zip(gs.data()) {
            prop_assert!((a * seed_val - b).abs() <= 1e-4 * (1.0 + a.abs() * seed_val));
        }
    }

    /// Event queues pop in nondecreasing time order for arbitrary inputs.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// LR schedules are nonincreasing in the epoch.
    #[test]
    fn lr_schedule_monotone(
        base in 0.001f32..1.0,
        epochs in 2usize..300,
        m1 in 1usize..100,
        m2 in 1usize..200,
    ) {
        let s = LrSchedule { base, milestones: vec![m1, m1 + m2], factor: 10.0 };
        let mut last = f32::INFINITY;
        for e in 0..epochs {
            let lr = s.at_epoch(e);
            prop_assert!(lr <= last);
            prop_assert!(lr > 0.0);
            last = lr;
        }
    }

    /// Worker compute-time samples are positive and scale with the
    /// nominal cost for any model parameters.
    #[test]
    fn worker_times_positive_and_scaling(
        speed in 0.1f64..4.0,
        sigma in 0.0f64..0.5,
        nominal in 0.001f64..10.0,
        seed in any::<u64>(),
    ) {
        let spec = ClusterSpec {
            workers: vec![lc_asgd::simcluster::WorkerModel {
                speed, jitter_sigma: sigma, straggle_prob: 0.0, straggle_factor: 1.0,
            }],
            link: Default::default(),
            seed,
        };
        let mut rng = Rng::seed_from_u64(seed);
        let t = spec.workers[0].sample_time(nominal, &mut rng);
        prop_assert!(t > 0.0);
        // Lognormal jitter is mean-one: a 6-sigma envelope bound.
        prop_assert!(t < nominal * speed * (sigma * 6.0).exp() + 1e-12);
    }

    /// Synthetic datasets are class-balanced and label-valid for any
    /// geometry.
    #[test]
    fn synthetic_datasets_are_well_formed(
        classes in 2usize..6,
        hw in 4usize..10,
        per_class in 1usize..6,
    ) {
        let spec = SyntheticImageSpec {
            num_classes: classes,
            height: hw,
            width: hw,
            train_per_class: per_class,
            test_per_class: 1,
            ..SyntheticImageSpec::cifar10_like(hw, hw, per_class, 1)
        };
        let (train, test) = spec.generate();
        prop_assert_eq!(train.len(), classes * per_class);
        prop_assert_eq!(test.len(), classes);
        prop_assert!(train.labels.iter().all(|&l| l < classes));
        prop_assert!(train.inputs.is_finite());
    }
}

/// Thread-count invariance: every public tensor op must produce bitwise
/// identical results whether the pool has 1 thread or many. The kernels
/// guarantee this by splitting only *output* rows/images into contiguous
/// bands and keeping each element's accumulation order fixed (DESIGN.md
/// §8); these tests pin the contract using the rayon shim's per-thread
/// override, so they are meaningful even on single-core CI hosts.
mod thread_invariance {
    use lc_asgd::prelude::Rng;
    use lc_asgd::tensor::ops::conv::{conv2d, conv2d_dw, conv2d_dx, Conv2dSpec};
    use lc_asgd::tensor::Tensor;

    fn randn(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng::seed_from_u64(seed);
        Tensor::randn(dims, 1.0, &mut rng)
    }

    /// Runs `op` at 1, 3 and 8 forced threads and asserts bitwise equality.
    fn pin(what: &str, op: impl Fn() -> Tensor) {
        let serial = rayon::with_num_threads(1, &op);
        for threads in [3, 8] {
            let parallel = rayon::with_num_threads(threads, &op);
            assert_eq!(
                serial.data(),
                parallel.data(),
                "{what} is not bitwise thread-count invariant at {threads} threads"
            );
        }
    }

    #[test]
    fn matmul_variants_are_thread_invariant() {
        // Big enough to take the packed + banded path.
        let a = randn(&[80, 64], 1);
        let b = randn(&[64, 72], 2);
        let at = randn(&[64, 80], 3);
        let bt = randn(&[72, 64], 4);
        pin("matmul", || a.matmul(&b));
        pin("matmul_tn", || at.matmul_tn(&b));
        pin("matmul_nt", || a.matmul_nt(&bt));
    }

    #[test]
    fn conv_kernels_are_thread_invariant() {
        let spec = Conv2dSpec { in_channels: 3, out_channels: 5, kernel: 3, stride: 1, padding: 1 };
        let x = randn(&[4, 3, 10, 10], 5);
        let w = randn(&[5, 3, 3, 3], 6);
        let dy = randn(&[4, 5, 10, 10], 7);
        pin("conv2d", || conv2d(&x, &w, &spec));
        pin("conv2d_dw", || conv2d_dw(&dy, &x, &spec));
        pin("conv2d_dx", || conv2d_dx(&dy, &w, &spec, 10, 10));
    }

    #[test]
    fn elementwise_and_reductions_are_thread_invariant() {
        // Above PAR_THRESHOLD so the parallel branches actually engage.
        let n = 20_000;
        let a = randn(&[n], 8);
        let b = randn(&[n], 9);
        let m = randn(&[8, 2500], 10);
        let bias = randn(&[2500], 11);
        pin("add", || a.add(&b));
        pin("mul", || a.mul(&b));
        pin("relu", || a.relu());
        pin("sigmoid", || a.sigmoid());
        pin("add_rows", || m.add_rows(&bias));
        pin("sum_rows", || m.sum_rows());
        pin("axpy", || {
            let mut w = a.clone();
            w.add_assign_scaled(&b, -0.37);
            w
        });
        pin("scale_add (fused EMA)", || {
            let mut w = a.clone();
            w.scale_add_inplace(0.9, &b, 0.1);
            w
        });
    }
}

mod extension_properties {
    use lc_asgd::core::comm::Compression;
    use lc_asgd::nn::checkpoint::Checkpoint;
    use lc_asgd::nn::mlp::mlp;
    use lc_asgd::prelude::Rng;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Top-K compression preserves the k largest-magnitude entries
        /// exactly and zeroes the rest, for arbitrary gradients.
        #[test]
        fn topk_preserves_selected_entries(
            grads in prop::collection::vec(-10.0f32..10.0, 4..64),
            k_percent in 1u8..=100,
        ) {
            let scheme = Compression::TopK { k_frac: k_percent as f32 / 100.0 };
            let d = scheme.compress(&grads, None).decompress();
            prop_assert_eq!(d.len(), grads.len());
            let kept: Vec<usize> = (0..d.len()).filter(|&i| d[i] != 0.0).collect();
            // Every kept value matches the original…
            for &i in &kept {
                prop_assert_eq!(d[i], grads[i]);
            }
            // …and no dropped entry has strictly larger magnitude than a
            // kept one.
            let min_kept = kept.iter().map(|&i| grads[i].abs()).fold(f32::INFINITY, f32::min);
            for i in 0..d.len() {
                if d[i] == 0.0 && grads[i] != 0.0 {
                    prop_assert!(grads[i].abs() <= min_kept + 1e-6);
                }
            }
        }

        /// Quantization error is bounded by half a level step.
        #[test]
        fn uniform_quantization_error_bound(
            grads in prop::collection::vec(-100.0f32..100.0, 1..64),
            bits in 2u8..=8,
        ) {
            let scheme = Compression::Uniform { bits };
            let d = scheme.compress(&grads, None).decompress();
            let max = grads.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let step = if max > 0.0 { max / (((1u32 << (bits - 1)) - 1) as f32) } else { 1.0 };
            for (a, b) in grads.iter().zip(&d) {
                prop_assert!((a - b).abs() <= step / 2.0 + 1e-4);
            }
        }

        /// Checkpoints round-trip bit-exactly for arbitrary MLPs.
        #[test]
        fn checkpoint_roundtrip(
            hidden in 1usize..12,
            with_bn in any::<bool>(),
            seed in any::<u64>(),
        ) {
            let mut rng = Rng::seed_from_u64(seed);
            let net = mlp(&[3, hidden, 2], with_bn, &mut rng);
            let ck = Checkpoint::capture(&net);
            let mut buf = Vec::new();
            ck.write_to(&mut buf).unwrap();
            let back = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(back, ck);
        }

        /// With error feedback, the total delivered mass over T rounds of
        /// a constant gradient approaches T·g in every coordinate.
        #[test]
        fn error_feedback_is_unbiased_over_time(
            g in prop::collection::vec(-2.0f32..2.0, 4..16),
        ) {
            let scheme = Compression::TopK { k_frac: 0.3 };
            let mut residual = vec![0.0; g.len()];
            let rounds = 400;
            let mut delivered = vec![0.0f32; g.len()];
            for _ in 0..rounds {
                let c = scheme.compress(&g, Some(&mut residual));
                for (d, v) in delivered.iter_mut().zip(c.decompress()) {
                    *d += v;
                }
            }
            for (d, gi) in delivered.iter().zip(&g) {
                let expect = rounds as f32 * gi;
                // delivered = expect − residual_final; residual is bounded
                // by a few multiples of max |g|.
                prop_assert!((d - expect).abs() <= 20.0 + expect.abs() * 0.2,
                    "delivered {} vs {}", d, expect);
            }
        }
    }
}
