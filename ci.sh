#!/usr/bin/env bash
# Repo CI gate. Run from the repo root: ./ci.sh
#
# Order matters: the cheap style/lint gates run after the build so a
# broken tree fails fast with a compiler error instead of a lint one.
set -euo pipefail
cd "$(dirname "$0")"

# Crates this sequence of PRs actively touches; lint-gated at -D warnings.
TOUCHED=(-p lcasgd-simcluster -p lcasgd-netcluster -p lcasgd-core -p lc-asgd)

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

# The chaos suite exercises crash/recovery paths that hang rather than
# fail when recovery regresses, so it runs again under a hard timeout:
# a wedged run must kill CI, not stall it.
echo "==> chaos / fault-injection suite (hard 300s timeout)"
timeout 300 cargo test -q --release --test chaos_faults
timeout 120 cargo test -q --release -p lcasgd-core checkpoint
timeout 120 cargo test -q --release -p lcasgd-netcluster frame

echo "==> cargo fmt --check (touched crates)"
cargo fmt --check "${TOUCHED[@]}"

echo "==> cargo clippy -D warnings (touched crates)"
cargo clippy -q "${TOUCHED[@]}" --all-targets -- -D warnings

echo "CI OK"
