#!/usr/bin/env bash
# Repo CI gate. Run from the repo root: ./ci.sh
#
# Order matters: the cheap style/lint gates run after the build so a
# broken tree fails fast with a compiler error instead of a lint one.
set -euo pipefail
cd "$(dirname "$0")"

# Crates this sequence of PRs actively touches; lint-gated at -D warnings.
TOUCHED=(-p lcasgd-tensor -p lcasgd-simcluster -p lcasgd-netcluster -p lcasgd-core -p lcasgd-bench -p lc-asgd)

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

# The chaos suite exercises crash/recovery paths that hang rather than
# fail when recovery regresses, so it runs again under a hard timeout:
# a wedged run must kill CI, not stall it.
echo "==> chaos / fault-injection suite (hard 300s timeout)"
timeout 300 cargo test -q --release --test chaos_faults
timeout 120 cargo test -q --release -p lcasgd-core checkpoint
timeout 120 cargo test -q --release -p lcasgd-netcluster frame

# Supervisor chaos: the combined NaN-storm + corrupt-payload +
# straggler run must self-heal on all three backends, and the
# staleness-bound proptests must hold under arbitrary fault plans.
echo "==> supervisor chaos suite (hard 300s timeout)"
timeout 300 cargo test -q --release --test supervisor_chaos
timeout 120 cargo test -q --release -p lcasgd-core supervisor
timeout 120 cargo test -q --release -p lcasgd-netcluster breaker

# Failover chaos: a primary kill mid-run must promote the hot standby on
# all three backends (bit-reproducibly on the simulator), epoch fencing
# must hold at-most-once apply, and the standby's lag must stay bounded.
echo "==> failover chaos suite (hard 300s timeout)"
timeout 300 cargo test -q --release --test failover_chaos
timeout 120 cargo test -q --release -p lcasgd-core replication
timeout 120 cargo test -q --release -p lcasgd-netcluster config

# Shard equivalence: shards=1 must be bitwise identical to the unsharded
# protocol on the simulator, shards∈{2,4} must complete and learn on all
# three backends, and the 4-shard primary-kill failover must promote the
# mirrored shard group everywhere.
echo "==> shard equivalence suite (hard 300s timeout)"
timeout 300 cargo test -q --release --test shard_equivalence
timeout 120 cargo test -q --release -p lcasgd-core shard

# Observability contract: traced LC-ASGD on all three backends must tile
# each worker's timeline (per-phase totals within 5% of elapsed time in
# the run's clock domain) and the TCP byte counters must be frame-exact.
# Same timeout rationale as the chaos suite — net tests hang on regress.
echo "==> trace / observability suite (hard 300s timeout)"
timeout 300 cargo test -q --release --test trace_integration

# Kernel correctness: the packed/fused kernels must match the naive
# reference kernels on randomized shapes that straddle every blocking
# edge, and public tensor ops must be bitwise identical across thread
# counts. Run in release so the differential proptests cover all cases
# quickly (and so the AVX2 dispatch path — the one production uses — is
# what gets tested).
echo "==> kernel differential + determinism suites (hard 300s timeout)"
timeout 300 cargo test -q --release -p lcasgd-tensor --test kernel_differential
timeout 300 cargo test -q --release --test properties thread_invariance

# Reactor scale-out + wire codecs: 256-worker zero-loss delivery,
# coalesced-reply byte identity, mid-frame-disconnect chaos, and the
# bf16/int8 codec property + convergence suites. Net tests hang rather
# than fail when liveness regresses, hence the hard timeouts.
echo "==> net scale-out + wire codec suites (hard 300s timeout)"
timeout 300 cargo test -q --release --test net_scale
timeout 300 cargo test -q --release --test wire_codec
timeout 120 cargo test -q --release -p lcasgd-netcluster reactor
timeout 120 cargo test -q --release -p lcasgd-netcluster pool

# Kernel performance: re-measure the hot kernels and fail if any
# optimized kernel regressed >20% against the committed BENCH_kernels.json
# (schema is validated; the gate is skipped when no baseline exists).
echo "==> kernel-baseline --smoke (hard 300s timeout)"
timeout 300 ./target/release/kernel-baseline --smoke

# Transport performance: re-measure the reactor at 256 loopback workers
# and fail if applied updates/sec regressed >20% against the committed
# BENCH_net.json (schema validated; skipped when no baseline exists).
# The net-scale bin lives in lcasgd-bench, which the root release build
# above does not cover — build it explicitly.
echo "==> net-scale --smoke (hard 300s timeout)"
cargo build --release -q -p lcasgd-bench --bin net-scale
timeout 300 ./target/release/net-scale --smoke

# CLI smoke: --trace must emit a non-empty, well-formed Chrome trace.
echo "==> lcasgd train --trace smoke"
TRACE_OUT=$(mktemp /tmp/lcasgd_ci_trace.XXXXXX.json)
timeout 120 ./target/release/lcasgd train --algorithm lc-asgd --workers 2 \
    --scale tiny --epochs 2 --trace "$TRACE_OUT" >/dev/null
[ -s "$TRACE_OUT" ] || { echo "trace file is empty"; exit 1; }
grep -q '"traceEvents"' "$TRACE_OUT" || { echo "trace file is not a Chrome trace"; exit 1; }
rm -f "$TRACE_OUT"

# CLI smoke: a supervised run under a NaN storm must exit 0 and write a
# non-empty health log recording the quarantine.
echo "==> lcasgd train --fault-plan --fallback smoke"
PLAN_FILE=$(mktemp /tmp/lcasgd_ci_plan.XXXXXX.txt)
HEALTH_OUT=$(mktemp /tmp/lcasgd_ci_health.XXXXXX.log)
printf 'nan worker=0 at-op=2\nnan worker=0 at-op=5\n' > "$PLAN_FILE"
timeout 120 ./target/release/lcasgd train --algorithm lc-asgd --workers 2 \
    --scale tiny --epochs 2 --fault-plan "$PLAN_FILE" --fallback auto \
    --health-log "$HEALTH_OUT" >/dev/null
[ -s "$HEALTH_OUT" ] || { echo "health log is empty"; exit 1; }
grep -q 'nan-gradient' "$HEALTH_OUT" || { echo "health log misses the NaN sentinel"; exit 1; }
rm -f "$PLAN_FILE" "$HEALTH_OUT"

# CLI smoke: a hot-standby run with a planned primary kill must exit 0
# and report exactly one promotion in the replication summary.
echo "==> lcasgd train --standby failover smoke"
KILL_PLAN=$(mktemp /tmp/lcasgd_ci_kill.XXXXXX.txt)
REPL_OUT=$(mktemp /tmp/lcasgd_ci_repl.XXXXXX.log)
printf 'primary-kill at-update=10\n' > "$KILL_PLAN"
timeout 120 ./target/release/lcasgd train --algorithm asgd --workers 2 \
    --scale tiny --epochs 2 --standby --flush-every 4 --lease-ms 200 \
    --fault-plan "$KILL_PLAN" > "$REPL_OUT"
grep -q 'replication:' "$REPL_OUT" || { echo "no replication summary"; exit 1; }
grep -q 'failovers 1' "$REPL_OUT" || { echo "failover did not happen"; exit 1; }
rm -f "$KILL_PLAN" "$REPL_OUT"

# CLI smoke: a 4-shard run must exit 0, report the shard count, and
# still survive a planned primary kill with a standby attached.
echo "==> lcasgd train --shards 4 smoke"
KILL_PLAN=$(mktemp /tmp/lcasgd_ci_shards.XXXXXX.txt)
SHARD_OUT=$(mktemp /tmp/lcasgd_ci_shards.XXXXXX.log)
printf 'primary-kill at-update=10\n' > "$KILL_PLAN"
timeout 120 ./target/release/lcasgd train --algorithm asgd --workers 2 \
    --scale tiny --epochs 2 --shards 4 --standby --flush-every 4 \
    --lease-ms 200 --fault-plan "$KILL_PLAN" > "$SHARD_OUT"
grep -q 'sharded across 4 model shards' "$SHARD_OUT" || { echo "no shard summary"; exit 1; }
grep -q 'failovers 1' "$SHARD_OUT" || { echo "sharded failover did not happen"; exit 1; }
rm -f "$KILL_PLAN" "$SHARD_OUT"

# CLI smoke: quantized runs must exit 0 on both lossy codecs.
echo "==> lcasgd train --wire-codec smoke"
for CODEC in bf16 int8; do
    timeout 120 ./target/release/lcasgd train --algorithm asgd --workers 2 \
        --scale tiny --epochs 2 --wire-codec "$CODEC" >/dev/null
done

echo "==> cargo fmt --check (touched crates)"
cargo fmt --check "${TOUCHED[@]}"

echo "==> cargo clippy -D warnings (touched crates)"
cargo clippy -q "${TOUCHED[@]}" --all-targets -- -D warnings

echo "CI OK"
