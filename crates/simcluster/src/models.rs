//! Timing models: worker compute speed, link latency, cluster presets.

use lcasgd_tensor::Rng;

/// Per-worker compute-time model. A phase with nominal cost `c` takes
/// `c · speed · LogNormal(0, jitter_sigma)` seconds, multiplied by
/// `straggle_factor` when a straggler episode fires (probability
/// `straggle_prob` per phase). This mirrors the paper's observation that
/// real-cluster delay is "high and volatile".
#[derive(Clone, Debug)]
pub struct WorkerModel {
    /// Relative slowness (1.0 = nominal hardware).
    pub speed: f64,
    /// Lognormal jitter sigma (0 = deterministic).
    pub jitter_sigma: f64,
    /// Probability a phase straggles.
    pub straggle_prob: f64,
    /// Slowdown multiplier during a straggler episode.
    pub straggle_factor: f64,
}

impl Default for WorkerModel {
    fn default() -> Self {
        WorkerModel { speed: 1.0, jitter_sigma: 0.0, straggle_prob: 0.0, straggle_factor: 1.0 }
    }
}

impl WorkerModel {
    /// Samples the duration of a phase with nominal cost `nominal`.
    pub fn sample_time(&self, nominal: f64, rng: &mut Rng) -> f64 {
        assert!(nominal >= 0.0);
        let jitter = if self.jitter_sigma > 0.0 {
            // Mean-1 lognormal: exp(N(-σ²/2, σ)).
            rng.lognormal(-self.jitter_sigma * self.jitter_sigma / 2.0, self.jitter_sigma)
        } else {
            1.0
        };
        let straggle = if self.straggle_prob > 0.0 && rng.chance(self.straggle_prob) {
            self.straggle_factor
        } else {
            1.0
        };
        nominal * self.speed * jitter * straggle
    }
}

/// Per-link latency model: `base + Exp(1/jitter_mean)` seconds each way.
#[derive(Clone, Debug)]
pub struct LinkModel {
    pub base_latency: f64,
    /// Mean of the exponential jitter component (0 = deterministic).
    pub jitter_mean: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel { base_latency: 1e-3, jitter_mean: 0.0 }
    }
}

impl LinkModel {
    /// Samples a one-way message latency.
    pub fn sample_latency(&self, rng: &mut Rng) -> f64 {
        let jitter =
            if self.jitter_mean > 0.0 { rng.exponential(1.0 / self.jitter_mean) } else { 0.0 };
        self.base_latency + jitter
    }
}

/// A full cluster description: M workers plus the link fabric.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    pub workers: Vec<WorkerModel>,
    pub link: LinkModel,
    pub seed: u64,
}

impl ClusterSpec {
    /// Homogeneous, jitter-free cluster (useful for deterministic tests).
    pub fn uniform(m: usize) -> Self {
        ClusterSpec {
            workers: vec![WorkerModel::default(); m],
            link: LinkModel::default(),
            seed: 0,
        }
    }

    /// The default experimental cluster: mild speed heterogeneity (±20%
    /// spread), 25% lognormal jitter, 1 ms base latency with 0.5 ms
    /// exponential jitter — the regime where ASGD staleness is volatile,
    /// matching the paper's Figure 8 (order "generally regular" but with
    /// variance).
    pub fn heterogeneous(m: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed ^ 0x5EED_C1C5);
        let workers = (0..m)
            .map(|_| WorkerModel {
                speed: rng.uniform_range(0.8, 1.2),
                jitter_sigma: 0.25,
                straggle_prob: 0.0,
                straggle_factor: 1.0,
            })
            .collect();
        ClusterSpec { workers, link: LinkModel { base_latency: 1e-3, jitter_mean: 5e-4 }, seed }
    }

    /// Like [`heterogeneous`](Self::heterogeneous) but with straggler
    /// episodes: each phase has a 2% chance of running 8× slower (failure
    /// injection for the robustness experiments).
    pub fn with_stragglers(m: usize, seed: u64) -> Self {
        let mut spec = Self::heterogeneous(m, seed);
        for w in &mut spec.workers {
            w.straggle_prob = 0.02;
            w.straggle_factor = 8.0;
        }
        spec
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_model_is_exact() {
        let m = WorkerModel::default();
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(m.sample_time(2.5, &mut rng), 2.5);
    }

    #[test]
    fn speed_scales_linearly() {
        let m = WorkerModel { speed: 2.0, ..Default::default() };
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(m.sample_time(3.0, &mut rng), 6.0);
    }

    #[test]
    fn jitter_preserves_mean_roughly() {
        let m = WorkerModel { jitter_sigma: 0.3, ..Default::default() };
        let mut rng = Rng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| m.sample_time(1.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn stragglers_fatten_the_tail() {
        let base = WorkerModel { jitter_sigma: 0.1, ..Default::default() };
        let strag = WorkerModel { straggle_prob: 0.1, straggle_factor: 10.0, ..base.clone() };
        let mut rng = Rng::seed_from_u64(3);
        let n = 5_000;
        let max_base = (0..n).map(|_| base.sample_time(1.0, &mut rng)).fold(0.0, f64::max);
        let max_strag = (0..n).map(|_| strag.sample_time(1.0, &mut rng)).fold(0.0, f64::max);
        assert!(max_strag > max_base * 3.0, "{max_strag} vs {max_base}");
    }

    #[test]
    fn link_latency_at_least_base() {
        let l = LinkModel { base_latency: 0.01, jitter_mean: 0.005 };
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(l.sample_latency(&mut rng) >= 0.01);
        }
    }

    #[test]
    fn heterogeneous_spec_is_deterministic_and_varied() {
        let a = ClusterSpec::heterogeneous(8, 7);
        let b = ClusterSpec::heterogeneous(8, 7);
        for (x, y) in a.workers.iter().zip(&b.workers) {
            assert_eq!(x.speed, y.speed);
        }
        let speeds: Vec<f64> = a.workers.iter().map(|w| w.speed).collect();
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.05, "expected heterogeneity, got {speeds:?}");
    }
}
