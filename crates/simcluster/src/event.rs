//! Deterministic virtual-time event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in seconds.
pub type SimTime = f64;

struct Entry<T> {
    time: SimTime,
    /// Insertion sequence number: ties in time pop in insertion order, so
    /// the simulation is fully deterministic.
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of timestamped events with FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at absolute virtual time `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        assert!(time.is_finite(), "non-finite event time");
        self.heap.push(Entry { time, seq: self.next_seq, payload });
        self.next_seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(5.0, "later");
        q.push(1.0, "now");
        assert_eq!(q.pop().unwrap().1, "now");
        q.push(2.0, "soon");
        assert_eq!(q.pop().unwrap().1, "soon");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(4.0, ());
        assert_eq!(q.peek_time(), Some(4.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
