//! Real-thread parameter-server scaffold.
//!
//! The discrete-event simulator gives reproducible staleness; this backend
//! gives *organic* staleness from genuine OS-level asynchrony. Both
//! implement [`ClusterBackend`], so lcasgd-core's algorithms can be
//! validated on either — and on the TCP backend (`lcasgd-netcluster`),
//! which speaks the same protocol across real sockets.
//!
//! Topology: one server loop on the caller's thread, `m` worker threads.
//! Workers send `Req`s through an MPSC channel; blocking requests are
//! answered through a per-worker reply channel, which also lets the server
//! *defer* a reply and release it from a later message's handler (the
//! SSGD barrier). The server applies a closure to every request in arrival
//! order — mirroring Algorithm 2's `repeat … until forever` loop — until
//! all workers have hung up.

use crate::backend::{
    ClusterBackend, ClusterError, ServerCtx, TransportStats, WireMsg, WorkerLink,
};
use crate::codec::WireCodec;
use crate::faults::{FaultHooks, FaultPlan, FaultyLink};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::{Condvar, Mutex as StdMutex};
use std::thread;
use std::time::{Duration, Instant};

/// A worker's handle to the server. Fallible: a vanished server surfaces
/// as [`ClusterError::Disconnected`] rather than a panic, exactly like a
/// dead TCP peer in the net backend.
pub struct WorkerHandle<Req, Resp> {
    worker: usize,
    tx: Sender<Envelope<Req>>,
    reply_rx: Receiver<Resp>,
}

struct Envelope<Req> {
    worker: usize,
    msg: EnvMsg<Req>,
}

enum EnvMsg<Req> {
    /// A protocol message (`expects_reply` selects request vs oneway).
    Payload { req: Req, expects_reply: bool },
    /// Control: the worker entered a crash-restart sleep of `delay_ms`.
    Sleeping { delay_ms: u32 },
    /// Control: the worker woke from its restart sleep and resumed.
    Woke,
    /// Control: the worker's thread is about to exit (finished or dead
    /// for good). Only the fault-plan path emits control messages.
    Hangup,
}

/// Interruptible sleep used for crash-restart delays, so the server can
/// abort pending restarts at shutdown instead of waiting them out.
#[derive(Default)]
struct StopSignal {
    stopped: StdMutex<bool>,
    cv: Condvar,
}

impl StopSignal {
    fn stop(&self) {
        *self.stopped.lock().expect("stop signal poisoned") = true;
        self.cv.notify_all();
    }

    /// Sleeps up to `timeout`; returns `true` if the signal fired first.
    fn wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stopped = self.stopped.lock().expect("stop signal poisoned");
        loop {
            if *stopped {
                return true;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _timeout) =
                self.cv.wait_timeout(stopped, left).expect("stop signal poisoned");
            stopped = guard;
        }
    }
}

impl<Req: Send, Resp: Send> WorkerHandle<Req, Resp> {
    /// Sends a request and blocks for the server's response (pull weights,
    /// push state and await ℓ_delay, …).
    pub fn request(&self, req: Req) -> Result<Resp, ClusterError> {
        self.tx
            .send(Envelope {
                worker: self.worker,
                msg: EnvMsg::Payload { req, expects_reply: true },
            })
            .map_err(|_| ClusterError::Disconnected)?;
        self.reply_rx.recv().map_err(|_| ClusterError::Disconnected)
    }

    /// Fire-and-forget send (push gradients).
    pub fn send(&self, req: Req) -> Result<(), ClusterError> {
        self.tx
            .send(Envelope {
                worker: self.worker,
                msg: EnvMsg::Payload { req, expects_reply: false },
            })
            .map_err(|_| ClusterError::Disconnected)
    }

    /// This worker's rank.
    pub fn worker(&self) -> usize {
        self.worker
    }
}

impl<Req: Send, Resp: Send> WorkerLink<Req, Resp> for WorkerHandle<Req, Resp> {
    fn worker(&self) -> usize {
        self.worker
    }

    fn request(&mut self, req: Req) -> Result<Resp, ClusterError> {
        WorkerHandle::request(self, req)
    }

    fn send(&mut self, req: Req) -> Result<(), ClusterError> {
        WorkerHandle::send(self, req)
    }
}

// Crashes are injected before an op executes, so the channel never holds a
// stale in-flight reply at crash time: the default (do-nothing) crash hook
// and wall-clock delay hook are exactly right for an in-process transport.
impl<Req: Send, Resp: Send> FaultHooks for WorkerHandle<Req, Resp> {}

/// The real-thread backend: `m` OS threads against a serialized server
/// loop on the calling thread.
pub struct ThreadCluster {
    workers: usize,
    fault_plan: Option<FaultPlan>,
    shutdown_deadline: Duration,
    wire_codec: WireCodec,
}

impl ThreadCluster {
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ThreadCluster {
            workers,
            fault_plan: None,
            shutdown_deadline: Duration::from_secs(30),
            wire_codec: WireCodec::F32,
        }
    }

    /// Selects the wire codec advertised to the protocol layer. This
    /// backend ships values over channels without serializing, but the
    /// protocol still quantizes dense payloads when asked — the lossy
    /// effect lives in the message variants, so a quantized run here
    /// matches a quantized run over TCP.
    pub fn with_wire_codec(mut self, codec: WireCodec) -> Self {
        self.wire_codec = codec;
        self
    }

    /// Attaches a fault schedule: each worker's link is wrapped in a
    /// [`FaultyLink`], and crashed workers restart after a wall-clock
    /// delay.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Caps how long `run` waits on crash-restart sleeps once every
    /// remaining worker is asleep. When the longest pending restart
    /// exceeds the deadline, the pending restarts are aborted (the
    /// sleeping threads wake immediately and exit) and the run returns —
    /// worker threads are always *joined*, never detached, so a plan with
    /// a pathological restart delay cannot leak threads past the run.
    pub fn with_shutdown_deadline(mut self, deadline: Duration) -> Self {
        self.shutdown_deadline = deadline;
        self
    }
}

impl ClusterBackend for ThreadCluster {
    fn workers(&self) -> usize {
        self.workers
    }

    fn wire_codec(&self) -> WireCodec {
        self.wire_codec
    }

    fn run<Req, Resp, S, W>(
        self,
        mut server_fn: S,
        worker_fn: W,
    ) -> Result<TransportStats, ClusterError>
    where
        Req: WireMsg + Send + 'static,
        Resp: WireMsg + Send + 'static,
        S: FnMut(usize, Req, &mut ServerCtx<Resp>),
        W: Fn(usize, &mut dyn WorkerLink<Req, Resp>) + Send + Sync,
    {
        let m = self.workers;
        let plan = self.fault_plan;
        let deadline = self.shutdown_deadline;
        let (tx, rx): (Sender<Envelope<Req>>, Receiver<Envelope<Req>>) = unbounded();
        // Persistent per-worker reply channels: capacity 1 suffices since a
        // worker has at most one outstanding blocking request.
        let mut reply_txs: Vec<Option<Sender<Resp>>> = Vec::with_capacity(m);
        let mut reply_rxs: Vec<Option<Receiver<Resp>>> = Vec::with_capacity(m);
        for _ in 0..m {
            let (rtx, rrx) = bounded(1);
            reply_txs.push(Some(rtx));
            reply_rxs.push(Some(rrx));
        }

        let mut stats = TransportStats::default();
        let mut awaiting = vec![false; m];
        let mut result = Ok(());
        let stop = StopSignal::default();

        thread::scope(|scope| {
            for (w, slot) in reply_rxs.iter_mut().enumerate() {
                let mut handle = WorkerHandle {
                    worker: w,
                    tx: tx.clone(),
                    reply_rx: slot.take().expect("reply receiver taken twice"),
                };
                let worker_fn = &worker_fn;
                let plan = plan.clone();
                let ctl = tx.clone();
                let stop = &stop;
                scope.spawn(move || match plan {
                    None => worker_fn(w, &mut handle),
                    Some(plan) => {
                        let mut link = FaultyLink::new(handle, w, &plan);
                        loop {
                            worker_fn(w, &mut link);
                            let Some(delay_ms) = link.crashed_restart_ms() else {
                                break; // finished, or dead for good
                            };
                            // Announce the sleep so the serve loop can
                            // distinguish "everyone mid-restart" from
                            // "messages in flight", then sleep
                            // interruptibly: a shutdown abort wakes the
                            // thread immediately and ends it.
                            let _ = ctl
                                .send(Envelope { worker: w, msg: EnvMsg::Sleeping { delay_ms } });
                            if stop.wait(Duration::from_millis(u64::from(delay_ms))) {
                                break; // restart aborted at shutdown
                            }
                            link.resume();
                            let _ = ctl.send(Envelope { worker: w, msg: EnvMsg::Woke });
                        }
                        let _ = ctl.send(Envelope { worker: w, msg: EnvMsg::Hangup });
                    }
                });
            }
            // Drop the original sender so the loop ends when workers do.
            drop(tx);

            // How long each recv waits before re-checking worker status.
            let tick = deadline.min(Duration::from_millis(20)).max(Duration::from_millis(1));
            let mut done = vec![false; m];
            let mut wake_at: Vec<Option<Instant>> = vec![None; m];

            'serve: loop {
                let env = match rx.recv_timeout(tick) {
                    Ok(env) => Some(env),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break 'serve,
                };
                if let Some(env) = env {
                    let w = env.worker;
                    match env.msg {
                        EnvMsg::Sleeping { delay_ms } => {
                            wake_at[w] =
                                Some(Instant::now() + Duration::from_millis(u64::from(delay_ms)));
                            continue;
                        }
                        EnvMsg::Woke => {
                            wake_at[w] = None;
                            continue;
                        }
                        EnvMsg::Hangup => {
                            done[w] = true;
                            wake_at[w] = None;
                            if done.iter().all(|&d| d) {
                                break 'serve;
                            }
                            continue;
                        }
                        EnvMsg::Payload { req, expects_reply } => {
                            if expects_reply {
                                awaiting[w] = true;
                                stats.requests += 1;
                            } else {
                                stats.oneways += 1;
                            }
                            let mut ctx = ServerCtx::new(w, expects_reply);
                            server_fn(w, req, &mut ctx);
                            for (target, resp) in ctx.take_replies() {
                                if target >= m || !awaiting[target] {
                                    result = Err(ClusterError::Protocol(format!(
                                        "reply to worker {target}, which has no pending request"
                                    )));
                                    // Unblock everyone: dropping the reply
                                    // senders turns their pending recv()s
                                    // into Disconnected errors.
                                    reply_txs.iter_mut().for_each(|t| *t = None);
                                    break 'serve;
                                }
                                awaiting[target] = false;
                                let sender =
                                    reply_txs[target].as_ref().expect("reply sender present");
                                // The worker may have panicked; a closed
                                // channel here is its problem, not a
                                // server error.
                                let _ = sender.send(resp);
                            }
                        }
                    }
                }

                // Shutdown deadline: every remaining worker is asleep in a
                // crash-restart delay, and the longest pending sleep
                // overruns the deadline — abort the restarts so the run
                // (and the thread join below) can't stall arbitrarily.
                let now = Instant::now();
                let all_parked = done.iter().zip(&wake_at).all(|(&d, wake)| d || wake.is_some());
                if all_parked {
                    let worst =
                        wake_at.iter().flatten().map(|t| t.saturating_duration_since(now)).max();
                    if worst.is_some_and(|left| left > deadline) {
                        break 'serve;
                    }
                }
            }

            // Wake any threads still parked in restart sleeps; the scope
            // then joins every worker within one sleep-wakeup, never
            // detaching them.
            stop.stop();
        });

        result.map(|()| stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn counter_server_sums_worker_contributions() {
        let mut total = 0u64;
        let stats = ThreadCluster::new(4)
            .run(
                |_w, req: u64, _ctx: &mut ServerCtx<()>| {
                    total += req;
                },
                |_w, h| {
                    for i in 1..=10u64 {
                        h.send(i).unwrap();
                    }
                },
            )
            .unwrap();
        assert_eq!(total, 4 * 55);
        assert_eq!(stats.oneways, 40);
        assert_eq!(stats.requests, 0);
    }

    #[test]
    fn request_reply_roundtrip() {
        let counter = AtomicUsize::new(0);
        let stats = ThreadCluster::new(3)
            .run(
                |w, _req: u32, ctx: &mut ServerCtx<u64>| ctx.reply(w as u64 * 100),
                |w, h| {
                    let resp = h.request(0).unwrap();
                    assert_eq!(resp, w as u64 * 100);
                    counter.fetch_add(1, Ordering::SeqCst);
                },
            )
            .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        assert_eq!(stats.requests, 3);
    }

    #[test]
    fn server_processes_sequentially() {
        // The server closure is FnMut with exclusive state: no locking
        // needed, by construction. Interleave blocking+nonblocking traffic.
        let mut log: Vec<(usize, u32)> = Vec::new();
        ThreadCluster::new(2)
            .run(
                |w, req: u32, ctx: &mut ServerCtx<u32>| {
                    log.push((w, req));
                    if ctx.expects_reply() {
                        ctx.reply(req * 2);
                    }
                },
                |_w, h| {
                    for i in 0..5 {
                        let r = h.request(i).unwrap();
                        assert_eq!(r, i * 2);
                        h.send(999).unwrap();
                    }
                },
            )
            .unwrap();
        assert_eq!(log.len(), 20);
    }

    #[test]
    fn worker_ranks_are_distinct() {
        let seen = parking_lot::Mutex::new(Vec::new());
        ThreadCluster::new(8)
            .run(
                |_w, _req: u8, ctx: &mut ServerCtx<u8>| ctx.reply(0),
                |w, h| {
                    assert_eq!(h.worker(), w);
                    seen.lock().push(w);
                    let _ = h.request(0).unwrap();
                },
            )
            .unwrap();
        let mut v = seen.into_inner();
        v.sort_unstable();
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn deferred_replies_implement_a_barrier() {
        // SSGD-style: nobody advances until every worker's message is in.
        let mut blocked: Vec<usize> = Vec::new();
        let rounds = 5u32;
        ThreadCluster::new(4)
            .run(
                |w, round: u32, ctx: &mut ServerCtx<u32>| {
                    blocked.push(w);
                    if blocked.len() == 4 {
                        for target in blocked.drain(..) {
                            ctx.reply_to(target, round);
                        }
                    }
                },
                |_w, h| {
                    for round in 0..rounds {
                        let r = h.request(round).unwrap();
                        assert_eq!(r, round);
                    }
                },
            )
            .unwrap();
    }

    #[test]
    fn reply_to_idle_worker_is_a_protocol_error() {
        let err = ThreadCluster::new(2)
            .run(
                |_w, _req: u8, ctx: &mut ServerCtx<u8>| {
                    // Worker 1 never sent a blocking request.
                    ctx.reply_to(1, 0);
                },
                |w, h| {
                    if w == 0 {
                        // Either an explicit error or a successful reply is
                        // acceptable here; the run itself must error.
                        let _ = h.request(0);
                    }
                },
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::Protocol(_)));
    }

    #[test]
    fn shutdown_deadline_aborts_pathological_restarts() {
        use crate::faults::{FaultKind, FaultPlan, FaultRecord};
        // Worker 0 crashes with a 60 s restart delay it will never serve
        // out: once worker 1 finishes, the serve loop sees everyone parked
        // past the 50 ms deadline, aborts the restart, and joins the
        // sleeping thread instead of waiting the minute (or detaching it).
        let plan =
            FaultPlan::new().with_event(0, 2, FaultKind::Crash { restart_after_ms: Some(60_000) });
        let t0 = Instant::now();
        ThreadCluster::new(2)
            .with_fault_plan(plan.clone())
            .with_shutdown_deadline(Duration::from_millis(50))
            .run(
                |_w, req: u32, ctx: &mut ServerCtx<u32>| {
                    if ctx.expects_reply() {
                        ctx.reply(req);
                    }
                },
                |_w, h| {
                    for i in 0..5u32 {
                        if h.request(i).is_err() {
                            return;
                        }
                    }
                },
            )
            .unwrap();
        assert!(t0.elapsed() < Duration::from_secs(10), "deadline must abort the 60s restart");
        assert_eq!(
            plan.records()
                .iter()
                .filter(|r| matches!(r, FaultRecord::WorkerRestarted { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn short_restarts_still_complete_under_the_deadline() {
        use crate::faults::{FaultKind, FaultPlan, FaultRecord};
        let plan =
            FaultPlan::new().with_event(0, 1, FaultKind::Crash { restart_after_ms: Some(5) });
        let completed = AtomicUsize::new(0);
        ThreadCluster::new(2)
            .with_fault_plan(plan.clone())
            .with_shutdown_deadline(Duration::from_secs(30))
            .run(
                |_w, req: u32, ctx: &mut ServerCtx<u32>| {
                    if ctx.expects_reply() {
                        ctx.reply(req);
                    }
                },
                |_w, h| {
                    for i in 0..3u32 {
                        if h.request(i).is_err() {
                            return;
                        }
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                },
            )
            .unwrap();
        // Worker 0's first incarnation dies at op 1, restarts after 5 ms,
        // and the fresh invocation completes all three requests.
        assert_eq!(completed.load(Ordering::SeqCst), 2);
        assert!(plan.records().iter().any(|r| matches!(r, FaultRecord::WorkerRestarted { .. })));
    }

    #[test]
    fn dead_server_surfaces_as_error_not_panic() {
        // After the protocol violation aborts the server loop, blocked and
        // future worker calls get Err(Disconnected) instead of panicking.
        let observed = parking_lot::Mutex::new(Vec::new());
        let err = ThreadCluster::new(2)
            .run(
                |w, _req: u8, ctx: &mut ServerCtx<u8>| {
                    if w == 0 {
                        ctx.reply_to(1, 0); // worker 1 has no pending request
                    }
                },
                |w, h| {
                    if w == 0 {
                        let r = h.request(0);
                        observed.lock().push(r.is_err());
                    }
                },
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::Protocol(_)));
        assert_eq!(observed.into_inner(), vec![true]);
    }
}
