//! Real-thread parameter-server scaffold.
//!
//! The discrete-event simulator gives reproducible staleness; this backend
//! gives *organic* staleness from genuine OS-level asynchrony. Both speak
//! the same request/response protocol, so lcasgd-core's algorithms can be
//! validated on either.
//!
//! Topology: one server loop on the caller's thread, `m` worker threads.
//! Workers send `Req`s through an MPSC channel; each request optionally
//! carries a oneshot-style reply channel. The server applies a closure to
//! every request in arrival order — mirroring Algorithm 2's
//! `repeat … until forever` loop — until all workers have hung up.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::thread;

/// A worker's handle to the server.
pub struct WorkerHandle<Req, Resp> {
    worker: usize,
    tx: Sender<Envelope<Req, Resp>>,
}

struct Envelope<Req, Resp> {
    worker: usize,
    req: Req,
    reply: Option<Sender<Resp>>,
}

impl<Req: Send, Resp: Send> WorkerHandle<Req, Resp> {
    /// Sends a request and blocks for the server's response (pull weights,
    /// push state and await ℓ_delay, …).
    pub fn request(&self, req: Req) -> Resp {
        let (rtx, rrx) = bounded(1);
        self.tx
            .send(Envelope { worker: self.worker, req, reply: Some(rtx) })
            .expect("server hung up");
        rrx.recv().expect("server dropped reply")
    }

    /// Fire-and-forget send (push gradients).
    pub fn send(&self, req: Req) {
        self.tx
            .send(Envelope { worker: self.worker, req, reply: None })
            .expect("server hung up");
    }

    /// This worker's rank.
    pub fn worker(&self) -> usize {
        self.worker
    }
}

/// Runs a parameter-server round: spawns `m` worker threads executing
/// `worker_fn`, processes their messages with `server_fn` in arrival
/// order, and returns when every worker has finished.
///
/// `server_fn(worker, request)` returns `Some(resp)` for requests that
/// expect a reply and `None` otherwise; replying `None` to a blocking
/// request is a protocol bug and panics.
pub struct ThreadCluster;

impl ThreadCluster {
    pub fn run<Req, Resp, S, W>(num_workers: usize, mut server_fn: S, worker_fn: W)
    where
        Req: Send + 'static,
        Resp: Send + 'static,
        S: FnMut(usize, Req) -> Option<Resp>,
        W: Fn(WorkerHandle<Req, Resp>) + Send + Sync,
    {
        let (tx, rx): (Sender<Envelope<Req, Resp>>, Receiver<Envelope<Req, Resp>>) = unbounded();
        thread::scope(|scope| {
            for w in 0..num_workers {
                let handle = WorkerHandle { worker: w, tx: tx.clone() };
                let worker_fn = &worker_fn;
                scope.spawn(move || worker_fn(handle));
            }
            // Drop the original sender so the loop ends when workers do.
            drop(tx);
            while let Ok(env) = rx.recv() {
                let resp = server_fn(env.worker, env.req);
                match (env.reply, resp) {
                    (Some(reply), Some(r)) => {
                        // A worker may have panicked/exited; ignore closed replies.
                        let _ = reply.send(r);
                    }
                    (None, _) => {}
                    (Some(_), None) => panic!("server returned no reply to a blocking request"),
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn counter_server_sums_worker_contributions() {
        let mut total = 0u64;
        ThreadCluster::run(
            4,
            |_w, req: u64| -> Option<()> {
                total += req;
                None
            },
            |h| {
                for i in 1..=10u64 {
                    h.send(i);
                }
            },
        );
        assert_eq!(total, 4 * 55);
    }

    #[test]
    fn request_reply_roundtrip() {
        let counter = AtomicUsize::new(0);
        ThreadCluster::run(
            3,
            |w, _req: ()| Some(w * 100),
            |h| {
                let resp = h.request(());
                assert_eq!(resp, h.worker() * 100);
                counter.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn server_processes_sequentially() {
        // The server closure is FnMut with exclusive state: no locking
        // needed, by construction. Interleave blocking+nonblocking traffic.
        let mut log: Vec<(usize, i32)> = Vec::new();
        ThreadCluster::run(
            2,
            |w, req: i32| {
                log.push((w, req));
                if req >= 0 {
                    Some(req * 2)
                } else {
                    None
                }
            },
            |h| {
                for i in 0..5 {
                    let r = h.request(i);
                    assert_eq!(r, i * 2);
                    h.send(-1);
                }
            },
        );
        assert_eq!(log.len(), 20);
    }

    #[test]
    fn worker_ranks_are_distinct() {
        let seen = parking_lot::Mutex::new(Vec::new());
        ThreadCluster::run(
            8,
            |_w, _req: ()| Some(()),
            |h| {
                seen.lock().push(h.worker());
                let _ = h.request(());
            },
        );
        let mut v = seen.into_inner();
        v.sort_unstable();
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }
}
