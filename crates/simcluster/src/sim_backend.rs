//! [`ClusterBackend`] adapter for the discrete-event simulator.
//!
//! Workers run as real OS threads executing arbitrary `worker_fn` code,
//! while message *ordering* is decided by the simulator's virtual clock —
//! so algorithm code sees heterogeneous-cluster staleness (stragglers,
//! jitter, slow links) without the algorithm layer scheduling anything.
//!
//! The driver uses a conservative gate: a message is handed to the server
//! closure only once every live worker is either blocked on a reply or
//! finished. At that point the pending set is complete, so the earliest
//! virtual arrival is processed exactly as `ClusterSim`'s direct callers
//! would. Per-worker virtual clocks advance by sampled compute time (the
//! first message of each phase is charged [`ClusterSim::nominal_cost`])
//! plus sampled up/downlink latencies, all from the same per-worker RNG
//! streams as direct simulation.
//!
//! Payloads cross the thread boundary *encoded*, making the simulator a
//! faithful rehearsal of the TCP backend: byte counts in
//! [`TransportStats`] are real, and a codec bug fails here first.

use crate::backend::{
    ClockDomain, ClusterBackend, ClusterError, ServerCtx, TraceHook, TransportStats, WireMsg,
    WorkerLink,
};
use crate::faults::{FaultHooks, FaultyLink};
use crate::sim::ClusterSim;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::time::Instant;

/// The simulator payload used by backend-driven runs: an encoded message
/// plus its delivery kind.
pub struct SimPayload {
    bytes: Vec<u8>,
    expects_reply: bool,
}

enum WorkerEvent {
    Msg {
        worker: usize,
        bytes: Vec<u8>,
        expects_reply: bool,
    },
    Done {
        worker: usize,
    },
    /// An injected crash: the driver charges the restart delay to the
    /// worker's virtual clock (a permanent crash is followed by `Done`).
    Crashed {
        worker: usize,
        restart_after_ms: Option<u32>,
    },
    /// An injected link stall, charged in virtual seconds.
    Delay {
        worker: usize,
        seconds: f64,
    },
}

struct SimLink<Resp> {
    worker: usize,
    tx: Sender<WorkerEvent>,
    reply_rx: Receiver<Vec<u8>>,
    _resp: std::marker::PhantomData<Resp>,
}

impl<Req: WireMsg, Resp: WireMsg> WorkerLink<Req, Resp> for SimLink<Resp> {
    fn worker(&self) -> usize {
        self.worker
    }

    fn request(&mut self, req: Req) -> Result<Resp, ClusterError> {
        let msg =
            WorkerEvent::Msg { worker: self.worker, bytes: req.encoded(), expects_reply: true };
        self.tx.send(msg).map_err(|_| ClusterError::Disconnected)?;
        let bytes = self.reply_rx.recv().map_err(|_| ClusterError::Disconnected)?;
        Resp::decoded(&bytes)
    }

    fn send(&mut self, req: Req) -> Result<(), ClusterError> {
        let msg =
            WorkerEvent::Msg { worker: self.worker, bytes: req.encoded(), expects_reply: false };
        self.tx.send(msg).map_err(|_| ClusterError::Disconnected)
    }
}

impl<Resp> FaultHooks for SimLink<Resp> {
    fn fault_crash(&mut self, restart_after_ms: Option<u32>) {
        let _ = self.tx.send(WorkerEvent::Crashed { worker: self.worker, restart_after_ms });
    }

    fn fault_delay(&mut self, delay_ms: u32) {
        // Virtual, not wall-clock: the driver advances this worker's clock.
        let seconds = f64::from(delay_ms) / 1e3;
        let _ = self.tx.send(WorkerEvent::Delay { worker: self.worker, seconds });
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum WState {
    /// Executing `worker_fn` code; may still produce messages.
    Running,
    /// Blocked in `request()` awaiting a reply.
    Awaiting,
    /// `worker_fn` returned.
    Done,
}

impl ClusterBackend for ClusterSim<SimPayload> {
    fn workers(&self) -> usize {
        self.num_workers()
    }

    fn clock_domain(&self) -> ClockDomain {
        ClockDomain::Virtual
    }

    fn attach_trace_hook(&mut self, hook: std::sync::Arc<dyn TraceHook>) {
        self.set_trace_hook(hook);
    }

    fn run<Req, Resp, S, W>(
        mut self,
        mut server_fn: S,
        worker_fn: W,
    ) -> Result<TransportStats, ClusterError>
    where
        Req: WireMsg + Send + 'static,
        Resp: WireMsg + Send + 'static,
        S: FnMut(usize, Req, &mut ServerCtx<Resp>),
        W: Fn(usize, &mut dyn WorkerLink<Req, Resp>) + Send + Sync,
    {
        let m = self.num_workers();
        let nominal = self.nominal_cost();
        let plan = self.fault_plan().cloned();
        let hook = self.trace_hook();
        let (tx, rx) = unbounded::<WorkerEvent>();
        let mut reply_txs: Vec<Option<Sender<Vec<u8>>>> = Vec::with_capacity(m);
        let mut reply_rxs: Vec<Option<Receiver<Vec<u8>>>> = Vec::with_capacity(m);
        for _ in 0..m {
            let (rtx, rrx) = bounded(1);
            reply_txs.push(Some(rtx));
            reply_rxs.push(Some(rrx));
        }

        let mut stats = TransportStats::default();
        let mut state = vec![WState::Running; m];
        // Virtual time at which each worker's current phase started.
        let mut vt = vec![0.0f64; m];
        // Virtual time each worker's outstanding request left the worker.
        let mut sent_at = vec![0.0f64; m];
        // Charge the nominal compute cost on the first message of each
        // phase (a phase begins when a reply is delivered); follow-up
        // messages in the same phase (e.g. grad push right after a state
        // push) only pay the wire.
        let mut charge_phase = vec![false; m];
        let mut result: Result<(), ClusterError> = Ok(());

        std::thread::scope(|scope| {
            for (w, slot) in reply_rxs.iter_mut().enumerate() {
                let mut link = SimLink {
                    worker: w,
                    tx: tx.clone(),
                    reply_rx: slot.take().expect("reply receiver taken twice"),
                    _resp: std::marker::PhantomData,
                };
                let worker_fn = &worker_fn;
                let done_tx = tx.clone();
                let plan = plan.clone();
                scope.spawn(move || {
                    // A panicking worker must still report Done, or the
                    // driver's gate would wait on it forever.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        match plan {
                            None => worker_fn(w, &mut link),
                            Some(plan) => {
                                let mut link = FaultyLink::new(link, w, &plan);
                                loop {
                                    worker_fn(w, &mut link);
                                    if link.crashed_restart_ms().is_none() {
                                        break; // finished, or dead for good
                                    }
                                    // The restart delay is virtual (already
                                    // charged by the driver): re-invoke now.
                                    link.resume();
                                }
                            }
                        }
                    }));
                    let _ = done_tx.send(WorkerEvent::Done { worker: w });
                    if let Err(payload) = outcome {
                        std::panic::resume_unwind(payload);
                    }
                });
            }
            drop(tx);

            let mut running = m;
            let mut done = 0;
            'drive: loop {
                // Conservative gate: wait until no worker can still emit a
                // message for the current decision point.
                while running > 0 {
                    match rx.recv() {
                        Ok(WorkerEvent::Msg { worker: w, bytes, expects_reply }) => {
                            let cost = if charge_phase[w] { nominal } else { 0.0 };
                            charge_phase[w] = false;
                            stats.bytes_sent += bytes.len() as u64;
                            let dur =
                                self.submit(w, vt[w], cost, SimPayload { bytes, expects_reply });
                            if dur > 0.0 {
                                if let Some(h) = &hook {
                                    h.virt_span(Some(w), "compute", vt[w], dur);
                                }
                            }
                            vt[w] += dur;
                            if expects_reply {
                                sent_at[w] = vt[w];
                                state[w] = WState::Awaiting;
                                running -= 1;
                                stats.requests += 1;
                            } else {
                                stats.oneways += 1;
                            }
                        }
                        Ok(WorkerEvent::Done { worker: w }) => {
                            state[w] = WState::Done;
                            running -= 1;
                            done += 1;
                        }
                        Ok(WorkerEvent::Crashed { worker: w, restart_after_ms }) => {
                            // The worker stays `Running` (it re-invokes and
                            // keeps sending) and pays the outage virtually;
                            // a permanent crash is followed by `Done`.
                            if let Some(ms) = restart_after_ms {
                                let outage = f64::from(ms) / 1e3;
                                if let Some(h) = &hook {
                                    h.virt_span(Some(w), "fault_inject", vt[w], outage);
                                }
                                vt[w] += outage;
                            }
                        }
                        Ok(WorkerEvent::Delay { worker: w, seconds }) => {
                            if let Some(h) = &hook {
                                h.virt_span(Some(w), "fault_inject", vt[w], seconds);
                            }
                            vt[w] += seconds;
                        }
                        // All senders gone: every worker thread exited.
                        Err(_) => break,
                    }
                }

                let Some(arrival) = self.next_arrival() else {
                    if done == m {
                        break 'drive;
                    }
                    result = Err(ClusterError::Protocol(
                        "workers blocked on replies with an empty event queue".into(),
                    ));
                    break 'drive;
                };

                if let Some(h) = &hook {
                    h.virt_now(self.now());
                }
                let w = arrival.worker;
                let t0 = Instant::now();
                let req = match Req::decoded(&arrival.payload.bytes) {
                    Ok(req) => req,
                    Err(e) => {
                        result = Err(e);
                        break 'drive;
                    }
                };
                let decode = t0.elapsed().as_secs_f64();
                stats.serialize_seconds += decode;
                if let Some(h) = &hook {
                    h.wall_span(Some(w), "codec", t0, decode);
                }

                let mut ctx = ServerCtx::new(w, arrival.payload.expects_reply);
                server_fn(w, req, &mut ctx);

                for (target, resp) in ctx.take_replies() {
                    if target >= m || state[target] != WState::Awaiting {
                        result = Err(ClusterError::Protocol(format!(
                            "reply to worker {target}, which has no pending request"
                        )));
                        break 'drive;
                    }
                    let t0 = Instant::now();
                    let bytes = resp.encoded();
                    let encode = t0.elapsed().as_secs_f64();
                    stats.serialize_seconds += encode;
                    if let Some(h) = &hook {
                        h.wall_span(Some(target), "codec", t0, encode);
                    }
                    stats.bytes_received += bytes.len() as u64;

                    // The reply reaches the worker after a sampled downlink;
                    // that moment starts the worker's next compute phase.
                    let down = self.downlink(target);
                    let receive_at = self.now() + down;
                    stats.rtt.record((receive_at - sent_at[target]).max(0.0));
                    if let Some(h) = &hook {
                        // The request round trip, from the worker's view:
                        // uplink + server queueing/processing + downlink.
                        h.virt_span(
                            Some(target),
                            "comm",
                            sent_at[target],
                            (receive_at - sent_at[target]).max(0.0),
                        );
                        h.virt_now(receive_at);
                    }
                    vt[target] = receive_at;
                    charge_phase[target] = true;
                    state[target] = WState::Running;
                    running += 1;
                    let sender = reply_txs[target].as_ref().expect("reply sender present");
                    let _ = sender.send(bytes);
                }
            }

            // Unblock any workers still waiting (error paths), then drain
            // their remaining traffic so the scope can join.
            reply_txs.iter_mut().for_each(|t| *t = None);
            while rx.recv().is_ok() {}
        });

        result.map(|()| stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ClusterSpec;

    fn sim(m: usize, seed: u64) -> ClusterSim<SimPayload> {
        ClusterSim::new(ClusterSpec::heterogeneous(m, seed)).with_nominal_cost(1.0)
    }

    #[test]
    fn request_reply_over_virtual_time() {
        let mut served = 0u32;
        let stats = sim(4, 7)
            .run(
                |_w, _req: u32, ctx: &mut ServerCtx<u32>| {
                    served += 1;
                    ctx.reply(served)
                },
                |_w, h| {
                    let mut last = 0;
                    for _ in 0..5 {
                        let v = h.request(1).unwrap();
                        assert!(v > last, "server counter must increase");
                        last = v;
                    }
                },
            )
            .unwrap();
        assert_eq!(served, 20);
        assert_eq!(stats.requests, 20);
        assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
        assert_eq!(stats.rtt.count(), 20);
        // Virtual RTTs include a ≥1s compute phase only on the send side
        // of the *next* request; the recorded RTT covers wire + queueing.
        assert!(stats.rtt.mean_seconds() > 0.0);
    }

    #[test]
    fn oneway_traffic_reaches_server() {
        let mut sum = 0u64;
        sim(3, 1)
            .run(
                |_w, req: u64, _ctx: &mut ServerCtx<()>| sum += req,
                |_w, h| {
                    for i in 1..=10u64 {
                        h.send(i).unwrap();
                    }
                },
            )
            .unwrap();
        assert_eq!(sum, 3 * 55);
    }

    #[test]
    fn phase_pattern_matches_trainer_protocol() {
        // pull (request) → grad (oneway) → pull … : the ASGD shape.
        let mut versions = 0u64;
        let mut grads = 0usize;
        sim(4, 3)
            .run(
                |_w, req: Vec<f32>, ctx: &mut ServerCtx<u64>| {
                    if req.is_empty() {
                        versions += 1;
                        ctx.reply(versions);
                    } else {
                        grads += 1;
                    }
                },
                |_w, h| {
                    for _ in 0..6 {
                        let _v = h.request(Vec::new()).unwrap();
                        h.send(vec![1.0, 2.0, 3.0]).unwrap();
                    }
                },
            )
            .unwrap();
        assert_eq!(versions, 24);
        assert_eq!(grads, 24);
    }

    #[test]
    fn deferred_barrier_over_virtual_time() {
        let mut waiting: Vec<usize> = Vec::new();
        sim(4, 9)
            .run(
                |w, _req: u8, ctx: &mut ServerCtx<u8>| {
                    waiting.push(w);
                    if waiting.len() == 4 {
                        for t in waiting.drain(..) {
                            ctx.reply_to(t, 1);
                        }
                    }
                },
                |_w, h| {
                    for _ in 0..3 {
                        assert_eq!(h.request(0).unwrap(), 1);
                    }
                },
            )
            .unwrap();
    }

    #[test]
    fn bad_reply_target_is_protocol_error() {
        let err = sim(2, 5)
            .run(
                |_w, _req: u8, ctx: &mut ServerCtx<u8>| ctx.reply_to(1, 0),
                |w, h| {
                    if w == 0 {
                        let _ = h.request(0);
                    }
                },
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::Protocol(_)));
    }
}
