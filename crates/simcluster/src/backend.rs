//! The unified cluster-backend contract.
//!
//! Three transports speak the same pull / push-state / push-grad protocol:
//! the discrete-event simulator ([`crate::sim::ClusterSim`]), the
//! real-thread scaffold ([`crate::thread_cluster::ThreadCluster`]), and the
//! TCP parameter server (`lcasgd-netcluster`). This module defines what
//! they have in common so the algorithm layer can drive any of them
//! unchanged:
//!
//! * [`ClusterBackend`] — "spawn M workers, serialize their messages
//!   through one server closure, return transport statistics";
//! * [`WorkerLink`] — the worker-side handle (blocking `request`,
//!   fire-and-forget `send`), fallible because real sockets fail;
//! * [`ServerCtx`] — the server-side reply sink, supporting *deferred*
//!   replies so synchronous barriers (SSGD) work over message passing;
//! * [`WireMsg`] — the length-prefixed little-endian codec every payload
//!   implements (the same conventions as `lcasgd-nn`'s checkpoint format:
//!   `u64` element counts followed by `f32` LE values);
//! * [`TransportStats`] / [`LatencyHistogram`] — bytes, serialization
//!   time and round-trip latency accounting.

use std::fmt;

// ------------------------------------------------------------------ error

/// Why a cluster operation failed. Shared by every backend so algorithm
/// code handles a dead simulator worker and a dead TCP peer identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The peer hung up (channel closed, connection reset, server gone).
    Disconnected,
    /// A request exceeded its deadline.
    Timeout,
    /// The peer violated the protocol (bad frame, codec mismatch, reply
    /// to a worker that was not awaiting one).
    Protocol(String),
    /// Socket-level failure outside the protocol itself.
    Io(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Disconnected => write!(f, "peer disconnected"),
            ClusterError::Timeout => write!(f, "request timed out"),
            ClusterError::Protocol(why) => write!(f, "protocol violation: {why}"),
            ClusterError::Io(why) => write!(f, "i/o error: {why}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind::*;
        match e.kind() {
            TimedOut | WouldBlock => ClusterError::Timeout,
            UnexpectedEof | ConnectionReset | ConnectionAborted | BrokenPipe | NotConnected => {
                ClusterError::Disconnected
            }
            _ => ClusterError::Io(e.to_string()),
        }
    }
}

// ------------------------------------------------------------------ codec

/// Cursor over a received payload.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

macro_rules! reader_scalar {
    ($name:ident, $t:ty) => {
        pub fn $name(&mut self) -> Result<$t, ClusterError> {
            const N: usize = std::mem::size_of::<$t>();
            let bytes = self.take(N)?;
            Ok(<$t>::from_le_bytes(bytes.try_into().unwrap()))
        }
    };
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ClusterError> {
        if self.remaining() < n {
            return Err(ClusterError::Protocol(format!(
                "payload truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    reader_scalar!(u8, u8);
    reader_scalar!(u16, u16);
    reader_scalar!(u32, u32);
    reader_scalar!(u64, u64);
    reader_scalar!(f32, f32);
    reader_scalar!(f64, f64);

    pub fn bool(&mut self) -> Result<bool, ClusterError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(ClusterError::Protocol(format!("invalid bool byte {b}"))),
        }
    }

    /// A `u64` length guarded against running past the payload end, so a
    /// corrupt count cannot trigger a huge allocation.
    pub fn len(&mut self, elem_size: usize) -> Result<usize, ClusterError> {
        let n = self.u64()? as usize;
        if n.checked_mul(elem_size.max(1)).is_none_or(|total| total > self.remaining()) {
            return Err(ClusterError::Protocol(format!(
                "length {n} exceeds remaining payload ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    pub fn vec_f32(&mut self) -> Result<Vec<f32>, ClusterError> {
        let n = self.len(4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    pub fn string(&mut self) -> Result<String, ClusterError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ClusterError::Protocol("invalid utf-8 string".into()))
    }

    /// Asserts the payload is fully consumed.
    pub fn finish(self) -> Result<(), ClusterError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ClusterError::Protocol(format!("{} trailing bytes", self.remaining())))
        }
    }
}

/// Encoding helpers (little-endian, `u64` length prefixes — the same
/// conventions as the checkpoint file format).
pub mod wire {
    pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
        buf.push(v);
    }
    pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
        buf.push(v as u8);
    }
    pub fn put_vec_f32(buf: &mut Vec<u8>, v: &[f32]) {
        put_u64(buf, v.len() as u64);
        for &x in v {
            put_f32(buf, x);
        }
    }
    pub fn put_string(buf: &mut Vec<u8>, s: &str) {
        put_u64(buf, s.len() as u64);
        buf.extend_from_slice(s.as_bytes());
    }
}

/// A message that can cross a wire. Every backend payload implements this
/// — the in-memory backends don't serialize on the hot path, but the
/// shared bound guarantees that a protocol developed against them runs
/// over TCP unchanged.
pub trait WireMsg: Sized {
    fn encode(&self, buf: &mut Vec<u8>);
    fn decode(r: &mut WireReader<'_>) -> Result<Self, ClusterError>;

    /// In-place *valid-CRC* payload corruption: deterministically mutate
    /// this message's value payload (seeded by `seed`) so the result still
    /// frames, checksums and decodes cleanly — garbage that only a
    /// semantic sentinel can catch. With `nan` the mutation poisons floats
    /// to NaN instead of flipping bits. Returns `false` when the message
    /// carries no corruptible payload (the default); such messages pass
    /// through unchanged.
    fn corrupt_payload(&mut self, seed: u64, nan: bool) -> bool {
        let _ = (seed, nan);
        false
    }

    fn encoded(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    fn decoded(bytes: &[u8]) -> Result<Self, ClusterError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl WireMsg for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, ClusterError> {
        Ok(())
    }
}

macro_rules! wiremsg_scalar {
    ($($t:ty => $get:ident / $put:ident),*) => {$(
        impl WireMsg for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                wire::$put(buf, *self);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, ClusterError> {
                r.$get()
            }
        }
    )*};
}

wiremsg_scalar!(
    u8 => u8 / put_u8,
    u16 => u16 / put_u16,
    u32 => u32 / put_u32,
    u64 => u64 / put_u64,
    f32 => f32 / put_f32,
    f64 => f64 / put_f64,
    bool => bool / put_bool
);

impl WireMsg for Vec<f32> {
    fn encode(&self, buf: &mut Vec<u8>) {
        wire::put_vec_f32(buf, self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, ClusterError> {
        r.vec_f32()
    }
}

impl WireMsg for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        wire::put_string(buf, self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, ClusterError> {
        r.string()
    }
}

// ------------------------------------------------------------------ stats

/// Log-bucketed latency histogram: bucket `i` covers round-trip times in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs sub-microsecond
/// samples).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyHistogram {
    counts: [u64; 32],
    sum_seconds: f64,
    max_seconds: f64,
}

impl LatencyHistogram {
    pub fn record(&mut self, seconds: f64) {
        let micros = (seconds * 1e6).max(0.0);
        let bucket = if micros < 1.0 { 0 } else { (micros.log2() as usize).min(31) };
        self.counts[bucket] += 1;
        self.sum_seconds += seconds.max(0.0);
        self.max_seconds = self.max_seconds.max(seconds);
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn mean_seconds(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_seconds / n as f64
        }
    }

    pub fn max_seconds(&self) -> f64 {
        self.max_seconds
    }

    /// `(bucket_floor_micros, count)` for each nonempty bucket.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
            .collect()
    }

    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum_seconds += other.sum_seconds;
        self.max_seconds = self.max_seconds.max(other.max_seconds);
    }
}

/// What a backend run cost in transport terms. In-memory backends report
/// message counts only; the TCP backend fills in every field.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransportStats {
    /// Worker→server payload bytes (including framing where it exists).
    pub bytes_sent: u64,
    /// Server→worker payload bytes.
    pub bytes_received: u64,
    /// Wall-clock seconds spent encoding + decoding payloads.
    pub serialize_seconds: f64,
    /// Blocking request/response round trips completed.
    pub requests: u64,
    /// Fire-and-forget messages delivered.
    pub oneways: u64,
    /// Round-trip latency of blocking requests.
    pub rtt: LatencyHistogram,
}

impl TransportStats {
    pub fn merge(&mut self, other: &TransportStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.serialize_seconds += other.serialize_seconds;
        self.requests += other.requests;
        self.oneways += other.oneways;
        self.rtt.merge(&other.rtt);
    }
}

// ------------------------------------------------------------- tracing

/// Which clock a duration or timestamp was measured against.
///
/// The discrete-event simulator advances a *virtual* clock; the thread and
/// TCP backends run in real time on the *wall* (monotonic) clock. The two
/// are never comparable, so every timed figure a run reports carries its
/// domain explicitly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ClockDomain {
    /// Real monotonic time (`std::time::Instant`).
    #[default]
    Wall,
    /// Simulated seconds from the discrete-event queue.
    Virtual,
}

impl std::fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClockDomain::Wall => write!(f, "wall"),
            ClockDomain::Virtual => write!(f, "virtual"),
        }
    }
}

/// Observer interface backends use to report phase-tagged span events.
///
/// Backends are instrumented at their natural measurement points — the
/// simulator emits virtual-clock compute/communication spans as it
/// schedules them, the TCP transport emits wall-clock codec spans around
/// frame encode/decode — and forward them here. The driver (`core`)
/// provides the implementation that aggregates the events into a
/// timeline; the default methods are no-ops so trivial hooks only
/// implement what they observe.
///
/// All methods take `&self`: hooks are shared across worker threads and
/// must synchronize internally.
pub trait TraceHook: Send + Sync {
    /// A wall-clock span: `phase` ran for `dur_seconds` starting at
    /// `start`. `worker` is `None` for server-side work.
    fn wall_span(
        &self,
        worker: Option<usize>,
        phase: &'static str,
        start: std::time::Instant,
        dur_seconds: f64,
    ) {
        let _ = (worker, phase, start, dur_seconds);
    }

    /// A virtual-clock span (simulator backends only), in simulated
    /// seconds from the start of the run.
    fn virt_span(
        &self,
        worker: Option<usize>,
        phase: &'static str,
        start_seconds: f64,
        dur_seconds: f64,
    ) {
        let _ = (worker, phase, start_seconds, dur_seconds);
    }

    /// Advances the virtual-clock high-water mark. Simulator backends
    /// call this as virtual time progresses so the driver can stamp
    /// epoch records in virtual seconds mid-run.
    fn virt_now(&self, seconds: f64) {
        let _ = seconds;
    }
}

// ---------------------------------------------------------- replication

/// Byte-level duplex between a primary parameter server and its hot
/// standby. The replication stream is payload-agnostic at this layer —
/// `core` encodes [`WireMsg`] replication records into the byte frames —
/// so in-memory backends can carry it over channels while the TCP backend
/// routes it through its CRC-checked frame codec.
pub trait ReplicaDuplex: Send {
    /// Delivers one replication frame to the peer.
    fn send(&mut self, payload: &[u8]) -> Result<(), ClusterError>;

    /// Blocks for the next replication frame from the peer.
    /// `Disconnected` means the peer hung up (end of stream).
    fn recv(&mut self) -> Result<Vec<u8>, ClusterError>;
}

/// In-process [`ReplicaDuplex`] over a pair of mpsc channels — the
/// default transport for `ClusterSim` and `ThreadCluster`, where primary
/// and standby share an address space.
pub struct ChannelDuplex {
    tx: std::sync::mpsc::Sender<Vec<u8>>,
    rx: std::sync::mpsc::Receiver<Vec<u8>>,
}

impl ReplicaDuplex for ChannelDuplex {
    fn send(&mut self, payload: &[u8]) -> Result<(), ClusterError> {
        self.tx.send(payload.to_vec()).map_err(|_| ClusterError::Disconnected)
    }

    fn recv(&mut self) -> Result<Vec<u8>, ClusterError> {
        self.rx.recv().map_err(|_| ClusterError::Disconnected)
    }
}

/// A connected `(primary_end, standby_end)` duplex pair, as built by
/// [`ClusterBackend::replica_duplex`].
pub type ReplicaDuplexPair = (Box<dyn ReplicaDuplex>, Box<dyn ReplicaDuplex>);

/// Builds a connected pair of in-process duplex endpoints: whatever one
/// end sends, the other receives, in order.
pub fn channel_duplex_pair() -> (ChannelDuplex, ChannelDuplex) {
    let (atx, brx) = std::sync::mpsc::channel();
    let (btx, arx) = std::sync::mpsc::channel();
    (ChannelDuplex { tx: atx, rx: arx }, ChannelDuplex { tx: btx, rx: brx })
}

// -------------------------------------------------------------- contract

/// The worker side of a backend: rank plus the two message primitives of
/// Algorithm 1. Object-safe so `worker_fn` receives `&mut dyn WorkerLink`
/// and algorithm code stays backend-agnostic.
pub trait WorkerLink<Req, Resp> {
    /// This worker's rank in `0..M`.
    fn worker(&self) -> usize;

    /// Sends a request and blocks for the server's response (pull
    /// weights, push state and await ℓ_delay, …).
    fn request(&mut self, req: Req) -> Result<Resp, ClusterError>;

    /// Fire-and-forget send (push gradients).
    fn send(&mut self, req: Req) -> Result<(), ClusterError>;
}

/// The server side's reply sink for one incoming message.
///
/// Replying is decoupled from returning so the server can (a) answer the
/// current worker immediately, (b) defer — leave the worker blocked and
/// release it from a later message's handler (the SSGD barrier), or (c)
/// answer several blocked workers at once.
pub struct ServerCtx<Resp> {
    current: usize,
    expects_reply: bool,
    queued: Vec<(usize, Resp, Option<u64>)>,
}

impl<Resp> ServerCtx<Resp> {
    /// Builds the context for one message. Backends call this; algorithm
    /// code only consumes it.
    pub fn new(current: usize, expects_reply: bool) -> Self {
        ServerCtx { current, expects_reply, queued: Vec::new() }
    }

    /// Rank of the worker whose message is being processed.
    pub fn worker(&self) -> usize {
        self.current
    }

    /// Whether the current message is a blocking request.
    pub fn expects_reply(&self) -> bool {
        self.expects_reply
    }

    /// Replies to the current worker.
    pub fn reply(&mut self, resp: Resp) {
        self.queued.push((self.current, resp, None));
    }

    /// Replies to an arbitrary blocked worker (barrier release). The
    /// backend verifies the target is actually awaiting a reply.
    pub fn reply_to(&mut self, worker: usize, resp: Resp) {
        self.queued.push((worker, resp, None));
    }

    /// [`ServerCtx::reply`] plus a *coalescing key*: a caller-chosen id
    /// that is stable iff the reply's encoded payload is stable. A
    /// transport that encodes replies may serve every same-key reply from
    /// one cached encoding (the TCP reactor does); transports that ship
    /// values directly ignore the key.
    pub fn reply_keyed(&mut self, resp: Resp, key: u64) {
        self.queued.push((self.current, resp, Some(key)));
    }

    /// [`ServerCtx::reply_to`] with a coalescing key.
    pub fn reply_to_keyed(&mut self, worker: usize, resp: Resp, key: u64) {
        self.queued.push((worker, resp, Some(key)));
    }

    /// Drains the queued replies, dropping coalescing keys. Backend-side
    /// only; backends that cannot exploit the key use this.
    pub fn take_replies(&mut self) -> Vec<(usize, Resp)> {
        std::mem::take(&mut self.queued).into_iter().map(|(w, r, _)| (w, r)).collect()
    }

    /// Drains the queued replies with their coalescing keys. Backend-side
    /// only.
    pub fn take_keyed_replies(&mut self) -> Vec<(usize, Resp, Option<u64>)> {
        std::mem::take(&mut self.queued)
    }
}

/// A transport that can run one parameter-server round: M workers
/// executing `worker_fn` against [`WorkerLink`]s, every message processed
/// serially by `server_fn` in arrival order (Algorithm 2's event loop),
/// until all workers have finished.
pub trait ClusterBackend {
    /// Number of workers this backend will spawn.
    fn workers(&self) -> usize;

    /// Which clock this backend's timings are measured against. Real
    /// backends run on the wall clock; the simulator overrides this.
    fn clock_domain(&self) -> ClockDomain {
        ClockDomain::Wall
    }

    /// How this backend packs dense `f32` payloads on the wire. Protocols
    /// that support quantized encodings consult this to pick matching
    /// message variants; the default ([`WireCodec::F32`]) is the seed
    /// protocol's bit-exact encoding.
    fn wire_codec(&self) -> crate::codec::WireCodec {
        crate::codec::WireCodec::F32
    }

    /// Installs a [`TraceHook`] the backend will report span events to
    /// during [`ClusterBackend::run`]. Backends without internal
    /// measurement points may ignore it (the default), in which case the
    /// driver's own instrumentation is the only event source.
    fn attach_trace_hook(&mut self, hook: std::sync::Arc<dyn TraceHook>) {
        let _ = hook;
    }

    /// Builds the replication duplex between the primary server and a hot
    /// standby: `(primary_end, standby_end)`. In-memory backends use
    /// process-local channels (the default); the TCP backend overrides
    /// this to route the stream through its CRC-framed loopback transport
    /// so replication traffic exercises the same codec as worker traffic.
    fn replica_duplex(&mut self) -> Result<ReplicaDuplexPair, ClusterError> {
        let (p, s) = channel_duplex_pair();
        Ok((Box::new(p), Box::new(s)))
    }

    /// Runs the round to completion and reports transport statistics.
    fn run<Req, Resp, S, W>(
        self,
        server_fn: S,
        worker_fn: W,
    ) -> Result<TransportStats, ClusterError>
    where
        Req: WireMsg + Send + 'static,
        Resp: WireMsg + Send + 'static,
        S: FnMut(usize, Req, &mut ServerCtx<Resp>),
        W: Fn(usize, &mut dyn WorkerLink<Req, Resp>) + Send + Sync;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut buf = Vec::new();
        42u8.encode(&mut buf);
        7u16.encode(&mut buf);
        9u32.encode(&mut buf);
        u64::MAX.encode(&mut buf);
        1.5f32.encode(&mut buf);
        (-2.25f64).encode(&mut buf);
        true.encode(&mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(u8::decode(&mut r).unwrap(), 42);
        assert_eq!(u16::decode(&mut r).unwrap(), 7);
        assert_eq!(u32::decode(&mut r).unwrap(), 9);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX);
        assert_eq!(f32::decode(&mut r).unwrap(), 1.5);
        assert_eq!(f64::decode(&mut r).unwrap(), -2.25);
        assert!(bool::decode(&mut r).unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn vec_and_string_roundtrip() {
        let v = vec![1.0f32, -2.5, f32::MIN_POSITIVE];
        let s = "hello wire".to_string();
        let mut buf = v.encoded();
        s.encode(&mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(Vec::<f32>::decode(&mut r).unwrap(), v);
        assert_eq!(String::decode(&mut r).unwrap(), s);
    }

    #[test]
    fn truncated_payload_is_protocol_error() {
        let buf = 1234u64.encoded();
        let mut r = WireReader::new(&buf[..4]);
        assert!(matches!(u64::decode(&mut r), Err(ClusterError::Protocol(_))));
    }

    #[test]
    fn huge_length_is_rejected_without_allocating() {
        // A corrupt count (u64::MAX elements) must fail cleanly.
        let buf = u64::MAX.encoded();
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.vec_f32(), Err(ClusterError::Protocol(_))));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut buf = 5u32.encoded();
        buf.push(0);
        assert!(matches!(u32::decoded(&buf), Err(ClusterError::Protocol(_))));
    }

    #[test]
    fn invalid_bool_is_rejected() {
        assert!(matches!(bool::decoded(&[7]), Err(ClusterError::Protocol(_))));
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = LatencyHistogram::default();
        h.record(0.5e-6); // sub-microsecond → bucket 0
        h.record(3e-6); // bucket 1 (2–4 µs)
        h.record(1.0); // 1 s = 1e6 µs → bucket 19
        assert_eq!(h.count(), 3);
        assert!(h.max_seconds() == 1.0);
        assert!((h.mean_seconds() - (0.5e-6 + 3e-6 + 1.0) / 3.0).abs() < 1e-12);
        let buckets = h.nonempty_buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].0, 1);
        assert_eq!(buckets[1].0, 2);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = TransportStats { bytes_sent: 10, requests: 2, ..Default::default() };
        a.rtt.record(1e-3);
        let mut b = TransportStats { bytes_received: 5, oneways: 1, ..Default::default() };
        b.rtt.record(2e-3);
        a.merge(&b);
        assert_eq!(a.bytes_sent, 10);
        assert_eq!(a.bytes_received, 5);
        assert_eq!(a.requests, 2);
        assert_eq!(a.oneways, 1);
        assert_eq!(a.rtt.count(), 2);
    }

    #[test]
    fn io_error_mapping() {
        use std::io::{Error, ErrorKind};
        assert_eq!(ClusterError::from(Error::from(ErrorKind::TimedOut)), ClusterError::Timeout);
        assert_eq!(
            ClusterError::from(Error::from(ErrorKind::ConnectionReset)),
            ClusterError::Disconnected
        );
        assert!(matches!(
            ClusterError::from(Error::from(ErrorKind::PermissionDenied)),
            ClusterError::Io(_)
        ));
    }

    #[test]
    fn server_ctx_queues_replies() {
        let mut ctx: ServerCtx<u32> = ServerCtx::new(2, true);
        assert_eq!(ctx.worker(), 2);
        assert!(ctx.expects_reply());
        ctx.reply(7);
        ctx.reply_to(0, 9);
        assert_eq!(ctx.take_replies(), vec![(2, 7), (0, 9)]);
        assert!(ctx.take_replies().is_empty());
    }
}
