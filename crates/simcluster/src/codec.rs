//! Quantized wire codecs for the weight downlink.
//!
//! The parameter server's dominant wire cost is the dense `f32` weight
//! vector it returns to every pull. [`WireCodec`] selects how that vector
//! travels: raw `f32` (the seed protocol, bit-exact), `bf16` (truncated
//! IEEE single precision, 2 bytes/entry, relative error ≤ 2⁻⁸), or
//! block-scaled `int8` (1 byte/entry plus one `f32` scale per
//! [`INT8_BLOCK`] entries, absolute error ≤ half a quantization step of
//! the block's max magnitude).
//!
//! The codec is negotiated at connection time (the TCP `Hello` frame
//! carries the worker's codec id and the server refuses a mismatch), and
//! `F32` encodes *byte-identically* to the seed protocol so turning
//! quantization off is bitwise-invisible on the wire.
//!
//! The gradient *uplink* is not encoded here: it already has a lossy path
//! with error feedback (`lcasgd-core`'s `CompressedGrad` residual
//! machinery), and the codec simply selects a matching scheme there.

use crate::backend::{wire, ClusterError, WireMsg, WireReader};

/// Entries per `int8` quantization block (one `f32` scale each).
pub const INT8_BLOCK: usize = 256;

/// How dense `f32` payloads are packed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// Raw IEEE single precision — byte-identical to the seed protocol.
    #[default]
    F32,
    /// Upper 16 bits of the `f32`, round-to-nearest-even. Halves the
    /// downlink; relative error bounded by 2⁻⁸.
    Bf16,
    /// Block-scaled 8-bit quantization: per-[`INT8_BLOCK`] max-magnitude
    /// scale, levels in `[-127, 127]`. Quarters the downlink.
    Int8,
}

impl WireCodec {
    /// Stable wire id, carried in the `Hello` frame.
    pub fn id(self) -> u8 {
        match self {
            WireCodec::F32 => 0,
            WireCodec::Bf16 => 1,
            WireCodec::Int8 => 2,
        }
    }

    /// Inverse of [`WireCodec::id`].
    pub fn from_id(id: u8) -> Option<WireCodec> {
        Some(match id {
            0 => WireCodec::F32,
            1 => WireCodec::Bf16,
            2 => WireCodec::Int8,
            _ => return None,
        })
    }

    /// CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            WireCodec::F32 => "f32",
            WireCodec::Bf16 => "bf16",
            WireCodec::Int8 => "int8",
        }
    }

    /// Parses the CLI-facing name.
    pub fn parse(s: &str) -> Option<WireCodec> {
        Some(match s {
            "f32" => WireCodec::F32,
            "bf16" => WireCodec::Bf16,
            "int8" => WireCodec::Int8,
            _ => return None,
        })
    }
}

impl std::fmt::Display for WireCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// `f32` → `bf16` with round-to-nearest-even (the same rounding hardware
/// bf16 units use; plain truncation would bias every weight toward zero).
pub fn bf16_encode(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        // Preserve NaN-ness; quiet it so the low-half truncation cannot
        // turn a signaling payload into infinity.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round_bit = 0x0000_8000u32;
    let lsb = (bits >> 16) & 1;
    ((bits.wrapping_add(round_bit - 1 + lsb)) >> 16) as u16
}

/// `bf16` → `f32` (exact: every bf16 value is representable).
pub fn bf16_decode(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Quantizes `vals` into `int8` levels with one scale per
/// [`INT8_BLOCK`]-entry block. Returns `(levels, scales)`.
pub fn int8_pack(vals: &[f32]) -> (Vec<i8>, Vec<f32>) {
    let mut levels = Vec::with_capacity(vals.len());
    let mut scales = Vec::with_capacity(vals.len().div_ceil(INT8_BLOCK));
    for block in vals.chunks(INT8_BLOCK) {
        let max = block.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max > 0.0 && max.is_finite() { max / 127.0 } else { 1.0 };
        scales.push(scale);
        levels.extend(block.iter().map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8));
    }
    (levels, scales)
}

/// Inverse of [`int8_pack`].
pub fn int8_unpack(levels: &[i8], scales: &[f32]) -> Vec<f32> {
    levels
        .chunks(INT8_BLOCK)
        .zip(scales)
        .flat_map(|(block, &s)| block.iter().map(move |&l| l as f32 * s))
        .collect()
}

/// A dense `f32` vector packed under a [`WireCodec`]. The `F32` case is
/// deliberately *not* representable here: callers keep using the seed
/// protocol's raw-vector encoding for it, so quantization-off stays
/// byte-identical to the seed wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum PackedF32 {
    /// bf16 halves, one per entry.
    Bf16(Vec<u16>),
    /// Block-scaled int8: `scales[i]` covers `levels[i*INT8_BLOCK..]`.
    Int8 { levels: Vec<i8>, scales: Vec<f32> },
}

impl PackedF32 {
    /// Packs `vals` under `codec`. Returns `None` for [`WireCodec::F32`]
    /// (raw vectors never take this path).
    pub fn pack(codec: WireCodec, vals: &[f32]) -> Option<PackedF32> {
        match codec {
            WireCodec::F32 => None,
            WireCodec::Bf16 => {
                Some(PackedF32::Bf16(vals.iter().map(|&v| bf16_encode(v)).collect()))
            }
            WireCodec::Int8 => {
                let (levels, scales) = int8_pack(vals);
                Some(PackedF32::Int8 { levels, scales })
            }
        }
    }

    /// Reconstructs the (lossy) dense vector.
    pub fn unpack(&self) -> Vec<f32> {
        match self {
            PackedF32::Bf16(halves) => halves.iter().map(|&b| bf16_decode(b)).collect(),
            PackedF32::Int8 { levels, scales } => int8_unpack(levels, scales),
        }
    }

    /// Number of entries in the packed vector.
    pub fn len(&self) -> usize {
        match self {
            PackedF32::Bf16(halves) => halves.len(),
            PackedF32::Int8 { levels, .. } => levels.len(),
        }
    }

    /// Whether the packed vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl WireMsg for PackedF32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PackedF32::Bf16(halves) => {
                wire::put_u8(buf, 0);
                wire::put_u64(buf, halves.len() as u64);
                for &h in halves {
                    wire::put_u16(buf, h);
                }
            }
            PackedF32::Int8 { levels, scales } => {
                wire::put_u8(buf, 1);
                wire::put_u64(buf, levels.len() as u64);
                for &l in levels {
                    wire::put_u8(buf, l as u8);
                }
                wire::put_u64(buf, scales.len() as u64);
                for &s in scales {
                    wire::put_f32(buf, s);
                }
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, ClusterError> {
        match r.u8()? {
            0 => {
                let n = r.len(2)?;
                let halves = (0..n).map(|_| r.u16()).collect::<Result<_, _>>()?;
                Ok(PackedF32::Bf16(halves))
            }
            1 => {
                let n = r.len(1)?;
                let levels: Vec<i8> =
                    (0..n).map(|_| r.u8().map(|b| b as i8)).collect::<Result<_, _>>()?;
                let ns = r.len(4)?;
                if ns != n.div_ceil(INT8_BLOCK) {
                    return Err(ClusterError::Protocol(format!(
                        "int8 payload of {n} levels wants {} scales, got {ns}",
                        n.div_ceil(INT8_BLOCK)
                    )));
                }
                let scales = (0..ns).map(|_| r.f32()).collect::<Result<_, _>>()?;
                Ok(PackedF32::Int8 { levels, scales })
            }
            tag => Err(ClusterError::Protocol(format!("unknown PackedF32 tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_ids_and_names_roundtrip() {
        for c in [WireCodec::F32, WireCodec::Bf16, WireCodec::Int8] {
            assert_eq!(WireCodec::from_id(c.id()), Some(c));
            assert_eq!(WireCodec::parse(c.name()), Some(c));
        }
        assert_eq!(WireCodec::from_id(9), None);
        assert_eq!(WireCodec::parse("fp64"), None);
        assert_eq!(WireCodec::default(), WireCodec::F32);
    }

    #[test]
    fn bf16_bounds_and_specials() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.1, std::f32::consts::PI, 1e-20, -1e20, 255.5] {
            let back = bf16_decode(bf16_encode(v));
            assert!((v - back).abs() <= v.abs() / 256.0, "bf16 error out of bounds: {v} -> {back}");
        }
        assert_eq!(bf16_decode(bf16_encode(f32::INFINITY)), f32::INFINITY);
        assert!(bf16_decode(bf16_encode(f32::NAN)).is_nan());
        // Round-to-nearest-even: 1.0 + 2⁻⁹ rounds down to 1.0 (even),
        // 1.0 + 3·2⁻⁹ rounds up.
        assert_eq!(bf16_decode(bf16_encode(1.0 + 1.0 / 512.0)), 1.0);
        assert_eq!(bf16_decode(bf16_encode(1.0 + 3.0 / 512.0)), 1.0 + 1.0 / 128.0);
    }

    #[test]
    fn int8_block_bounds() {
        let vals: Vec<f32> = (0..600).map(|i| ((i * 37) % 101) as f32 / 10.0 - 5.0).collect();
        let (levels, scales) = int8_pack(&vals);
        assert_eq!(levels.len(), 600);
        assert_eq!(scales.len(), 3);
        let back = int8_unpack(&levels, &scales);
        for (block, (orig, rec)) in vals.chunks(INT8_BLOCK).zip(back.chunks(INT8_BLOCK)).enumerate()
        {
            let max = orig.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let step = if max > 0.0 { max / 127.0 } else { 1.0 };
            for (a, b) in orig.iter().zip(rec) {
                assert!((a - b).abs() <= step / 2.0 + 1e-6, "block {block}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn packed_roundtrips_the_wire() {
        let vals: Vec<f32> = (0..300).map(|i| (i as f32 - 150.0) / 7.0).collect();
        for codec in [WireCodec::Bf16, WireCodec::Int8] {
            let packed = PackedF32::pack(codec, &vals).unwrap();
            assert_eq!(packed.len(), vals.len());
            let back = PackedF32::decoded(&packed.encoded()).unwrap();
            assert_eq!(back, packed);
            assert_eq!(back.unpack(), packed.unpack());
        }
        assert!(PackedF32::pack(WireCodec::F32, &vals).is_none());
    }

    #[test]
    fn corrupt_packed_payloads_are_rejected() {
        assert!(matches!(PackedF32::decoded(&[7]), Err(ClusterError::Protocol(_))));
        let ok = PackedF32::Bf16(vec![1, 2, 3]).encoded();
        assert!(PackedF32::decoded(&ok[..ok.len() - 1]).is_err());
        // Scale count disagreeing with the level count.
        let mut buf = Vec::new();
        wire::put_u8(&mut buf, 1);
        wire::put_u64(&mut buf, 2); // 2 levels → 1 block
        wire::put_u8(&mut buf, 5);
        wire::put_u8(&mut buf, 6);
        wire::put_u64(&mut buf, 2); // but 2 scales
        wire::put_f32(&mut buf, 1.0);
        wire::put_f32(&mut buf, 1.0);
        assert!(matches!(PackedF32::decoded(&buf), Err(ClusterError::Protocol(_))));
    }
}
