//! Deterministic fault injection shared by every [`ClusterBackend`].
//!
//! A [`FaultPlan`] is a schedule of failures — worker crashes (with or
//! without restart), dropped/duplicated/corrupted messages, slow links and
//! partitions, plus an optional server restart — that every backend
//! interprets *identically*. Triggers are indexed by each worker's
//! **link-operation count**: the n-th `request`/`send` a worker issues is
//! op `n`, regardless of wall-clock or virtual time. Because the algorithm
//! layer drives the same protocol over every backend, op indices line up
//! across the simulator, the thread backend and real TCP, and on the
//! deterministic simulator the whole fault timeline replays bit-identically
//! from the plan.
//!
//! Interpretation happens in [`FaultyLink`], a [`WorkerLink`] wrapper the
//! backends install around their native links when a plan is attached
//! (`with_fault_plan`). The few genuinely transport-specific effects —
//! killing a socket, writing a bad-CRC frame, charging virtual instead of
//! wall-clock delay — are delegated to the [`FaultHooks`] trait that each
//! native link implements.
//!
//! ## Uniform semantics
//!
//! * **Crash** — injected *before* the op executes, so no reply is ever in
//!   flight at crash time (the previous request completed fully). The
//!   wrapped link reports the crash to its transport (TCP: the socket dies
//!   without a Goodbye; simulator: the driver is notified so it can charge
//!   the restart delay in virtual time) and the op returns
//!   [`ClusterError::Disconnected`], which unwinds `worker_fn`. With a
//!   restart delay the backend re-invokes `worker_fn` on the same link —
//!   the op counter keeps counting across incarnations — otherwise the
//!   worker is dead for good.
//! * **Drop** — a one-way message silently vanishes. A dropped *request*
//!   can never produce its reply, so it escalates to a crash with
//!   immediate restart: exactly what a real worker does when a request
//!   times out against an unreachable server (reconnect and rejoin).
//! * **Duplicate** — a one-way message is delivered twice (at-least-once
//!   delivery); requests are never duplicated.
//! * **Corrupt** — the message is destroyed in transit. On TCP the link
//!   writes a real frame with a bad CRC (exercising the server's
//!   per-connection rejection path); elsewhere the checksum discard is
//!   modeled as a drop. Corrupted requests escalate like dropped ones.
//! * **Slow / Partition** — the op is delayed (wall-clock on real
//!   transports, virtual time on the simulator) before executing. A
//!   partition is a longer stall that ends when the link heals.
//! * **Server restart** — triggered by applied-update count, not op count,
//!   because only the algorithm layer knows when updates apply; the
//!   trainer checkpoints and halts, and the caller resumes from the
//!   checkpoint.

use crate::backend::{ClusterError, WireMsg, WorkerLink};
use std::fmt;
use std::sync::{Arc, Mutex};

/// One scheduled failure, triggered when `worker`'s link-operation counter
/// reaches `at_op` (0-based: `at_op = 3` fires on the worker's 4th op).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    pub worker: usize,
    pub at_op: u64,
    pub kind: FaultKind,
}

/// The failure mode of one [`FaultEvent`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The worker process dies before the op. `restart_after_ms: Some(d)`
    /// re-invokes `worker_fn` after `d` (wall or virtual) milliseconds;
    /// `None` is a permanent crash.
    Crash { restart_after_ms: Option<u32> },
    /// The message is lost in transit.
    Drop,
    /// A one-way message is delivered twice.
    Duplicate,
    /// The message is corrupted in transit (fails its checksum).
    Corrupt,
    /// The link stalls for `delay_ms` before delivering.
    SlowLink { delay_ms: u32 },
    /// The link is partitioned; the op stalls until it heals.
    Partition { heal_ms: u32 },
    /// The message's float payload is poisoned to NaN *before* framing, so
    /// it passes every checksum and decodes cleanly — only a semantic
    /// sentinel (NaN detection at the server) can catch it.
    NanGrad,
    /// Valid-CRC payload corruption: deterministic bit flips in the value
    /// payload before framing. The frame CRC and codec both pass; the
    /// values are garbage.
    CorruptPayload,
    /// A sustained straggler: every op for the next `ops` ops (this one
    /// included) is delayed by `delay_ms` before executing.
    Straggle { delay_ms: u32, ops: u32 },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Crash { restart_after_ms: Some(ms) } => write!(f, "crash(restart {ms}ms)"),
            FaultKind::Crash { restart_after_ms: None } => write!(f, "crash(permanent)"),
            FaultKind::Drop => write!(f, "drop"),
            FaultKind::Duplicate => write!(f, "duplicate"),
            FaultKind::Corrupt => write!(f, "corrupt"),
            FaultKind::SlowLink { delay_ms } => write!(f, "slow({delay_ms}ms)"),
            FaultKind::Partition { heal_ms } => write!(f, "partition({heal_ms}ms)"),
            FaultKind::NanGrad => write!(f, "nan-grad"),
            FaultKind::CorruptPayload => write!(f, "corrupt-payload"),
            FaultKind::Straggle { delay_ms, ops } => {
                write!(f, "straggle({delay_ms}ms x {ops} ops)")
            }
        }
    }
}

/// What actually happened during a faulty run, in observation order.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultRecord {
    /// A scheduled fault fired on a worker's op.
    Injected { worker: usize, op: u64, kind: FaultKind },
    /// A crashed worker's `worker_fn` was re-invoked.
    WorkerRestarted { worker: usize, op: u64 },
    /// The server checkpointed and halted at this applied-update count.
    ServerHalted { at_update: u64 },
    /// A run resumed from a checkpoint taken at this update count.
    Resumed { at_update: u64 },
    /// A periodic checkpoint write failed (I/O error). The run continues;
    /// the failure is surfaced here instead of panicking the server.
    CheckpointFailed { at_update: u64, error: String },
    /// The primary parameter server was killed and its hot standby
    /// promoted. `at_update` is the primary's applied count at the kill;
    /// `lost_updates` is how many applied-but-unreplicated updates the
    /// promotion discarded.
    FailedOver { at_update: u64, from_epoch: u64, to_epoch: u64, lost_updates: u64 },
    /// The standby duplex closed (or stopped acknowledging) mid-run. The
    /// run continues *unreplicated* — no further failover is possible —
    /// instead of aborting.
    StandbyLost { at_update: u64, error: String },
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultRecord::Injected { worker, op, kind } => {
                write!(f, "worker {worker} op {op}: {kind}")
            }
            FaultRecord::WorkerRestarted { worker, op } => {
                write!(f, "worker {worker} restarted at op {op}")
            }
            FaultRecord::ServerHalted { at_update } => {
                write!(f, "server halted at update {at_update}")
            }
            FaultRecord::Resumed { at_update } => write!(f, "resumed from update {at_update}"),
            FaultRecord::CheckpointFailed { at_update, error } => {
                write!(f, "checkpoint failed at update {at_update}: {error}")
            }
            FaultRecord::FailedOver { at_update, from_epoch, to_epoch, lost_updates } => {
                write!(
                    f,
                    "primary killed at update {at_update}: standby promoted \
                     (epoch {from_epoch} -> {to_epoch}, {lost_updates} updates lost)"
                )
            }
            FaultRecord::StandbyLost { at_update, error } => {
                write!(f, "standby lost at update {at_update}: {error} (continuing unreplicated)")
            }
        }
    }
}

/// Shared, clonable record of injected faults and recoveries. Backends and
/// the trainer hold clones of the same log; the caller reads it afterward.
///
/// Every record is stamped with the wall-clock instant it was observed, so
/// fault events can be replayed onto a trace timeline.
#[derive(Clone, Default, Debug)]
pub struct FaultLog(Arc<Mutex<Vec<(FaultRecord, std::time::Instant)>>>);

impl FaultLog {
    /// Appends one record, stamped with the current wall-clock instant.
    pub fn push(&self, rec: FaultRecord) {
        self.0.lock().expect("fault log poisoned").push((rec, std::time::Instant::now()));
    }

    /// Snapshot of all records so far.
    pub fn records(&self) -> Vec<FaultRecord> {
        self.0.lock().expect("fault log poisoned").iter().map(|(r, _)| r.clone()).collect()
    }

    /// Snapshot of all records with their observation instants.
    pub fn timed_records(&self) -> Vec<(FaultRecord, std::time::Instant)> {
        self.0.lock().expect("fault log poisoned").clone()
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.0.lock().expect("fault log poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A deterministic schedule of failures for one run.
///
/// Cloning shares the underlying [`FaultLog`], so the copy handed to a
/// backend via `with_fault_plan` reports into the same log the caller (and
/// the trainer) reads.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
    /// Halt-and-checkpoint the server once this many updates have applied.
    pub server_restart_at_update: Option<u64>,
    /// Kill the primary parameter server (promote its hot standby) once
    /// this many updates have applied. Requires the run to have a standby
    /// attached; like the server restart, the trigger is the applied-update
    /// count so it replays identically on every backend.
    pub primary_kill_at_update: Option<u64>,
    log: FaultLog,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one event (builder style).
    pub fn with_event(mut self, worker: usize, at_op: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { worker, at_op, kind });
        self
    }

    /// Schedules the server halt-and-checkpoint (builder style).
    pub fn with_server_restart(mut self, at_update: u64) -> Self {
        self.server_restart_at_update = Some(at_update);
        self
    }

    /// Schedules the primary kill / standby promotion (builder style).
    pub fn with_primary_kill(mut self, at_update: u64) -> Self {
        self.primary_kill_at_update = Some(at_update);
        self
    }

    /// The shared log this plan's injections report into.
    pub fn log(&self) -> FaultLog {
        self.log.clone()
    }

    /// Snapshot of recorded faults/recoveries, sorted into a canonical
    /// order (records from concurrent workers land in the log in
    /// scheduler order; the canonical sort makes runs comparable).
    pub fn records(&self) -> Vec<FaultRecord> {
        let mut recs = self.log.records();
        recs.sort_by_key(|r| match r {
            FaultRecord::Injected { worker, op, .. } => (0, *worker, *op),
            FaultRecord::WorkerRestarted { worker, op } => (1, *worker, *op),
            FaultRecord::ServerHalted { at_update } => (2, 0, *at_update),
            FaultRecord::Resumed { at_update } => (3, 0, *at_update),
            FaultRecord::CheckpointFailed { at_update, .. } => (4, 0, *at_update),
            FaultRecord::FailedOver { at_update, .. } => (5, 0, *at_update),
            FaultRecord::StandbyLost { at_update, .. } => (6, 0, *at_update),
        });
        recs
    }

    /// This worker's events, sorted by trigger op.
    pub fn schedule_for(&self, worker: usize) -> Vec<(u64, FaultKind)> {
        let mut evs: Vec<(u64, FaultKind)> =
            self.events.iter().filter(|e| e.worker == worker).map(|e| (e.at_op, e.kind)).collect();
        evs.sort_by_key(|&(op, _)| op);
        evs
    }

    /// Largest worker index referenced by any event.
    pub fn max_worker(&self) -> Option<usize> {
        self.events.iter().map(|e| e.worker).max()
    }

    /// Generates a seeded random plan: `faults` events spread over
    /// `workers` workers and the op range `[2, horizon_ops)`, mixing every
    /// fault kind (crashes always restart, so the run can finish).
    pub fn generate(seed: u64, workers: usize, horizon_ops: u64, faults: usize) -> Self {
        assert!(workers > 0 && horizon_ops > 2);
        let mut rng = lcasgd_tensor::Rng::seed_from_u64(seed ^ 0xFA_017);
        let mut plan = FaultPlan::new();
        for _ in 0..faults {
            let worker = rng.below(workers);
            let at_op = 2 + (rng.next_u64() % (horizon_ops - 2));
            let kind = match rng.below(5) {
                0 => FaultKind::Crash { restart_after_ms: Some(1 + rng.below(20) as u32) },
                1 => FaultKind::Drop,
                2 => FaultKind::Duplicate,
                3 => FaultKind::Corrupt,
                _ => FaultKind::SlowLink { delay_ms: 1 + rng.below(10) as u32 },
            };
            plan.events.push(FaultEvent { worker, at_op, kind });
        }
        plan
    }

    /// Serializes to the plan text format (the inverse of [`Self::parse`]).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# lcasgd fault plan v1\n");
        for e in &self.events {
            let line = match e.kind {
                FaultKind::Crash { restart_after_ms: Some(ms) } => {
                    format!("crash worker={} at-op={} restart-ms={ms}\n", e.worker, e.at_op)
                }
                FaultKind::Crash { restart_after_ms: None } => {
                    format!("crash worker={} at-op={}\n", e.worker, e.at_op)
                }
                FaultKind::Drop => format!("drop worker={} at-op={}\n", e.worker, e.at_op),
                FaultKind::Duplicate => format!("dup worker={} at-op={}\n", e.worker, e.at_op),
                FaultKind::Corrupt => format!("corrupt worker={} at-op={}\n", e.worker, e.at_op),
                FaultKind::SlowLink { delay_ms } => {
                    format!("slow worker={} at-op={} delay-ms={delay_ms}\n", e.worker, e.at_op)
                }
                FaultKind::Partition { heal_ms } => {
                    format!("partition worker={} at-op={} heal-ms={heal_ms}\n", e.worker, e.at_op)
                }
                FaultKind::NanGrad => format!("nan worker={} at-op={}\n", e.worker, e.at_op),
                FaultKind::CorruptPayload => {
                    format!("corrupt-payload worker={} at-op={}\n", e.worker, e.at_op)
                }
                FaultKind::Straggle { delay_ms, ops } => format!(
                    "straggle worker={} at-op={} delay-ms={delay_ms} ops={ops}\n",
                    e.worker, e.at_op
                ),
            };
            out.push_str(&line);
        }
        if let Some(at) = self.server_restart_at_update {
            out.push_str(&format!("server-restart at-update={at}\n"));
        }
        if let Some(at) = self.primary_kill_at_update {
            out.push_str(&format!("primary-kill at-update={at}\n"));
        }
        out
    }

    /// Parses the line-oriented plan format written by [`Self::to_text`]:
    /// one event per line, `#` comments, `key=value` fields.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            let verb = toks.next().expect("non-empty line has a first token");
            let mut worker: Option<usize> = None;
            let mut at_op: Option<u64> = None;
            let mut at_update: Option<u64> = None;
            let mut ms: Option<u32> = None;
            let mut op_count: Option<u32> = None;
            for tok in toks {
                let (key, val) = tok.split_once('=').ok_or_else(|| {
                    format!("line {}: expected key=value, got `{tok}`", lineno + 1)
                })?;
                let bad = |e| format!("line {}: bad value for `{key}`: {e}", lineno + 1);
                match key {
                    "worker" => worker = Some(val.parse().map_err(bad)?),
                    "at-op" => at_op = Some(val.parse().map_err(bad)?),
                    "at-update" => at_update = Some(val.parse().map_err(bad)?),
                    "restart-ms" | "delay-ms" | "heal-ms" => ms = Some(val.parse().map_err(bad)?),
                    "ops" => op_count = Some(val.parse().map_err(bad)?),
                    other => {
                        return Err(format!("line {}: unknown field `{other}`", lineno + 1));
                    }
                }
            }
            if verb == "server-restart" {
                plan.server_restart_at_update = Some(at_update.ok_or_else(|| {
                    format!("line {}: server-restart needs at-update=N", lineno + 1)
                })?);
                continue;
            }
            if verb == "primary-kill" {
                plan.primary_kill_at_update = Some(at_update.ok_or_else(|| {
                    format!("line {}: primary-kill needs at-update=N", lineno + 1)
                })?);
                continue;
            }
            let worker =
                worker.ok_or_else(|| format!("line {}: `{verb}` needs worker=N", lineno + 1))?;
            let at_op =
                at_op.ok_or_else(|| format!("line {}: `{verb}` needs at-op=N", lineno + 1))?;
            let kind = match verb {
                "crash" => FaultKind::Crash { restart_after_ms: ms },
                "drop" => FaultKind::Drop,
                "dup" => FaultKind::Duplicate,
                "corrupt" => FaultKind::Corrupt,
                "slow" => FaultKind::SlowLink {
                    delay_ms: ms
                        .ok_or_else(|| format!("line {}: slow needs delay-ms=N", lineno + 1))?,
                },
                "partition" => FaultKind::Partition {
                    heal_ms: ms
                        .ok_or_else(|| format!("line {}: partition needs heal-ms=N", lineno + 1))?,
                },
                "nan" => FaultKind::NanGrad,
                "corrupt-payload" => FaultKind::CorruptPayload,
                "straggle" => FaultKind::Straggle {
                    delay_ms: ms
                        .ok_or_else(|| format!("line {}: straggle needs delay-ms=N", lineno + 1))?,
                    ops: op_count
                        .ok_or_else(|| format!("line {}: straggle needs ops=N", lineno + 1))?,
                },
                other => return Err(format!("line {}: unknown fault `{other}`", lineno + 1)),
            };
            plan.events.push(FaultEvent { worker, at_op, kind });
        }
        Ok(plan)
    }
}

/// Transport-specific effects a [`FaultyLink`] needs from the link it
/// wraps. Defaults fit an in-process channel transport; the TCP and
/// simulator links override what differs.
pub trait FaultHooks {
    /// The transport dies abruptly (no goodbye). Called once per injected
    /// crash, before the op returns `Disconnected`.
    fn fault_crash(&mut self, _restart_after_ms: Option<u32>) {}

    /// Stall the link for `delay_ms` (wall-clock by default; the
    /// simulator charges virtual time instead).
    fn fault_delay(&mut self, delay_ms: u32) {
        std::thread::sleep(std::time::Duration::from_millis(u64::from(delay_ms)));
    }

    /// Emit a deliberately corrupted message if the transport can express
    /// one (TCP writes a bad-CRC frame); by default the corruption is
    /// modeled as the checksum discard, i.e. nothing is sent.
    fn fault_corrupt_wire(&mut self) {}
}

/// What the pre-op fault check decided.
enum Verdict {
    Proceed,
    Crash,
    DropOneway,
    DupOneway,
    CorruptOneway,
    /// Mutate the payload in place (valid-CRC corruption) before sending;
    /// `nan` poisons floats to NaN, otherwise deterministic bit flips
    /// seeded by `seed`.
    Poison {
        nan: bool,
        seed: u64,
    },
}

/// A [`WorkerLink`] wrapper that interprets a worker's slice of a
/// [`FaultPlan`], identically on every backend. Backends install it when a
/// plan is attached and drive the crash/restart loop around `worker_fn`
/// via [`FaultyLink::crashed_restart_ms`] / [`FaultyLink::resume`].
pub struct FaultyLink<L> {
    inner: L,
    worker: usize,
    ops: u64,
    /// This worker's (at_op, kind) events, sorted; `cursor` marks the next
    /// not-yet-fired one.
    schedule: Vec<(u64, FaultKind)>,
    cursor: usize,
    /// Set when a crash fired: `Some(restart)` until handled.
    crashed: Option<Option<u32>>,
    /// Sustained-straggle state: every op with index below `.0` is delayed
    /// by `.1` milliseconds.
    straggle: Option<(u64, u32)>,
    log: FaultLog,
}

impl<L> FaultyLink<L> {
    /// Wraps `inner` with `plan`'s schedule for `worker`.
    pub fn new(inner: L, worker: usize, plan: &FaultPlan) -> Self {
        FaultyLink {
            inner,
            worker,
            ops: 0,
            schedule: plan.schedule_for(worker),
            cursor: 0,
            crashed: None,
            straggle: None,
            log: plan.log(),
        }
    }

    /// After `worker_fn` returns: `Some(delay_ms)` when a crash with
    /// restart fired (re-invoke after the delay), `None` when the worker
    /// finished normally or crashed permanently.
    pub fn crashed_restart_ms(&self) -> Option<u32> {
        self.crashed.flatten()
    }

    /// True when a crash (restarting or permanent) has fired and not been
    /// cleared by [`Self::resume`].
    pub fn is_crashed(&self) -> bool {
        self.crashed.is_some()
    }

    /// Clears the crash state and records the restart; call right before
    /// re-invoking `worker_fn`.
    pub fn resume(&mut self) {
        self.crashed = None;
        self.log.push(FaultRecord::WorkerRestarted { worker: self.worker, op: self.ops });
    }

    /// Consumes the wrapper, returning the native link.
    pub fn into_inner(self) -> L {
        self.inner
    }

    /// Total link operations issued so far (across incarnations).
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

impl<L: FaultHooks> FaultyLink<L> {
    /// Advances the op counter, applies any due delays, and decides the
    /// fate of this op. `oneway` selects drop/dup/corrupt semantics.
    fn pre_op(&mut self, oneway: bool) -> Verdict {
        let op = self.ops;
        self.ops += 1;
        let mut verdict = Verdict::Proceed;
        while self.cursor < self.schedule.len() && self.schedule[self.cursor].0 <= op {
            let (at_op, kind) = self.schedule[self.cursor];
            self.cursor += 1;
            // Late events (at_op already behind, e.g. scheduled during a
            // phase the worker skipped) still fire, on this op.
            let _ = at_op;
            self.log.push(FaultRecord::Injected { worker: self.worker, op, kind });
            match kind {
                FaultKind::Crash { restart_after_ms } => {
                    return self.crash(restart_after_ms);
                }
                FaultKind::SlowLink { delay_ms } => self.inner.fault_delay(delay_ms),
                FaultKind::Partition { heal_ms } => self.inner.fault_delay(heal_ms),
                FaultKind::Drop if oneway => verdict = Verdict::DropOneway,
                FaultKind::Corrupt if oneway => verdict = Verdict::CorruptOneway,
                FaultKind::Duplicate if oneway => verdict = Verdict::DupOneway,
                // A lost/garbled request can never complete: the worker
                // times out, reconnects and rejoins — i.e. an immediate
                // restart crash.
                FaultKind::Drop | FaultKind::Corrupt => {
                    return self.crash(Some(0));
                }
                FaultKind::Duplicate => {} // requests are never duplicated
                // Valid-CRC corruption mutates the payload and lets the
                // message through — on requests as well as oneways, since
                // the frame still decodes on the far side. The seed mixes
                // worker and op so each poisoned message is distinct but
                // replays identically.
                FaultKind::NanGrad => {
                    verdict = Verdict::Poison { nan: true, seed: self.poison_seed(op) };
                }
                FaultKind::CorruptPayload => {
                    verdict = Verdict::Poison { nan: false, seed: self.poison_seed(op) };
                }
                FaultKind::Straggle { delay_ms, ops } => {
                    self.straggle = Some((op + u64::from(ops), delay_ms));
                }
            }
        }
        if let Some((until, delay_ms)) = self.straggle {
            if op < until {
                self.inner.fault_delay(delay_ms);
            } else {
                self.straggle = None;
            }
        }
        verdict
    }

    /// Deterministic, never-zero corruption seed mixing worker and op.
    fn poison_seed(&self, op: u64) -> u64 {
        0x9E37_79B9_7F4A_7C15 ^ ((self.worker as u64) << 32) ^ op
    }

    fn crash(&mut self, restart_after_ms: Option<u32>) -> Verdict {
        self.crashed = Some(restart_after_ms);
        self.inner.fault_crash(restart_after_ms);
        Verdict::Crash
    }
}

impl<Req, Resp, L> WorkerLink<Req, Resp> for FaultyLink<L>
where
    Req: WireMsg,
    Resp: WireMsg,
    L: WorkerLink<Req, Resp> + FaultHooks,
{
    fn worker(&self) -> usize {
        self.worker
    }

    fn request(&mut self, req: Req) -> Result<Resp, ClusterError> {
        match self.pre_op(false) {
            Verdict::Crash => Err(ClusterError::Disconnected),
            Verdict::Poison { nan, seed } => {
                let mut req = req;
                req.corrupt_payload(seed, nan);
                self.inner.request(req)
            }
            _ => self.inner.request(req),
        }
    }

    fn send(&mut self, req: Req) -> Result<(), ClusterError> {
        match self.pre_op(true) {
            Verdict::Crash => Err(ClusterError::Disconnected),
            Verdict::DropOneway => Ok(()),
            Verdict::CorruptOneway => {
                self.inner.fault_corrupt_wire();
                Ok(())
            }
            Verdict::DupOneway => {
                // WireMsg lacks Clone; a codec round trip is the copy.
                let copy = Req::decoded(&req.encoded())?;
                self.inner.send(req)?;
                self.inner.send(copy)
            }
            Verdict::Poison { nan, seed } => {
                let mut req = req;
                req.corrupt_payload(seed, nan);
                self.inner.send(req)
            }
            Verdict::Proceed => self.inner.send(req),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory link recording what actually went out.
    #[derive(Default)]
    struct Probe {
        sent: Vec<u32>,
        requested: Vec<u32>,
        crashes: Vec<Option<u32>>,
        delays: Vec<u32>,
        corrupts: usize,
    }

    impl WorkerLink<u32, u32> for Probe {
        fn worker(&self) -> usize {
            0
        }
        fn request(&mut self, req: u32) -> Result<u32, ClusterError> {
            self.requested.push(req);
            Ok(req + 100)
        }
        fn send(&mut self, req: u32) -> Result<(), ClusterError> {
            self.sent.push(req);
            Ok(())
        }
    }

    impl FaultHooks for Probe {
        fn fault_crash(&mut self, restart: Option<u32>) {
            self.crashes.push(restart);
        }
        fn fault_delay(&mut self, delay_ms: u32) {
            self.delays.push(delay_ms);
        }
        fn fault_corrupt_wire(&mut self) {
            self.corrupts += 1;
        }
    }

    #[test]
    fn ops_count_and_faults_fire_in_order() {
        let plan = FaultPlan::new()
            .with_event(0, 1, FaultKind::Drop)
            .with_event(0, 3, FaultKind::Duplicate)
            .with_event(0, 5, FaultKind::Crash { restart_after_ms: Some(7) });
        let mut link = FaultyLink::new(Probe::default(), 0, &plan);
        assert_eq!(link.request(1).unwrap(), 101); // op 0
        link.send(2).unwrap(); // op 1: dropped
        link.send(3).unwrap(); // op 2
        link.send(4).unwrap(); // op 3: duplicated
        assert_eq!(link.request(5).unwrap(), 105); // op 4
        assert!(matches!(link.send(6), Err(ClusterError::Disconnected))); // op 5: crash
        assert_eq!(link.crashed_restart_ms(), Some(7));
        link.resume();
        link.send(7).unwrap(); // op 6, post-restart
        let probe = link.into_inner();
        assert_eq!(probe.sent, vec![3, 4, 4, 7]);
        assert_eq!(probe.requested, vec![1, 5]);
        assert_eq!(probe.crashes, vec![Some(7)]);
        assert_eq!(
            plan.records().len(),
            4, // 3 injections + 1 restart
        );
    }

    #[test]
    fn drop_on_request_escalates_to_restart_crash() {
        let plan = FaultPlan::new().with_event(0, 0, FaultKind::Drop);
        let mut link = FaultyLink::new(Probe::default(), 0, &plan);
        assert!(link.request(9).is_err());
        assert_eq!(link.crashed_restart_ms(), Some(0));
        assert!(link.into_inner().requested.is_empty());
    }

    #[test]
    fn corrupt_oneway_uses_the_wire_hook() {
        let plan = FaultPlan::new().with_event(0, 0, FaultKind::Corrupt);
        let mut link = FaultyLink::new(Probe::default(), 0, &plan);
        link.send(1).unwrap();
        let probe = link.into_inner();
        assert_eq!(probe.corrupts, 1);
        assert!(probe.sent.is_empty());
    }

    #[test]
    fn delays_route_through_the_hook() {
        let plan = FaultPlan::new()
            .with_event(0, 0, FaultKind::SlowLink { delay_ms: 3 })
            .with_event(0, 1, FaultKind::Partition { heal_ms: 11 });
        let mut link = FaultyLink::new(Probe::default(), 0, &plan);
        link.send(1).unwrap();
        link.send(2).unwrap();
        assert_eq!(link.into_inner().delays, vec![3, 11]);
    }

    #[test]
    fn permanent_crash_has_no_restart() {
        let plan = FaultPlan::new().with_event(0, 0, FaultKind::Crash { restart_after_ms: None });
        let mut link = FaultyLink::new(Probe::default(), 0, &plan);
        assert!(link.request(1).is_err());
        assert!(link.is_crashed());
        assert_eq!(link.crashed_restart_ms(), None);
    }

    /// A message with a corruptible payload, for exercising the
    /// valid-CRC poison path.
    #[derive(Debug, PartialEq)]
    struct Blob {
        vals: Vec<f32>,
    }

    impl WireMsg for Blob {
        fn encode(&self, buf: &mut Vec<u8>) {
            crate::backend::wire::put_vec_f32(buf, &self.vals);
        }
        fn decode(r: &mut crate::backend::WireReader<'_>) -> Result<Self, ClusterError> {
            Ok(Blob { vals: r.vec_f32()? })
        }
        fn corrupt_payload(&mut self, seed: u64, nan: bool) -> bool {
            for (i, v) in self.vals.iter_mut().enumerate() {
                if nan {
                    *v = f32::NAN;
                } else {
                    *v = f32::from_bits(v.to_bits() ^ (seed as u32).rotate_left(i as u32));
                }
            }
            true
        }
    }

    #[derive(Default)]
    struct BlobProbe {
        sent: Vec<Blob>,
        delays: Vec<u32>,
    }

    impl WorkerLink<Blob, u32> for BlobProbe {
        fn worker(&self) -> usize {
            0
        }
        fn request(&mut self, _req: Blob) -> Result<u32, ClusterError> {
            Ok(0)
        }
        fn send(&mut self, req: Blob) -> Result<(), ClusterError> {
            self.sent.push(req);
            Ok(())
        }
    }

    impl FaultHooks for BlobProbe {
        fn fault_delay(&mut self, delay_ms: u32) {
            self.delays.push(delay_ms);
        }
    }

    #[test]
    fn nan_poison_passes_through_with_nan_payload() {
        let plan = FaultPlan::new().with_event(0, 1, FaultKind::NanGrad);
        let mut link = FaultyLink::new(BlobProbe::default(), 0, &plan);
        link.send(Blob { vals: vec![1.0, 2.0] }).unwrap(); // op 0: clean
        link.send(Blob { vals: vec![3.0, 4.0] }).unwrap(); // op 1: poisoned
        link.send(Blob { vals: vec![5.0] }).unwrap(); // op 2: clean again
        let probe = link.into_inner();
        assert_eq!(probe.sent.len(), 3, "poisoned messages are delivered, not dropped");
        assert_eq!(probe.sent[0].vals, vec![1.0, 2.0]);
        assert!(probe.sent[1].vals.iter().all(|v| v.is_nan()));
        assert_eq!(probe.sent[2].vals, vec![5.0]);
    }

    #[test]
    fn payload_corruption_is_deterministic_and_non_nan() {
        let plan = FaultPlan::new().with_event(0, 0, FaultKind::CorruptPayload);
        let run = || {
            let mut link = FaultyLink::new(BlobProbe::default(), 0, &plan);
            link.send(Blob { vals: vec![1.0, -2.0, 3.5] }).unwrap();
            link.into_inner().sent
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same plan, same corruption");
        assert_ne!(a[0].vals, vec![1.0, -2.0, 3.5], "values were mutated");
    }

    #[test]
    fn straggle_delays_a_window_of_ops() {
        let plan = FaultPlan::new().with_event(0, 1, FaultKind::Straggle { delay_ms: 9, ops: 3 });
        let mut link = FaultyLink::new(BlobProbe::default(), 0, &plan);
        for _ in 0..6 {
            link.send(Blob { vals: vec![0.0] }).unwrap();
        }
        // Ops 1, 2, 3 are delayed; ops 0, 4, 5 are not.
        assert_eq!(link.into_inner().delays, vec![9, 9, 9]);
    }

    #[test]
    fn text_format_round_trips() {
        let plan = FaultPlan::new()
            .with_event(1, 7, FaultKind::Crash { restart_after_ms: Some(50) })
            .with_event(2, 9, FaultKind::Crash { restart_after_ms: None })
            .with_event(0, 12, FaultKind::Drop)
            .with_event(2, 9, FaultKind::Duplicate)
            .with_event(3, 15, FaultKind::Corrupt)
            .with_event(1, 20, FaultKind::SlowLink { delay_ms: 30 })
            .with_event(2, 25, FaultKind::Partition { heal_ms: 80 })
            .with_event(0, 30, FaultKind::NanGrad)
            .with_event(1, 33, FaultKind::CorruptPayload)
            .with_event(3, 35, FaultKind::Straggle { delay_ms: 12, ops: 6 })
            .with_server_restart(40)
            .with_primary_kill(23);
        let text = plan.to_text();
        let back = FaultPlan::parse(&text).unwrap();
        assert_eq!(back.events, plan.events);
        assert_eq!(back.server_restart_at_update, Some(40));
        assert_eq!(back.primary_kill_at_update, Some(23));
    }

    #[test]
    fn parse_accepts_comments_and_rejects_junk() {
        let plan = FaultPlan::parse("# hi\n\ncrash worker=0 at-op=3 # trailing\n").unwrap();
        assert_eq!(plan.events.len(), 1);
        assert!(FaultPlan::parse("explode worker=0 at-op=1").is_err());
        assert!(FaultPlan::parse("crash worker=0").is_err());
        assert!(FaultPlan::parse("slow worker=0 at-op=1").is_err());
        assert!(FaultPlan::parse("straggle worker=0 at-op=1 delay-ms=3").is_err());
        assert!(FaultPlan::parse("straggle worker=0 at-op=1 ops=3").is_err());
        assert!(FaultPlan::parse("crash worker=x at-op=1").is_err());
        assert!(FaultPlan::parse("server-restart").is_err());
        assert!(FaultPlan::parse("primary-kill").is_err());
        assert_eq!(
            FaultPlan::parse("primary-kill at-update=9").unwrap().primary_kill_at_update,
            Some(9)
        );
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let a = FaultPlan::generate(11, 4, 50, 8);
        let b = FaultPlan::generate(11, 4, 50, 8);
        assert_eq!(a.events, b.events);
        assert_eq!(a.events.len(), 8);
        for e in &a.events {
            assert!(e.worker < 4 && e.at_op >= 2 && e.at_op < 50);
            if let FaultKind::Crash { restart_after_ms } = e.kind {
                assert!(restart_after_ms.is_some(), "generated crashes must restart");
            }
        }
        let c = FaultPlan::generate(12, 4, 50, 8);
        assert_ne!(a.events, c.events, "different seed, different plan");
    }

    #[test]
    fn schedule_for_filters_and_sorts() {
        let plan = FaultPlan::new()
            .with_event(1, 9, FaultKind::Drop)
            .with_event(0, 4, FaultKind::Drop)
            .with_event(1, 2, FaultKind::Duplicate);
        assert_eq!(plan.schedule_for(1), vec![(2, FaultKind::Duplicate), (9, FaultKind::Drop)]);
        assert_eq!(plan.schedule_for(0), vec![(4, FaultKind::Drop)]);
        assert!(plan.schedule_for(2).is_empty());
        assert_eq!(plan.max_worker(), Some(1));
    }
}
