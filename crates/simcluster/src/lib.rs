//! # lcasgd-simcluster
//!
//! The distributed-training substrate: what the paper ran on a V100
//! cluster, reproduced as (a) a deterministic discrete-event simulator and
//! (b) a real-thread parameter-server scaffold.
//!
//! The phenomenon LC-ASGD addresses is *gradient staleness*: while worker
//! `m` computes on weights `w_t`, `k_m` other workers commit updates, so
//! `m`'s gradient lands on `w_{t+k_m}`. Staleness is entirely determined
//! by the ordering and timing of worker↔server messages — which is exactly
//! what this crate models:
//!
//! * [`event`] — a deterministic virtual-time event queue;
//! * [`models`] — per-worker compute-speed models (heterogeneity, lognormal
//!   jitter, straggler episodes) and per-link latency models;
//! * [`sim`] — [`sim::ClusterSim`]: schedules worker phases and serializes
//!   server processing, yielding message arrivals in virtual-time order;
//! * [`thread_cluster`] — the same worker/server protocol over real OS
//!   threads and crossbeam channels, for validating that simulated
//!   staleness distributions match organic ones.

pub mod backend;
pub mod codec;
pub mod event;
pub mod faults;
pub mod models;
pub mod sim;
pub mod sim_backend;
pub mod thread_cluster;

pub use backend::{
    channel_duplex_pair, ChannelDuplex, ClockDomain, ClusterBackend, ClusterError,
    LatencyHistogram, ReplicaDuplex, ReplicaDuplexPair, ServerCtx, TraceHook, TransportStats,
    WireMsg, WireReader, WorkerLink,
};
pub use codec::{PackedF32, WireCodec};
pub use event::EventQueue;
pub use faults::{FaultEvent, FaultHooks, FaultKind, FaultLog, FaultPlan, FaultRecord, FaultyLink};
pub use models::{ClusterSpec, LinkModel, WorkerModel};
pub use sim::{Arrival, ClusterSim};
pub use sim_backend::SimPayload;
pub use thread_cluster::{ThreadCluster, WorkerHandle};
