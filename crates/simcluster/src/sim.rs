//! `ClusterSim`: the discrete-event engine tying worker compute phases,
//! link latencies and serialized server processing together.
//!
//! The simulator is generic over the message payload `T` so the algorithm
//! layer (lcasgd-core) owns all semantic state; this crate owns *time*.
//!
//! Protocol model: a worker finishes a local compute phase of some nominal
//! cost, then its message travels uplink to the server. The server
//! processes arrivals strictly in arrival order, one at a time (it may
//! charge processing time, e.g. LC-ASGD's predictor updates); a reply then
//! travels downlink and the worker starts its next phase. All of pull /
//! state-push / gradient-push map onto this one primitive.

use crate::event::{EventQueue, SimTime};
use crate::faults::FaultPlan;
use crate::models::ClusterSpec;
use lcasgd_tensor::Rng;

/// A message arrival at the server.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival<T> {
    /// Virtual time at which the server *starts processing* the message
    /// (≥ wire arrival when the server is busy).
    pub time: SimTime,
    /// Sender.
    pub worker: usize,
    /// Uplink latency experienced by this message.
    pub uplink: SimTime,
    /// Duration of the compute phase that preceded the send.
    pub compute: SimTime,
    /// Algorithm-defined payload.
    pub payload: T,
}

struct Pending<T> {
    worker: usize,
    uplink: SimTime,
    compute: SimTime,
    payload: T,
}

/// Discrete-event cluster simulator.
pub struct ClusterSim<T> {
    spec: ClusterSpec,
    queue: EventQueue<Pending<T>>,
    /// Virtual time the server becomes free.
    server_free: SimTime,
    now: SimTime,
    /// One RNG stream per worker (adding workers never perturbs others),
    /// plus one for the server.
    worker_rngs: Vec<Rng>,
    /// Cumulative busy time charged to the server (overhead accounting).
    server_busy_total: SimTime,
    /// Nominal compute-phase cost used when this simulator is driven
    /// through the [`crate::backend::ClusterBackend`] adapter (direct
    /// `submit` callers pass their own nominal cost instead).
    nominal_cost: SimTime,
    /// Fault schedule interpreted by the backend adapter (direct `submit`
    /// callers are unaffected); restarts and link stalls are charged in
    /// virtual time, keeping faulty runs bit-reproducible.
    fault_plan: Option<FaultPlan>,
    /// Span observer used by the backend adapter. Purely an observer: the
    /// hook never influences scheduling, so traced and untraced runs are
    /// bit-identical.
    trace_hook: Option<std::sync::Arc<dyn crate::backend::TraceHook>>,
}

impl<T> ClusterSim<T> {
    /// Builds a simulator for the given cluster.
    pub fn new(spec: ClusterSpec) -> Self {
        let mut root = Rng::seed_from_u64(spec.seed ^ 0xD15C_7E7E);
        let worker_rngs = (0..spec.num_workers()).map(|i| root.fork(i as u64)).collect();
        ClusterSim {
            spec,
            queue: EventQueue::new(),
            server_free: 0.0,
            now: 0.0,
            worker_rngs,
            server_busy_total: 0.0,
            // CIFAR-like per-iteration scale; overridable for backend runs.
            nominal_cost: 0.032,
            fault_plan: None,
            trace_hook: None,
        }
    }

    /// Installs the span observer used by the backend adapter.
    pub fn set_trace_hook(&mut self, hook: std::sync::Arc<dyn crate::backend::TraceHook>) {
        self.trace_hook = Some(hook);
    }

    /// The installed span observer, if any.
    pub fn trace_hook(&self) -> Option<std::sync::Arc<dyn crate::backend::TraceHook>> {
        self.trace_hook.clone()
    }

    /// Attaches a fault schedule for backend-driven runs (see
    /// [`crate::faults::FaultPlan`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The attached fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Sets the nominal compute cost per worker phase for backend-driven
    /// runs (see [`crate::backend::ClusterBackend`]).
    pub fn with_nominal_cost(mut self, nominal: SimTime) -> Self {
        assert!(nominal >= 0.0);
        self.nominal_cost = nominal;
        self
    }

    /// Nominal compute-phase cost for backend-driven runs.
    pub fn nominal_cost(&self) -> SimTime {
        self.nominal_cost
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.spec.num_workers()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total server busy time charged so far.
    pub fn server_busy_total(&self) -> SimTime {
        self.server_busy_total
    }

    /// Worker `w` starts a compute phase of nominal cost `nominal` at
    /// virtual time `start`, then sends `payload` to the server. Returns
    /// the sampled compute duration.
    pub fn submit(&mut self, worker: usize, start: SimTime, nominal: f64, payload: T) -> SimTime {
        let rng = &mut self.worker_rngs[worker];
        let compute = self.spec.workers[worker].sample_time(nominal, rng);
        let uplink = self.spec.link.sample_latency(rng);
        let arrive = start + compute + uplink;
        self.queue.push(arrive, Pending { worker, uplink, compute, payload });
        compute
    }

    /// Samples a downlink latency for a reply to `worker` (the caller adds
    /// it to the reply's processing-finish time to get the worker-side
    /// receive time).
    pub fn downlink(&mut self, worker: usize) -> SimTime {
        let rng = &mut self.worker_rngs[worker];
        self.spec.link.sample_latency(rng)
    }

    /// Charges `dur` seconds of processing to the server (advances both
    /// the server-free horizon and current time).
    pub fn charge_server(&mut self, dur: SimTime) {
        assert!(dur >= 0.0);
        self.server_free = self.now.max(self.server_free) + dur;
        self.now = self.server_free;
        self.server_busy_total += dur;
    }

    /// Pops the next message in server-processing order. Advances `now`
    /// to the moment the server picks the message up.
    pub fn next_arrival(&mut self) -> Option<Arrival<T>> {
        let (wire_time, p) = self.queue.pop()?;
        // The server is serial: processing starts when both the message
        // has arrived and the server is free.
        let start = wire_time.max(self.server_free);
        self.now = start;
        self.server_free = start;
        Some(Arrival {
            time: start,
            worker: p.worker,
            uplink: p.uplink,
            compute: p.compute,
            payload: p.payload,
        })
    }

    /// Number of in-flight messages.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{ClusterSpec, WorkerModel};

    #[test]
    fn uniform_cluster_processes_in_submission_order() {
        let mut sim: ClusterSim<u32> = ClusterSim::new(ClusterSpec::uniform(3));
        for w in 0..3 {
            sim.submit(w, 0.0, 1.0, w as u32);
        }
        // Identical times → FIFO: worker 0, 1, 2.
        for expect in 0..3u32 {
            let a = sim.next_arrival().unwrap();
            assert_eq!(a.payload, expect);
            assert_eq!(a.compute, 1.0);
        }
    }

    #[test]
    fn slower_worker_arrives_later() {
        let mut spec = ClusterSpec::uniform(2);
        spec.workers[0] = WorkerModel { speed: 3.0, ..Default::default() };
        let mut sim: ClusterSim<&str> = ClusterSim::new(spec);
        sim.submit(0, 0.0, 1.0, "slow");
        sim.submit(1, 0.0, 1.0, "fast");
        assert_eq!(sim.next_arrival().unwrap().payload, "fast");
        assert_eq!(sim.next_arrival().unwrap().payload, "slow");
    }

    #[test]
    fn server_serialization_delays_processing() {
        let mut sim: ClusterSim<u32> = ClusterSim::new(ClusterSpec::uniform(2));
        sim.submit(0, 0.0, 1.0, 0);
        sim.submit(1, 0.0, 1.0, 1);
        let a0 = sim.next_arrival().unwrap();
        // Server takes 5 time units processing the first message.
        sim.charge_server(5.0);
        let a1 = sim.next_arrival().unwrap();
        assert!(a1.time >= a0.time + 5.0, "second message must wait for the busy server");
    }

    #[test]
    fn time_is_monotonic() {
        let mut sim: ClusterSim<usize> = ClusterSim::new(ClusterSpec::heterogeneous(4, 9));
        for w in 0..4 {
            sim.submit(w, 0.0, 1.0, w);
        }
        let mut last = 0.0;
        for _ in 0..20 {
            let Some(a) = sim.next_arrival() else { break };
            assert!(a.time >= last);
            last = a.time;
            // Round-trip: schedule the worker's next phase.
            let down = sim.downlink(a.worker);
            sim.submit(a.worker, a.time + down, 1.0, a.worker);
        }
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim: ClusterSim<usize> = ClusterSim::new(ClusterSpec::heterogeneous(4, 42));
            for w in 0..4 {
                sim.submit(w, 0.0, 1.0, w);
            }
            let mut trace = Vec::new();
            for _ in 0..50 {
                let a = sim.next_arrival().unwrap();
                trace.push((a.worker, (a.time * 1e9) as u64));
                let down = sim.downlink(a.worker);
                sim.submit(a.worker, a.time + down, 1.0, a.worker);
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn heterogeneous_staleness_emerges() {
        // With jitter, arrival order deviates from strict round-robin —
        // the raw material of the staleness the paper studies.
        let mut sim: ClusterSim<usize> = ClusterSim::new(ClusterSpec::heterogeneous(8, 5));
        for w in 0..8 {
            sim.submit(w, 0.0, 1.0, w);
        }
        let mut order = Vec::new();
        for _ in 0..200 {
            let a = sim.next_arrival().unwrap();
            order.push(a.worker);
            let down = sim.downlink(a.worker);
            sim.submit(a.worker, a.time + down, 1.0, a.worker);
        }
        // Count inversions vs. strict round robin of the first arrival order.
        let mut deviations = 0;
        for w in order.windows(16) {
            let first: Vec<usize> = w[..8].to_vec();
            let second: Vec<usize> = w[8..].to_vec();
            if first != second {
                deviations += 1;
            }
        }
        assert!(deviations > 0, "expected order variance under jitter");
    }

    #[test]
    fn server_busy_total_accumulates() {
        let mut sim: ClusterSim<()> = ClusterSim::new(ClusterSpec::uniform(1));
        sim.charge_server(1.5);
        sim.charge_server(0.5);
        assert!((sim.server_busy_total() - 2.0).abs() < 1e-12);
    }
}
