//! Finite-difference gradient checking.
//!
//! Every differentiable op in this crate is validated by comparing its
//! analytic vector-Jacobian product against central finite differences of a
//! scalar-valued function. The checker perturbs one input element at a
//! time, so keep the tensors small in tests.

use lcasgd_tensor::Tensor;

/// Central-difference numeric gradient of `f` at `x`.
///
/// `f` must be a pure function of its input (rebuild the graph inside).
pub fn numeric_grad(mut f: impl FnMut(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
    let mut grad = Tensor::zeros_like(x);
    let mut probe = x.clone();
    for i in 0..x.numel() {
        let orig = probe.data()[i];
        probe.data_mut()[i] = orig + eps;
        let plus = f(&probe);
        probe.data_mut()[i] = orig - eps;
        let minus = f(&probe);
        probe.data_mut()[i] = orig;
        grad.data_mut()[i] = (plus - minus) / (2.0 * eps);
    }
    grad
}

/// Asserts the analytic gradient matches central differences within `tol`
/// (relative, with an absolute floor). Panics with the offending index.
pub fn assert_grad_matches(
    f: impl FnMut(&Tensor) -> f32,
    x: &Tensor,
    analytic: &Tensor,
    eps: f32,
    tol: f32,
) {
    let numeric = numeric_grad(f, x, eps);
    assert_eq!(numeric.shape(), analytic.shape(), "gradient shape mismatch");
    for (i, (&n, &a)) in numeric.data().iter().zip(analytic.data()).enumerate() {
        let denom = n.abs().max(a.abs()).max(1.0);
        assert!(
            (n - a).abs() / denom <= tol,
            "gradcheck failed at flat index {i}: numeric {n} vs analytic {a}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;
    use lcasgd_tensor::ops::conv::Conv2dSpec;
    use lcasgd_tensor::Rng;

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    /// Checks d(loss)/d(x) for a scalar-producing builder.
    fn check(build: impl Fn(&mut Graph, crate::Var) -> crate::Var, x0: &Tensor) {
        let mut g = Graph::new();
        let x = g.leaf(x0.clone());
        let out = build(&mut g, x);
        g.backward(out);
        let analytic = g.grad(x).expect("no gradient reached input").clone();
        assert_grad_matches(
            |probe| {
                let mut g = Graph::new();
                let x = g.leaf(probe.clone());
                let out = build(&mut g, x);
                g.value(out).item()
            },
            x0,
            &analytic,
            EPS,
            TOL,
        );
    }

    fn randn(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng::seed_from_u64(seed);
        Tensor::randn(dims, 1.0, &mut rng)
    }

    #[test]
    fn gc_elementwise_chain() {
        check(
            |g, x| {
                let y = g.tanh(x);
                let z = g.mul(y, x);
                let w = g.sigmoid(z);
                g.mean(w)
            },
            &randn(&[3, 4], 61),
        );
    }

    #[test]
    fn gc_relu() {
        // Keep activations away from the kink.
        let mut x = randn(&[10], 62);
        for v in x.data_mut() {
            if v.abs() < 0.2 {
                *v += 0.5;
            }
        }
        check(
            |g, x| {
                let y = g.relu(x);
                g.sum(y)
            },
            &x,
        );
    }

    #[test]
    fn gc_matmul() {
        let w = randn(&[4, 3], 63);
        check(
            move |g, x| {
                let wv = g.leaf(w.clone());
                let y = g.matmul(x, wv);
                let y2 = g.mul(y, y);
                g.sum(y2)
            },
            &randn(&[2, 4], 64),
        );
    }

    #[test]
    fn gc_linear_weight() {
        // Check the gradient w.r.t. the weight this time.
        let x0 = randn(&[3, 4], 65);
        let b0 = randn(&[2], 66);
        let w0 = randn(&[2, 4], 67);
        let build = |g: &mut Graph, w: crate::Var| {
            let x = g.leaf(x0.clone());
            let b = g.leaf(b0.clone());
            let y = g.linear(x, w, b);
            let y2 = g.mul(y, y);
            g.mean(y2)
        };
        let mut g = Graph::new();
        let w = g.leaf(w0.clone());
        let out = build(&mut g, w);
        g.backward(out);
        let analytic = g.grad(w).unwrap().clone();
        assert_grad_matches(
            |probe| {
                let mut g = Graph::new();
                let w = g.leaf(probe.clone());
                let out = build(&mut g, w);
                g.value(out).item()
            },
            &w0,
            &analytic,
            EPS,
            TOL,
        );
    }

    #[test]
    fn gc_conv2d_input() {
        let spec = Conv2dSpec { in_channels: 2, out_channels: 2, kernel: 3, stride: 1, padding: 1 };
        let w = randn(&[2, 2, 3, 3], 68);
        check(
            move |g, x| {
                let wv = g.leaf(w.clone());
                let y = g.conv2d(x, wv, spec);
                let y2 = g.mul(y, y);
                g.mean(y2)
            },
            &randn(&[1, 2, 4, 4], 69),
        );
    }

    #[test]
    fn gc_conv2d_weight_strided() {
        let spec = Conv2dSpec { in_channels: 1, out_channels: 2, kernel: 3, stride: 2, padding: 1 };
        let x0 = randn(&[2, 1, 5, 5], 70);
        let w0 = randn(&[2, 1, 3, 3], 71);
        let build = |g: &mut Graph, w: crate::Var| {
            let x = g.leaf(x0.clone());
            let y = g.conv2d(x, w, spec);
            let y2 = g.mul(y, y);
            g.mean(y2)
        };
        let mut g = Graph::new();
        let w = g.leaf(w0.clone());
        let out = build(&mut g, w);
        g.backward(out);
        let analytic = g.grad(w).unwrap().clone();
        assert_grad_matches(
            |probe| {
                let mut g = Graph::new();
                let w = g.leaf(probe.clone());
                let out = build(&mut g, w);
                g.value(out).item()
            },
            &w0,
            &analytic,
            EPS,
            TOL,
        );
    }

    #[test]
    fn gc_conv2d_input_strided_nonsquare() {
        // Config the fused path specializes: stride 2, padding 1, a
        // non-square input, and cout = 3 (not a multiple of the MR=4 tile
        // height, so the GEMM runs a partial row tile).
        let spec = Conv2dSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 2, padding: 1 };
        let w = randn(&[3, 2, 3, 3], 83);
        check(
            move |g, x| {
                let wv = g.leaf(w.clone());
                let y = g.conv2d(x, wv, spec);
                let y2 = g.mul(y, y);
                g.mean(y2)
            },
            &randn(&[1, 2, 5, 4], 84),
        );
    }

    #[test]
    fn gc_conv2d_1x1_input() {
        // 1x1 kernels degenerate to a per-pixel matmul; the packers must
        // still index correctly.
        let spec = Conv2dSpec { in_channels: 3, out_channels: 2, kernel: 1, stride: 1, padding: 0 };
        let w = randn(&[2, 3, 1, 1], 85);
        check(
            move |g, x| {
                let wv = g.leaf(w.clone());
                let y = g.conv2d(x, wv, spec);
                let y2 = g.mul(y, y);
                g.mean(y2)
            },
            &randn(&[2, 3, 3, 4], 86),
        );
    }

    #[test]
    fn gc_conv2d_weight_nonsquare_offtile_cout() {
        // Weight gradient with cout = 5 (partial MR tile) on a non-square
        // input — exercises conv2d_dw's pixel-major panel packer tails.
        let spec = Conv2dSpec { in_channels: 2, out_channels: 5, kernel: 3, stride: 1, padding: 1 };
        let x0 = randn(&[1, 2, 4, 6], 87);
        let w0 = randn(&[5, 2, 3, 3], 88);
        let build = |g: &mut Graph, w: crate::Var| {
            let x = g.leaf(x0.clone());
            let y = g.conv2d(x, w, spec);
            let y2 = g.mul(y, y);
            g.mean(y2)
        };
        let mut g = Graph::new();
        let w = g.leaf(w0.clone());
        let out = build(&mut g, w);
        g.backward(out);
        let analytic = g.grad(w).unwrap().clone();
        assert_grad_matches(
            |probe| {
                let mut g = Graph::new();
                let w = g.leaf(probe.clone());
                let out = build(&mut g, w);
                g.value(out).item()
            },
            &w0,
            &analytic,
            EPS,
            TOL,
        );
    }

    #[test]
    fn fused_update_matches_directional_derivative() {
        // The optimizer's fused axpy apply (`w += -lr·g`) must reduce the
        // loss by lr·‖g‖² to first order — ties the update kernel to the
        // same finite-difference oracle the per-op checks use.
        let x0 = randn(&[4, 3], 89);
        let w0 = randn(&[2, 3], 90);
        let b0 = randn(&[2], 91);
        let loss = |wt: &Tensor| {
            let mut g = Graph::new();
            let x = g.leaf(x0.clone());
            let w = g.leaf(wt.clone());
            let b = g.leaf(b0.clone());
            let y = g.linear(x, w, b);
            let y2 = g.mul(y, y);
            let out = g.mean(y2);
            g.value(out).item()
        };
        let mut g = Graph::new();
        let x = g.leaf(x0.clone());
        let w = g.leaf(w0.clone());
        let b = g.leaf(b0.clone());
        let y = g.linear(x, w, b);
        let y2 = g.mul(y, y);
        let out = g.mean(y2);
        g.backward(out);
        let grad = g.grad(w).unwrap().clone();

        let lr = 1e-3f32;
        let mut w1 = w0.clone();
        w1.add_assign_scaled(&grad, -lr);
        let drop = loss(&w0) - loss(&w1);
        let expect = lr * grad.dot(&grad);
        assert!(
            (drop - expect).abs() <= 0.05 * expect.abs().max(1e-6),
            "fused update: observed loss drop {drop} vs first-order prediction {expect}"
        );
    }

    #[test]
    fn gc_batch_norm1d() {
        check(
            |g, x| {
                let gamma = g.leaf(Tensor::from_vec(vec![1.5, 0.5, 2.0], &[3]));
                let beta = g.leaf(Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3]));
                let (y, _) = g.batch_norm1d(x, gamma, beta, 1e-3);
                let y2 = g.mul(y, y);
                let y3 = g.tanh(y2);
                g.mean(y3)
            },
            &randn(&[6, 3], 72),
        );
    }

    #[test]
    fn gc_batch_norm2d() {
        check(
            |g, x| {
                let gamma = g.leaf(Tensor::from_vec(vec![1.2, 0.8], &[2]));
                let beta = g.leaf(Tensor::from_vec(vec![0.0, 0.5], &[2]));
                let (y, _) = g.batch_norm2d(x, gamma, beta, 1e-3);
                let y2 = g.mul(y, y);
                g.mean(y2)
            },
            &randn(&[3, 2, 3, 3], 73),
        );
    }

    #[test]
    fn gc_bn_gamma() {
        let x0 = randn(&[5, 2], 74);
        let g0 = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let build = |g: &mut Graph, gamma: crate::Var| {
            let x = g.leaf(x0.clone());
            let beta = g.leaf(Tensor::zeros(&[2]));
            let (y, _) = g.batch_norm1d(x, gamma, beta, 1e-3);
            let y2 = g.mul(y, y);
            g.mean(y2)
        };
        let mut g = Graph::new();
        let gamma = g.leaf(g0.clone());
        let out = build(&mut g, gamma);
        g.backward(out);
        let analytic = g.grad(gamma).unwrap().clone();
        assert_grad_matches(
            |probe| {
                let mut g = Graph::new();
                let gamma = g.leaf(probe.clone());
                let out = build(&mut g, gamma);
                g.value(out).item()
            },
            &g0,
            &analytic,
            EPS,
            TOL,
        );
    }

    #[test]
    fn gc_softmax_cross_entropy() {
        check(|g, x| g.softmax_cross_entropy(x, &[1, 0, 3]), &randn(&[3, 4], 75));
    }

    #[test]
    fn gc_mse() {
        let target = randn(&[2, 3], 76);
        check(move |g, x| g.mse(x, target.clone()), &randn(&[2, 3], 77));
    }

    #[test]
    fn gc_global_avg_pool() {
        check(
            |g, x| {
                let y = g.global_avg_pool(x);
                let y2 = g.mul(y, y);
                g.sum(y2)
            },
            &randn(&[2, 3, 2, 2], 78),
        );
    }

    #[test]
    fn gc_max_pool() {
        // Max pooling is piecewise linear; keep entries well separated so
        // the finite difference doesn't cross an argmax switch.
        let mut x = randn(&[1, 1, 4, 4], 79);
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v += i as f32 * 0.5;
        }
        check(
            |g, x| {
                let y = g.max_pool2d(x, 2, 2);
                let y2 = g.mul(y, y);
                g.sum(y2)
            },
            &x,
        );
    }

    #[test]
    fn gc_concat_slice() {
        let other = randn(&[2, 2], 80);
        check(
            move |g, x| {
                let o = g.leaf(other.clone());
                let c = g.concat_cols(x, o);
                let s = g.slice_cols(c, 1, 3);
                let s2 = g.tanh(s);
                g.mean(s2)
            },
            &randn(&[2, 3], 81),
        );
    }

    #[test]
    fn gc_inference_bn() {
        let mean = Tensor::from_vec(vec![0.3, -0.2], &[2]);
        let var = Tensor::from_vec(vec![1.2, 0.6], &[2]);
        check(
            move |g, x| {
                let gamma = g.leaf(Tensor::from_vec(vec![1.1, 0.9], &[2]));
                let beta = g.leaf(Tensor::from_vec(vec![0.2, -0.1], &[2]));
                let y = g.batch_norm_inference(x, gamma, beta, &mean, &var, 1e-3);
                let y2 = g.mul(y, y);
                g.mean(y2)
            },
            &randn(&[4, 2], 82),
        );
    }
}
