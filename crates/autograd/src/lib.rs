//! # lcasgd-autograd
//!
//! Tape-based reverse-mode automatic differentiation over
//! [`lcasgd_tensor::Tensor`].
//!
//! A [`Graph`] is built fresh for each forward pass: every op records its
//! output value plus a boxed backward implementation on the tape. Calling
//! [`Graph::backward`] seeds the output gradient and walks the tape in
//! reverse, accumulating gradients into per-node slots. The seed is
//! exposed ([`Graph::backward_with_seed`]) because LC-ASGD's *Literal*
//! compensation mode backpropagates `ℓ_m + λ·ℓ_delay` by rescaling the
//! seed rather than using 1.0.
//!
//! Every op's vector-Jacobian product is verified against central finite
//! differences by the [`gradcheck`] test-suite.
//!
//! ```
//! use lcasgd_autograd::Graph;
//! use lcasgd_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]));
//! let y = g.relu(x);
//! let s = g.sum(y);
//! g.backward(s);
//! assert_eq!(g.grad(x).unwrap().data(), &[1.0, 0.0, 1.0]);
//! ```

pub mod gradcheck;
pub mod graph;
pub mod ops;

pub use graph::{Graph, Var};
