//! The tape: nodes, backward dispatch, gradient accumulation.

use lcasgd_tensor::Tensor;

/// Handle to a node on the tape. Cheap to copy; only valid for the graph
/// that created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Context handed to an op's backward implementation: the incoming output
/// gradient, read access to parent values, and gradient accumulation.
pub struct Ctx<'a> {
    /// Gradient of the final output with respect to this node's value.
    pub grad: &'a Tensor,
    /// Nodes strictly before the current one (parents always precede their
    /// consumers on the tape).
    nodes: &'a [Node],
    grads: &'a mut [Option<Tensor>],
}

impl Ctx<'_> {
    /// Value of parent node `v` as computed during the forward pass.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Adds `g` to the gradient accumulator of parent node `v`.
    pub fn accumulate(&mut self, v: Var, g: Tensor) {
        debug_assert_eq!(
            self.nodes[v.0].value.shape(),
            g.shape(),
            "gradient shape mismatch for node {}",
            v.0
        );
        match &mut self.grads[v.0] {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }
}

/// A differentiable operation's reverse pass. Implementations own their
/// parent handles and any saved forward context (e.g. im2col buffers,
/// max-pool indices, batch-norm statistics).
pub trait BackwardOp: Send {
    /// Propagates `ctx.grad` to this op's parents via `ctx.accumulate`.
    fn backward(&self, ctx: &mut Ctx<'_>);
}

struct Node {
    value: Tensor,
    /// `None` for leaves (parameters, constants): backward stops here.
    backward: Option<Box<dyn BackwardOp>>,
}

/// A single forward pass's computation tape.
///
/// Nodes are appended in execution order, so reverse iteration is a valid
/// reverse-topological order — no explicit sort is needed.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Pre-sizes the tape (a ResNet forward pass appends hundreds of nodes).
    pub fn with_capacity(n: usize) -> Self {
        Graph { nodes: Vec::with_capacity(n), grads: Vec::with_capacity(n) }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a leaf node (parameter or constant input). Gradients accumulate
    /// here but do not propagate further.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, None)
    }

    pub(crate) fn push(&mut self, value: Tensor, backward: Option<Box<dyn BackwardOp>>) -> Var {
        self.nodes.push(Node { value, backward });
        self.grads.push(None);
        Var(self.nodes.len() - 1)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of the last `backward` call w.r.t. `v`,
    /// if any path reached it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.0].as_ref()
    }

    /// Takes ownership of the gradient for `v` (leaves `None` behind).
    pub fn take_grad(&mut self, v: Var) -> Option<Tensor> {
        self.grads[v.0].take()
    }

    /// Runs the reverse pass from scalar node `out` with seed 1.
    pub fn backward(&mut self, out: Var) {
        self.backward_with_seed(out, 1.0);
    }

    /// Runs the reverse pass from scalar node `out`, seeding `∂out/∂out`
    /// with `seed` instead of 1. LC-ASGD's Literal compensation mode uses
    /// `seed = (ℓ_m + λ·ℓ_delay)/ℓ_m`; everything else uses [`backward`].
    ///
    /// [`backward`]: Self::backward
    pub fn backward_with_seed(&mut self, out: Var, seed: f32) {
        assert_eq!(
            self.nodes[out.0].value.numel(),
            1,
            "backward from non-scalar node of shape {:?}",
            self.nodes[out.0].value.shape()
        );
        for g in &mut self.grads {
            *g = None;
        }
        self.grads[out.0] = Some(Tensor::full(self.nodes[out.0].value.dims(), seed));

        for i in (0..=out.0).rev() {
            // Take this node's accumulated gradient; skip unreached nodes.
            let Some(grad) = self.grads[i].take() else { continue };
            let (earlier, rest) = self.nodes.split_at(i);
            if let Some(op) = &rest[0].backward {
                let mut ctx = Ctx { grad: &grad, nodes: earlier, grads: &mut self.grads[..i] };
                op.backward(&mut ctx);
            }
            // Restore so callers can also read gradients of interior nodes.
            self.grads[i] = Some(grad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let mut g = Graph::new();
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let v = g.leaf(t.clone());
        assert_eq!(g.value(v), &t);
        assert!(g.grad(v).is_none());
    }

    #[test]
    fn backward_on_scalar_leaf_seeds_itself() {
        let mut g = Graph::new();
        let v = g.leaf(Tensor::scalar(3.0));
        g.backward(v);
        assert_eq!(g.grad(v).unwrap().item(), 1.0);
        g.backward_with_seed(v, 2.5);
        assert_eq!(g.grad(v).unwrap().item(), 2.5);
    }

    #[test]
    #[should_panic(expected = "non-scalar")]
    fn backward_from_vector_panics() {
        let mut g = Graph::new();
        let v = g.leaf(Tensor::zeros(&[3]));
        g.backward(v);
    }

    #[test]
    fn grads_reset_between_backward_calls() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let y = g.mul(x, x); // x^2, dy/dx = 2x = 4
        let s = g.sum(y);
        g.backward(s);
        let first = g.grad(x).unwrap().clone();
        g.backward(s);
        assert_eq!(g.grad(x).unwrap(), &first, "second backward must not double-accumulate");
    }
}

#[cfg(test)]
mod diamond_tests {
    use super::*;

    /// Diamond-shaped graph: x feeds two branches that rejoin. The
    /// gradient must accumulate contributions from both paths.
    #[test]
    fn diamond_graph_accumulates_both_paths() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let a = g.scale(x, 3.0); // 3x
        let b = g.mul(x, x); // x²
        let y = g.add(a, b); // 3x + x²  → dy/dx = 3 + 2x = 7
        let s = g.sum(y);
        g.backward(s);
        assert!((g.grad(x).unwrap().data()[0] - 7.0).abs() < 1e-6);
    }

    /// Nodes on dead branches (not reachable from the loss) receive no
    /// gradient and do not disturb the live path.
    #[test]
    fn dead_branches_get_no_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0], &[1]));
        let dead = g.scale(x, 100.0);
        let live = g.scale(x, 2.0);
        let s = g.sum(live);
        g.backward(s);
        assert!(g.grad(dead).is_none());
        assert_eq!(g.grad(x).unwrap().data(), &[2.0]);
    }

    /// Interior node gradients are readable after backward (needed by
    /// diagnostic tooling).
    #[test]
    fn interior_gradients_are_retained() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = g.scale(x, 4.0);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(y).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(g.grad(s).unwrap().data(), &[1.0]);
    }
}
