//! Differentiable ops, grouped by kind. Each module adds builder methods to
//! [`crate::Graph`] and the corresponding [`crate::graph::BackwardOp`]
//! implementations.

pub mod conv;
pub mod elementwise;
pub mod loss;
pub mod matmul;
pub mod norm;
pub mod pool;
pub mod structural;
