//! Differentiable 2-D convolution over the fused GEMM kernels.
//!
//! Both passes stay fused: the forward pass never materializes the im2col
//! matrix, and the backward pass calls the dedicated `conv2d_dw`/`conv2d_dx`
//! kernels instead of saving `cols` from the forward pass — which also
//! removes the `[n·oh·ow, cin·k·k]` tensor that used to live in the tape
//! for the whole backward sweep.

use crate::graph::{BackwardOp, Ctx, Var};
use crate::Graph;
use lcasgd_tensor::ops::conv::{conv2d, conv2d_dw, conv2d_dx, Conv2dSpec};
use lcasgd_tensor::Tensor;

/// Reorders an NCHW tensor into pixel rows: `[n, c, h, w] -> [n·h·w, c]`,
/// row `(img, pixel)` holding that pixel's channel vector. This is the
/// layout the im2col matmul produces/consumes.
pub fn nchw_to_rows(t: &Tensor) -> Tensor {
    let d = t.dims();
    let (n, c, hw) = (d[0], d[1], d[2] * d[3]);
    let mut out = Tensor::zeros(&[n * hw, c]);
    let src = t.data();
    let dst = out.data_mut();
    for img in 0..n {
        let base = img * c * hw;
        for ch in 0..c {
            for p in 0..hw {
                dst[(img * hw + p) * c + ch] = src[base + ch * hw + p];
            }
        }
    }
    out
}

/// Inverse of [`nchw_to_rows`].
pub fn rows_to_nchw(rows: &Tensor, n: usize, c: usize, h: usize, w: usize) -> Tensor {
    let hw = h * w;
    assert_eq!(rows.dims(), &[n * hw, c], "rows_to_nchw shape");
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let src = rows.data();
    let dst = out.data_mut();
    for img in 0..n {
        let base = img * c * hw;
        for p in 0..hw {
            let row = &src[(img * hw + p) * c..(img * hw + p + 1) * c];
            for (ch, &v) in row.iter().enumerate() {
                dst[base + ch * hw + p] = v;
            }
        }
    }
    out
}

struct Conv2dBack {
    x: Var,
    w: Var,
    spec: Conv2dSpec,
    in_h: usize,
    in_w: usize,
}
impl BackwardOp for Conv2dBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let dw = conv2d_dw(ctx.grad, ctx.value(self.x), &self.spec);
        let dx = conv2d_dx(ctx.grad, ctx.value(self.w), &self.spec, self.in_h, self.in_w);
        ctx.accumulate(self.w, dw);
        ctx.accumulate(self.x, dx);
    }
}

impl Graph {
    /// 2-D convolution: `x: [n, cin, h, w]`, `w: [cout, cin, k, k]`.
    /// Bias-free (ResNet convs carry no bias; BatchNorm provides the shift).
    pub fn conv2d(&mut self, x: Var, w: Var, spec: Conv2dSpec) -> Var {
        let xt = self.value(x);
        let (in_h, in_w) = (xt.dims()[2], xt.dims()[3]);
        let y = conv2d(xt, self.value(w), &spec);
        self.push(y, Some(Box::new(Conv2dBack { x, w, spec, in_h, in_w })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcasgd_tensor::{assert_close, Rng};

    #[test]
    fn rows_roundtrip() {
        let mut rng = Rng::seed_from_u64(41);
        let t = Tensor::randn(&[2, 3, 4, 5], 1.0, &mut rng);
        let rows = nchw_to_rows(&t);
        assert_eq!(rows.dims(), &[2 * 20, 3]);
        assert_close(&rows_to_nchw(&rows, 2, 3, 4, 5), &t, 1e-6);
    }

    #[test]
    fn conv_forward_matches_tensor_kernel() {
        let mut rng = Rng::seed_from_u64(42);
        let spec = Conv2dSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
        let xt = Tensor::randn(&[2, 2, 5, 5], 1.0, &mut rng);
        let wt = Tensor::randn(&[3, 2, 3, 3], 0.5, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(xt.clone());
        let w = g.leaf(wt.clone());
        let y = g.conv2d(x, w, spec);
        assert_close(g.value(y), &conv2d(&xt, &wt, &spec), 1e-5);
    }

    #[test]
    fn conv_weight_grad_via_sum_equals_input_patch_sums() {
        // With dY = 1 everywhere, dW[co, ci, ky, kx] = sum over all output
        // positions of the input pixel under (ky, kx) — equal for all co.
        let mut rng = Rng::seed_from_u64(43);
        let spec = Conv2dSpec { in_channels: 1, out_channels: 2, kernel: 1, stride: 1, padding: 0 };
        let xt = Tensor::randn(&[1, 1, 3, 3], 1.0, &mut rng);
        let wt = Tensor::randn(&[2, 1, 1, 1], 1.0, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(xt.clone());
        let w = g.leaf(wt);
        let y = g.conv2d(x, w, spec);
        let s = g.sum(y);
        g.backward(s);
        let dw = g.grad(w).unwrap();
        let expect = xt.sum();
        assert!((dw.data()[0] - expect).abs() < 1e-4);
        assert!((dw.data()[1] - expect).abs() < 1e-4);
    }
}
