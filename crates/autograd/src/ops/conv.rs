//! Differentiable 2-D convolution via im2col.

use crate::graph::{BackwardOp, Ctx, Var};
use crate::Graph;
use lcasgd_tensor::ops::conv::{col2im, conv2d, im2col, Conv2dSpec};
use lcasgd_tensor::Tensor;

/// Reorders an NCHW tensor into pixel rows: `[n, c, h, w] -> [n·h·w, c]`,
/// row `(img, pixel)` holding that pixel's channel vector. This is the
/// layout the im2col matmul produces/consumes.
pub fn nchw_to_rows(t: &Tensor) -> Tensor {
    let d = t.dims();
    let (n, c, hw) = (d[0], d[1], d[2] * d[3]);
    let mut out = Tensor::zeros(&[n * hw, c]);
    let src = t.data();
    let dst = out.data_mut();
    for img in 0..n {
        let base = img * c * hw;
        for ch in 0..c {
            for p in 0..hw {
                dst[(img * hw + p) * c + ch] = src[base + ch * hw + p];
            }
        }
    }
    out
}

/// Inverse of [`nchw_to_rows`].
pub fn rows_to_nchw(rows: &Tensor, n: usize, c: usize, h: usize, w: usize) -> Tensor {
    let hw = h * w;
    assert_eq!(rows.dims(), &[n * hw, c], "rows_to_nchw shape");
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let src = rows.data();
    let dst = out.data_mut();
    for img in 0..n {
        let base = img * c * hw;
        for p in 0..hw {
            let row = &src[(img * hw + p) * c..(img * hw + p + 1) * c];
            for (ch, &v) in row.iter().enumerate() {
                dst[base + ch * hw + p] = v;
            }
        }
    }
    out
}

struct Conv2dBack {
    x: Var,
    w: Var,
    spec: Conv2dSpec,
    /// Saved im2col matrix `[n·oh·ow, cin·k·k]` from the forward pass.
    cols: Tensor,
    n: usize,
    in_h: usize,
    in_w: usize,
}
impl BackwardOp for Conv2dBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let d = ctx.grad.dims();
        let (oh, ow) = (d[2], d[3]);
        // [n·oh·ow, cout]
        let dy = nchw_to_rows(ctx.grad);
        // dW = dYᵀ · cols : [cout, plen]
        let dw = dy
            .matmul_tn(&self.cols)
            .reshape(&[self.spec.out_channels, self.spec.in_channels, self.spec.kernel, self.spec.kernel]);
        // dcols = dY · Wmat : [n·oh·ow, plen]
        let wmat = ctx.value(self.w).reshaped(&[self.spec.out_channels, self.spec.patch_len()]);
        let dcols = dy.matmul(&wmat);
        let dx = col2im(&dcols, &self.spec, self.n, self.in_h, self.in_w);
        let _ = (oh, ow);
        ctx.accumulate(self.w, dw);
        ctx.accumulate(self.x, dx);
    }
}

impl Graph {
    /// 2-D convolution: `x: [n, cin, h, w]`, `w: [cout, cin, k, k]`.
    /// Bias-free (ResNet convs carry no bias; BatchNorm provides the shift).
    pub fn conv2d(&mut self, x: Var, w: Var, spec: Conv2dSpec) -> Var {
        let xt = self.value(x);
        let (n, in_h, in_w) = (xt.dims()[0], xt.dims()[2], xt.dims()[3]);
        let cols = im2col(xt, &spec);
        let y = conv2d(xt, self.value(w), &spec);
        self.push(y, Some(Box::new(Conv2dBack { x, w, spec, cols, n, in_h, in_w })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcasgd_tensor::{assert_close, Rng};

    #[test]
    fn rows_roundtrip() {
        let mut rng = Rng::seed_from_u64(41);
        let t = Tensor::randn(&[2, 3, 4, 5], 1.0, &mut rng);
        let rows = nchw_to_rows(&t);
        assert_eq!(rows.dims(), &[2 * 20, 3]);
        assert_close(&rows_to_nchw(&rows, 2, 3, 4, 5), &t, 1e-6);
    }

    #[test]
    fn conv_forward_matches_tensor_kernel() {
        let mut rng = Rng::seed_from_u64(42);
        let spec = Conv2dSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
        let xt = Tensor::randn(&[2, 2, 5, 5], 1.0, &mut rng);
        let wt = Tensor::randn(&[3, 2, 3, 3], 0.5, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(xt.clone());
        let w = g.leaf(wt.clone());
        let y = g.conv2d(x, w, spec);
        assert_close(g.value(y), &conv2d(&xt, &wt, &spec), 1e-5);
    }

    #[test]
    fn conv_weight_grad_via_sum_equals_input_patch_sums() {
        // With dY = 1 everywhere, dW[co, ci, ky, kx] = sum over all output
        // positions of the input pixel under (ky, kx) — equal for all co.
        let mut rng = Rng::seed_from_u64(43);
        let spec = Conv2dSpec { in_channels: 1, out_channels: 2, kernel: 1, stride: 1, padding: 0 };
        let xt = Tensor::randn(&[1, 1, 3, 3], 1.0, &mut rng);
        let wt = Tensor::randn(&[2, 1, 1, 1], 1.0, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(xt.clone());
        let w = g.leaf(wt);
        let y = g.conv2d(x, w, spec);
        let s = g.sum(y);
        g.backward(s);
        let dw = g.grad(w).unwrap();
        let expect = xt.sum();
        assert!((dw.data()[0] - expect).abs() < 1e-4);
        assert!((dw.data()[1] - expect).abs() < 1e-4);
    }
}
