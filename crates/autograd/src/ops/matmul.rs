//! Matrix multiplication and the fused linear layer.

use crate::graph::{BackwardOp, Ctx, Var};
use crate::Graph;

/// `C = A·B`: `dA = dC·Bᵀ`, `dB = Aᵀ·dC`.
struct MatmulBack {
    a: Var,
    b: Var,
}
impl BackwardOp for MatmulBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let da = ctx.grad.matmul_nt(ctx.value(self.b));
        let db = ctx.value(self.a).matmul_tn(ctx.grad);
        ctx.accumulate(self.a, da);
        ctx.accumulate(self.b, db);
    }
}

/// `Y = X·Wᵀ + b` (the PyTorch linear convention, `W: [out, in]`).
struct LinearBack {
    x: Var,
    w: Var,
    b: Var,
}
impl BackwardOp for LinearBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        // dX = dY·W ; dW = dYᵀ·X ; db = column-sum(dY)
        let dx = ctx.grad.matmul(ctx.value(self.w));
        let dw = ctx.grad.matmul_tn(ctx.value(self.x));
        let db = ctx.grad.sum_rows();
        ctx.accumulate(self.x, dx);
        ctx.accumulate(self.w, dw);
        ctx.accumulate(self.b, db);
    }
}

impl Graph {
    /// `[m, k] × [k, n] -> [m, n]` matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Some(Box::new(MatmulBack { a, b })))
    }

    /// Fused linear layer `x·wᵀ + bias` with `x: [batch, in]`,
    /// `w: [out, in]`, `bias: [out]`. One tape node instead of three.
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let y = self.value(x).matmul_nt(self.value(w)).add_rows(self.value(b));
        self.push(y, Some(Box::new(LinearBack { x, w, b })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcasgd_tensor::{assert_close, Rng, Tensor};

    #[test]
    fn matmul_grads_match_formulas() {
        let mut rng = Rng::seed_from_u64(31);
        let at = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let bt = Tensor::randn(&[4, 2], 1.0, &mut rng);
        let mut g = Graph::new();
        let a = g.leaf(at.clone());
        let b = g.leaf(bt.clone());
        let c = g.matmul(a, b);
        let s = g.sum(c);
        g.backward(s);
        // dC = ones; dA = ones·Bᵀ, dB = Aᵀ·ones
        let ones = Tensor::ones(&[3, 2]);
        assert_close(g.grad(a).unwrap(), &ones.matmul_nt(&bt), 1e-5);
        assert_close(g.grad(b).unwrap(), &at.matmul_tn(&ones), 1e-5);
    }

    #[test]
    fn linear_equals_composed_ops() {
        let mut rng = Rng::seed_from_u64(32);
        let xt = Tensor::randn(&[5, 3], 1.0, &mut rng);
        let wt = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let bt = Tensor::randn(&[2], 1.0, &mut rng);

        // Fused path.
        let mut g1 = Graph::new();
        let (x1, w1, b1) = (g1.leaf(xt.clone()), g1.leaf(wt.clone()), g1.leaf(bt.clone()));
        let y1 = g1.linear(x1, w1, b1);
        let s1 = g1.mean(y1);
        g1.backward(s1);

        // Composed path: matmul against explicit transpose + add_rows.
        let mut g2 = Graph::new();
        let (x2, b2) = (g2.leaf(xt.clone()), g2.leaf(bt.clone()));
        let wt_t = g2.leaf(wt.transpose2d());
        let mm = g2.matmul(x2, wt_t);
        let y2 = g2.add_rows(mm, b2);
        let s2 = g2.mean(y2);
        g2.backward(s2);

        assert_close(g1.value(y1), g2.value(y2), 1e-5);
        assert_close(g1.grad(x1).unwrap(), g2.grad(x2).unwrap(), 1e-5);
        assert_close(g1.grad(b1).unwrap(), g2.grad(b2).unwrap(), 1e-5);
        assert_close(g1.grad(w1).unwrap(), &g2.grad(wt_t).unwrap().transpose2d(), 1e-5);
    }
}
