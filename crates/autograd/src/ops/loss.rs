//! Loss functions: softmax cross-entropy and mean squared error.

use crate::graph::{BackwardOp, Ctx, Var};
use crate::Graph;
use lcasgd_tensor::Tensor;

/// Mean softmax cross-entropy over the batch. Saves the softmax
/// probabilities; `dx = (p − onehot)/batch · dL`.
struct CrossEntropyBack {
    x: Var,
    labels: Vec<usize>,
    probs: Tensor,
}
impl BackwardOp for CrossEntropyBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let scale = ctx.grad.item() / self.labels.len() as f32;
        let mut gx = self.probs.clone();
        let n = gx.dims()[1];
        for (r, &label) in self.labels.iter().enumerate() {
            gx.data_mut()[r * n + label] -= 1.0;
        }
        gx.scale_inplace(scale);
        ctx.accumulate(self.x, gx);
    }
}

/// Mean squared error against a constant target;
/// `dx = 2(x − target)/numel · dL`.
struct MseBack {
    x: Var,
    target: Tensor,
}
impl BackwardOp for MseBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let scale = 2.0 * ctx.grad.item() / self.target.numel() as f32;
        let gx = ctx.value(self.x).sub(&self.target).scale(scale);
        ctx.accumulate(self.x, gx);
    }
}

/// Numerically stable row-wise softmax of a `[b, n]` logit matrix.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax_rows expects rank 2");
    let n = logits.dims()[1];
    let mut out = logits.clone();
    for row in out.data_mut().chunks_exact_mut(n) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            denom += *x;
        }
        for x in row.iter_mut() {
            *x /= denom;
        }
    }
    out
}

impl Graph {
    /// Mean softmax cross-entropy of logits `[b, n]` against integer class
    /// labels. Returns a scalar node. This is the `ℓ(f_w(x), y)` of the
    /// paper's Formula 4.
    pub fn softmax_cross_entropy(&mut self, x: Var, labels: &[usize]) -> Var {
        let logits = self.value(x);
        assert_eq!(logits.dims()[0], labels.len(), "label count mismatch");
        let n = logits.dims()[1];
        let probs = softmax_rows(logits);
        let mut loss = 0.0f64;
        for (r, &label) in labels.iter().enumerate() {
            assert!(label < n, "label {label} out of {n} classes");
            loss -= (probs.data()[r * n + label].max(1e-12) as f64).ln();
        }
        let v = Tensor::scalar((loss / labels.len() as f64) as f32);
        self.push(v, Some(Box::new(CrossEntropyBack { x, labels: labels.to_vec(), probs })))
    }

    /// Mean squared error of `x` against a constant `target` of the same
    /// shape. Scalar node. Used to train the LSTM loss/step predictors.
    pub fn mse(&mut self, x: Var, target: Tensor) -> Var {
        let xt = self.value(x);
        assert_eq!(xt.shape(), target.shape(), "mse shape mismatch");
        let diff = xt.sub(&target);
        let v = Tensor::scalar(diff.square().mean());
        self.push(v, Some(Box::new(MseBack { x, target })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1., 2., 3., -1., 0., 1.], &[2, 3]);
        let p = softmax_rows(&logits);
        for row in p.data().chunks_exact(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1., 2., 3.], &[1, 3]);
        let b = a.add_scalar(100.0);
        lcasgd_tensor::assert_close(&softmax_rows(&a), &softmax_rows(&b), 1e-5);
    }

    #[test]
    fn uniform_logits_give_log_n_loss() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[4, 10]));
        let l = g.softmax_cross_entropy(x, &[0, 3, 5, 9]);
        assert!((g.value(l).item() - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_is_probs_minus_onehot() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[1, 4]));
        let l = g.softmax_cross_entropy(x, &[2]);
        g.backward(l);
        let gx = g.grad(x).unwrap();
        // uniform probs = 0.25, minus one-hot at 2
        lcasgd_tensor::assert_close(
            gx,
            &Tensor::from_vec(vec![0.25, 0.25, -0.75, 0.25], &[1, 4]),
            1e-5,
        );
    }

    #[test]
    fn perfect_prediction_has_small_loss_and_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![20., 0., 0.], &[1, 3]));
        let l = g.softmax_cross_entropy(x, &[0]);
        g.backward(l);
        assert!(g.value(l).item() < 1e-6);
        assert!(g.grad(x).unwrap().norm() < 1e-6);
    }

    #[test]
    fn mse_value_and_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1., 3.], &[2]));
        let l = g.mse(x, Tensor::from_vec(vec![0., 1.], &[2]));
        g.backward(l);
        // mse = (1 + 4)/2 = 2.5 ; grad = 2(x-t)/2 = (1, 2)
        assert!((g.value(l).item() - 2.5).abs() < 1e-6);
        assert_eq!(g.grad(x).unwrap().data(), &[1., 2.]);
    }

    #[test]
    fn ce_loss_decreases_under_gradient_step() {
        // One manual SGD step on the logits must reduce the loss.
        let logits = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.7], &[1, 4]);
        let labels = [1usize];
        let mut g = Graph::new();
        let x = g.leaf(logits.clone());
        let l = g.softmax_cross_entropy(x, &labels);
        g.backward(l);
        let before = g.value(l).item();
        let mut stepped = logits.clone();
        stepped.add_assign_scaled(g.grad(x).unwrap(), -0.5);
        let mut g2 = Graph::new();
        let x2 = g2.leaf(stepped);
        let l2 = g2.softmax_cross_entropy(x2, &labels);
        assert!(g2.value(l2).item() < before);
    }
}
