//! Elementwise differentiable ops: arithmetic, activations, broadcasts.

use crate::graph::{BackwardOp, Ctx, Var};
use crate::Graph;
use lcasgd_tensor::Tensor;

struct AddBack(Var, Var);
impl BackwardOp for AddBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        ctx.accumulate(self.0, ctx.grad.clone());
        ctx.accumulate(self.1, ctx.grad.clone());
    }
}

struct SubBack(Var, Var);
impl BackwardOp for SubBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        ctx.accumulate(self.0, ctx.grad.clone());
        ctx.accumulate(self.1, ctx.grad.scale(-1.0));
    }
}

struct MulBack(Var, Var);
impl BackwardOp for MulBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let ga = ctx.grad.mul(ctx.value(self.1));
        let gb = ctx.grad.mul(ctx.value(self.0));
        ctx.accumulate(self.0, ga);
        ctx.accumulate(self.1, gb);
    }
}

struct ScaleBack(Var, f32);
impl BackwardOp for ScaleBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        ctx.accumulate(self.0, ctx.grad.scale(self.1));
    }
}

struct ShiftBack(Var);
impl BackwardOp for ShiftBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        ctx.accumulate(self.0, ctx.grad.clone());
    }
}

/// Saves the *output* (y = max(x, 0)); dx = dy · 1[y > 0].
struct ReluBack {
    x: Var,
    y: Tensor,
}
impl BackwardOp for ReluBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let mut g = ctx.grad.clone();
        for (gv, &yv) in g.data_mut().iter_mut().zip(self.y.data()) {
            if yv <= 0.0 {
                *gv = 0.0;
            }
        }
        ctx.accumulate(self.x, g);
    }
}

/// dx = dy · y · (1 − y) using the saved output.
struct SigmoidBack {
    x: Var,
    y: Tensor,
}
impl BackwardOp for SigmoidBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let mut g = ctx.grad.clone();
        for (gv, &yv) in g.data_mut().iter_mut().zip(self.y.data()) {
            *gv *= yv * (1.0 - yv);
        }
        ctx.accumulate(self.x, g);
    }
}

/// dx = dy · (1 − y²) using the saved output.
struct TanhBack {
    x: Var,
    y: Tensor,
}
impl BackwardOp for TanhBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let mut g = ctx.grad.clone();
        for (gv, &yv) in g.data_mut().iter_mut().zip(self.y.data()) {
            *gv *= 1.0 - yv * yv;
        }
        ctx.accumulate(self.x, g);
    }
}

/// `[b, ...] + bias[...]`: bias gradient sums over the leading dimension.
struct AddRowsBack {
    x: Var,
    bias: Var,
}
impl BackwardOp for AddRowsBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        ctx.accumulate(self.bias, ctx.grad.sum_rows());
        ctx.accumulate(self.x, ctx.grad.clone());
    }
}

/// `[n, c, h, w] + bias[c]`: bias gradient sums over N, H, W.
struct AddChannelsBack {
    x: Var,
    bias: Var,
}
impl BackwardOp for AddChannelsBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let d = ctx.grad.dims();
        let (c, hw) = (d[1], d[2] * d[3]);
        let mut gb = vec![0.0f32; c];
        for img in ctx.grad.data().chunks_exact(c * hw) {
            for (ch, acc) in gb.iter_mut().enumerate() {
                *acc += img[ch * hw..(ch + 1) * hw].iter().sum::<f32>();
            }
        }
        ctx.accumulate(self.bias, Tensor::from_vec(gb, &[c]));
        ctx.accumulate(self.x, ctx.grad.clone());
    }
}

impl Graph {
    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Some(Box::new(AddBack(a, b))))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Some(Box::new(SubBack(a, b))))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Some(Box::new(MulBack(a, b))))
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push(v, Some(Box::new(ScaleBack(a, s))))
    }

    /// Addition of a constant (gradient passes through unchanged).
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).add_scalar(s);
        self.push(v, Some(Box::new(ShiftBack(a))))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let y = self.value(x).relu();
        let back = ReluBack { x, y: y.clone() };
        self.push(y, Some(Box::new(back)))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let y = self.value(x).sigmoid();
        let back = SigmoidBack { x, y: y.clone() };
        self.push(y, Some(Box::new(back)))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let y = self.value(x).tanh_map();
        let back = TanhBack { x, y: y.clone() };
        self.push(y, Some(Box::new(back)))
    }

    /// Adds `bias` (shape = trailing dims of `x`) to every leading slice.
    pub fn add_rows(&mut self, x: Var, bias: Var) -> Var {
        let v = self.value(x).add_rows(self.value(bias));
        self.push(v, Some(Box::new(AddRowsBack { x, bias })))
    }

    /// Adds a per-channel bias to an NCHW activation.
    pub fn add_channels(&mut self, x: Var, bias: Var) -> Var {
        let v = self.value(x).add_channels(self.value(bias));
        self.push(v, Some(Box::new(AddChannelsBack { x, bias })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcasgd_tensor::assert_close;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d)
    }

    #[test]
    fn add_grads_are_identity() {
        let mut g = Graph::new();
        let a = g.leaf(t(vec![1., 2.], &[2]));
        let b = g.leaf(t(vec![3., 4.], &[2]));
        let c = g.add(a, b);
        let s = g.sum(c);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[1., 1.]);
        assert_eq!(g.grad(b).unwrap().data(), &[1., 1.]);
    }

    #[test]
    fn sub_grad_negates_rhs() {
        let mut g = Graph::new();
        let a = g.leaf(t(vec![1., 2.], &[2]));
        let b = g.leaf(t(vec![3., 4.], &[2]));
        let c = g.sub(a, b);
        let s = g.sum(c);
        g.backward(s);
        assert_eq!(g.grad(b).unwrap().data(), &[-1., -1.]);
    }

    #[test]
    fn product_rule() {
        let mut g = Graph::new();
        let a = g.leaf(t(vec![2., 3.], &[2]));
        let b = g.leaf(t(vec![5., 7.], &[2]));
        let c = g.mul(a, b);
        let s = g.sum(c);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[5., 7.]);
        assert_eq!(g.grad(b).unwrap().data(), &[2., 3.]);
    }

    #[test]
    fn shared_operand_accumulates() {
        // s = sum(x * x) => ds/dx = 2x
        let mut g = Graph::new();
        let x = g.leaf(t(vec![3., -4.], &[2]));
        let y = g.mul(x, x);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().data(), &[6., -8.]);
    }

    #[test]
    fn relu_kills_negative_paths() {
        let mut g = Graph::new();
        let x = g.leaf(t(vec![-1., 2., 0.], &[3]));
        let y = g.relu(x);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().data(), &[0., 1., 0.]);
    }

    #[test]
    fn sigmoid_grad_at_zero_is_quarter() {
        let mut g = Graph::new();
        let x = g.leaf(t(vec![0.0], &[1]));
        let y = g.sigmoid(x);
        let s = g.sum(y);
        g.backward(s);
        assert!((g.grad(x).unwrap().data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_grad_at_zero_is_one() {
        let mut g = Graph::new();
        let x = g.leaf(t(vec![0.0], &[1]));
        let y = g.tanh(x);
        let s = g.sum(y);
        g.backward(s);
        assert!((g.grad(x).unwrap().data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn add_rows_bias_grad_sums_batch() {
        let mut g = Graph::new();
        let x = g.leaf(t(vec![0.; 6], &[3, 2]));
        let b = g.leaf(t(vec![1., 2.], &[2]));
        let y = g.add_rows(x, b);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(b).unwrap().data(), &[3., 3.]);
        assert_eq!(g.grad(x).unwrap().dims(), &[3, 2]);
    }

    #[test]
    fn add_channels_bias_grad_sums_nhw() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[2, 3, 2, 2]));
        let b = g.leaf(Tensor::zeros(&[3]));
        let y = g.add_channels(x, b);
        let s = g.sum(y);
        g.backward(s);
        // each channel bias touches 2 images × 2×2 pixels = 8 elements
        assert_close(&g.grad(b).unwrap().clone(), &t(vec![8., 8., 8.], &[3]), 1e-6);
    }

    #[test]
    fn seed_scales_whole_chain() {
        let mut g = Graph::new();
        let x = g.leaf(t(vec![1., 2.], &[2]));
        let y = g.scale(x, 3.0);
        let s = g.sum(y);
        g.backward_with_seed(s, 2.0);
        assert_eq!(g.grad(x).unwrap().data(), &[6., 6.]);
    }
}
