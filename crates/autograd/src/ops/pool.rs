//! Pooling ops: max pooling and global average pooling.

use crate::graph::{BackwardOp, Ctx, Var};
use crate::Graph;
use lcasgd_tensor::Tensor;

struct MaxPoolBack {
    x: Var,
    /// Flat input index of each output element's argmax.
    argmax: Vec<u32>,
    in_dims: [usize; 4],
}
impl BackwardOp for MaxPoolBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let mut dx = Tensor::zeros(&self.in_dims);
        let d = dx.data_mut();
        for (&idx, &g) in self.argmax.iter().zip(ctx.grad.data()) {
            d[idx as usize] += g;
        }
        ctx.accumulate(self.x, dx);
    }
}

struct GlobalAvgPoolBack {
    x: Var,
    in_dims: [usize; 4],
}
impl BackwardOp for GlobalAvgPoolBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let [n, c, h, w] = self.in_dims;
        let hw = h * w;
        let scale = 1.0 / hw as f32;
        let mut dx = Tensor::zeros(&self.in_dims);
        let dst = dx.data_mut();
        let src = ctx.grad.data();
        for img in 0..n {
            for ch in 0..c {
                let g = src[img * c + ch] * scale;
                dst[(img * c + ch) * hw..(img * c + ch + 1) * hw].fill(g);
            }
        }
        ctx.accumulate(self.x, dx);
    }
}

impl Graph {
    /// `k×k` max pooling with stride `stride` over an NCHW input. The input
    /// spatial size must be divisible by the window (no padding), matching
    /// how ResNet's pools are configured.
    pub fn max_pool2d(&mut self, x: Var, k: usize, stride: usize) -> Var {
        let xt = self.value(x);
        assert_eq!(xt.shape().rank(), 4, "max_pool2d expects NCHW");
        let d = xt.dims();
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        assert!(h >= k && w >= k, "pool window larger than input");
        let oh = (h - k) / stride + 1;
        let ow = (w - k) / stride + 1;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0u32; n * c * oh * ow];
        let src = xt.data();
        {
            let dst = out.data_mut();
            let mut o = 0usize;
            for img in 0..n {
                for ch in 0..c {
                    let plane = (img * c + ch) * h * w;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_i = 0usize;
                            for ky in 0..k {
                                for kx in 0..k {
                                    let i = plane + (oy * stride + ky) * w + ox * stride + kx;
                                    if src[i] > best {
                                        best = src[i];
                                        best_i = i;
                                    }
                                }
                            }
                            dst[o] = best;
                            argmax[o] = best_i as u32;
                            o += 1;
                        }
                    }
                }
            }
        }
        self.push(out, Some(Box::new(MaxPoolBack { x, argmax, in_dims: [n, c, h, w] })))
    }

    /// Global average pooling: `[n, c, h, w] -> [n, c]`. ResNet's final
    /// spatial reduction before the classifier head.
    pub fn global_avg_pool(&mut self, x: Var) -> Var {
        let xt = self.value(x);
        assert_eq!(xt.shape().rank(), 4, "global_avg_pool expects NCHW");
        let d = xt.dims();
        let (n, c, hw) = (d[0], d[1], d[2] * d[3]);
        let mut out = Tensor::zeros(&[n, c]);
        let src = xt.data();
        for (i, o) in out.data_mut().iter_mut().enumerate() {
            let plane = &src[i * hw..(i + 1) * hw];
            *o = plane.iter().sum::<f32>() / hw as f32;
        }
        self.push(out, Some(Box::new(GlobalAvgPoolBack { x, in_dims: [d[0], d[1], d[2], d[3]] })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_values() {
        // 1 image, 1 channel, 4x4 -> 2x2 with k=2, s=2
        let xt = Tensor::from_vec(
            vec![1., 2., 5., 6., 3., 4., 7., 8., 9., 10., 13., 14., 11., 12., 15., 16.],
            &[1, 1, 4, 4],
        );
        let mut g = Graph::new();
        let x = g.leaf(xt);
        let y = g.max_pool2d(x, 2, 2);
        assert_eq!(g.value(y).data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn max_pool_grad_routes_to_argmax() {
        let xt = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 2, 2]);
        let mut g = Graph::new();
        let x = g.leaf(xt);
        let y = g.max_pool2d(x, 2, 2);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().data(), &[0., 0., 0., 1.]);
    }

    #[test]
    fn overlapping_pool_accumulates() {
        // k=2, stride=1 on 3x3: center pixel may win several windows.
        let xt = Tensor::from_vec(vec![0., 0., 0., 0., 9., 0., 0., 0., 0.], &[1, 1, 3, 3]);
        let mut g = Graph::new();
        let x = g.leaf(xt);
        let y = g.max_pool2d(x, 2, 1);
        let s = g.sum(y);
        g.backward(s);
        // Center wins all 4 windows.
        assert_eq!(g.grad(x).unwrap().data()[4], 4.0);
    }

    #[test]
    fn global_avg_pool_value_and_grad() {
        let xt = Tensor::from_vec(vec![1., 2., 3., 4., 10., 20., 30., 40.], &[1, 2, 2, 2]);
        let mut g = Graph::new();
        let x = g.leaf(xt);
        let y = g.global_avg_pool(x);
        assert_eq!(g.value(y).data(), &[2.5, 25.0]);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().data(), &[0.25; 8]);
    }
}
