//! Differentiable batch normalization (training mode) and constant-stats
//! normalization (inference mode).
//!
//! The training-mode ops also *return* the batch mean/variance so the
//! caller can maintain running statistics — that hook is exactly where the
//! paper's Async-BN plugs in: workers report batch statistics to the
//! parameter server (Algorithm 1 lines 6–7), which accumulates them with
//! Formulas 6–7 instead of keeping purely local running averages.

use crate::graph::{BackwardOp, Ctx, Var};
use crate::Graph;
use lcasgd_tensor::Tensor;

/// Batch statistics computed by a training-mode BN op.
#[derive(Clone, Debug)]
pub struct BnBatchStats {
    /// Per-channel batch mean.
    pub mean: Tensor,
    /// Per-channel biased batch variance.
    pub var: Tensor,
}

/// Shared backward math: given per-channel reductions, produce dx for one
/// element. All tensors are flattened with an `element -> channel` map.
struct BnBack {
    x: Var,
    gamma: Var,
    beta: Var,
    /// Normalized activations x̂ from the forward pass.
    xhat: Tensor,
    /// Per-channel 1/√(σ²+ε).
    inv_std: Tensor,
    /// Elements per channel (N·H·W for 2d, batch for 1d).
    m: usize,
    layout: Layout,
}

enum Layout {
    /// `[b, n]`: channel = column.
    Rows { n: usize },
    /// `[n, c, h, w]`: channel = feature map.
    Nchw { c: usize, hw: usize },
}

impl Layout {
    #[inline]
    fn channel_of(&self, flat: usize) -> usize {
        match *self {
            Layout::Rows { n } => flat % n,
            Layout::Nchw { c, hw } => (flat / hw) % c,
        }
    }

    fn channels(&self) -> usize {
        match *self {
            Layout::Rows { n } => n,
            Layout::Nchw { c, .. } => c,
        }
    }
}

impl BackwardOp for BnBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let c = self.layout.channels();
        let dy = ctx.grad.data();
        let xhat = self.xhat.data();

        // Per-channel reductions: dbeta = Σdy, dgamma = Σ dy·x̂.
        let mut dbeta = vec![0.0f64; c];
        let mut dgamma = vec![0.0f64; c];
        for (i, (&g, &xh)) in dy.iter().zip(xhat).enumerate() {
            let ch = self.layout.channel_of(i);
            dbeta[ch] += g as f64;
            dgamma[ch] += (g * xh) as f64;
        }

        // dx = γ·inv_std/m · (m·dy − dbeta − x̂·dgamma)
        let gamma = ctx.value(self.gamma).data();
        let inv_std = self.inv_std.data();
        let m = self.m as f32;
        let mut dx = Tensor::zeros_like(&self.xhat);
        for (i, o) in dx.data_mut().iter_mut().enumerate() {
            let ch = self.layout.channel_of(i);
            let term = m * dy[i] - dbeta[ch] as f32 - xhat[i] * dgamma[ch] as f32;
            *o = gamma[ch] * inv_std[ch] / m * term;
        }

        ctx.accumulate(self.x, dx);
        ctx.accumulate(
            self.gamma,
            Tensor::from_vec(dgamma.into_iter().map(|v| v as f32).collect(), &[c]),
        );
        ctx.accumulate(
            self.beta,
            Tensor::from_vec(dbeta.into_iter().map(|v| v as f32).collect(), &[c]),
        );
    }
}

fn normalize(
    x: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    layout: &Layout,
) -> (Tensor, Tensor, Tensor) {
    let inv_std =
        Tensor::from_vec(var.data().iter().map(|&v| 1.0 / (v + eps).sqrt()).collect(), var.dims());
    let mut xhat = x.clone();
    let (md, isd) = (mean.data(), inv_std.data());
    for (i, v) in xhat.data_mut().iter_mut().enumerate() {
        let ch = layout.channel_of(i);
        *v = (*v - md[ch]) * isd[ch];
    }
    let mut y = xhat.clone();
    let (gd, bd) = (gamma.data(), beta.data());
    for (i, v) in y.data_mut().iter_mut().enumerate() {
        let ch = layout.channel_of(i);
        *v = *v * gd[ch] + bd[ch];
    }
    (y, xhat, inv_std)
}

impl Graph {
    /// Training-mode BatchNorm over an NCHW activation. Normalizes with the
    /// *batch* statistics and returns them for running-average maintenance.
    pub fn batch_norm2d(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> (Var, BnBatchStats) {
        let xt = self.value(x);
        assert_eq!(xt.shape().rank(), 4, "batch_norm2d expects NCHW");
        let d = xt.dims();
        let (n, c, hw) = (d[0], d[1], d[2] * d[3]);
        let mean = xt.channel_mean();
        let var = xt.channel_var(&mean);
        let layout = Layout::Nchw { c, hw };
        let (y, xhat, inv_std) =
            normalize(xt, &mean, &var, self.value(gamma), self.value(beta), eps, &layout);
        let back = BnBack { x, gamma, beta, xhat, inv_std, m: n * hw, layout };
        let out = self.push(y, Some(Box::new(back)));
        (out, BnBatchStats { mean, var })
    }

    /// Training-mode BatchNorm over a `[b, features]` activation.
    pub fn batch_norm1d(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> (Var, BnBatchStats) {
        let xt = self.value(x);
        assert_eq!(xt.shape().rank(), 2, "batch_norm1d expects [b, n]");
        let (b, n) = (xt.dims()[0], xt.dims()[1]);
        let mean = xt.column_mean();
        let var = xt.column_var(&mean);
        let layout = Layout::Rows { n };
        let (y, xhat, inv_std) =
            normalize(xt, &mean, &var, self.value(gamma), self.value(beta), eps, &layout);
        let back = BnBack { x, gamma, beta, xhat, inv_std, m: b, layout };
        let out = self.push(y, Some(Box::new(back)));
        (out, BnBatchStats { mean, var })
    }

    /// Inference-mode normalization with fixed (running) statistics. The
    /// statistics are constants: gradients flow to `x`, `gamma`, `beta`
    /// only. Works for both NCHW (rank 4) and `[b, n]` (rank 2) inputs.
    pub fn batch_norm_inference(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        mean: &Tensor,
        var: &Tensor,
        eps: f32,
    ) -> Var {
        let xt = self.value(x);
        let layout = match xt.shape().rank() {
            2 => Layout::Rows { n: xt.dims()[1] },
            4 => Layout::Nchw { c: xt.dims()[1], hw: xt.dims()[2] * xt.dims()[3] },
            r => panic!("batch_norm_inference on rank {r}"),
        };
        let (y, xhat, inv_std) =
            normalize(xt, mean, var, self.value(gamma), self.value(beta), eps, &layout);
        // Fixed stats ⇒ x̂ is an affine function of x alone: dx = dy·γ·inv_std.
        struct InferenceBack {
            x: Var,
            gamma: Var,
            beta: Var,
            xhat: Tensor,
            inv_std: Tensor,
            layout: Layout,
        }
        impl BackwardOp for InferenceBack {
            fn backward(&self, ctx: &mut Ctx<'_>) {
                let c = self.layout.channels();
                let dy = ctx.grad.data();
                let gd = ctx.value(self.gamma).data();
                let isd = self.inv_std.data();
                let mut dx = Tensor::zeros_like(&self.xhat);
                let mut dgamma = vec![0.0f64; c];
                let mut dbeta = vec![0.0f64; c];
                for (i, o) in dx.data_mut().iter_mut().enumerate() {
                    let ch = self.layout.channel_of(i);
                    *o = dy[i] * gd[ch] * isd[ch];
                    dgamma[ch] += (dy[i] * self.xhat.data()[i]) as f64;
                    dbeta[ch] += dy[i] as f64;
                }
                ctx.accumulate(self.x, dx);
                ctx.accumulate(
                    self.gamma,
                    Tensor::from_vec(dgamma.into_iter().map(|v| v as f32).collect(), &[c]),
                );
                ctx.accumulate(
                    self.beta,
                    Tensor::from_vec(dbeta.into_iter().map(|v| v as f32).collect(), &[c]),
                );
            }
        }
        let back = InferenceBack { x, gamma, beta, xhat, inv_std, layout };
        self.push(y, Some(Box::new(back)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcasgd_tensor::{assert_close, Rng};

    #[test]
    fn bn1d_output_is_normalized() {
        let mut rng = Rng::seed_from_u64(51);
        let xt = Tensor::randn(&[64, 8], 3.0, &mut rng).add_scalar(5.0);
        let mut g = Graph::new();
        let x = g.leaf(xt);
        let gamma = g.leaf(Tensor::ones(&[8]));
        let beta = g.leaf(Tensor::zeros(&[8]));
        let (y, stats) = g.batch_norm1d(x, gamma, beta, 1e-5);
        let out = g.value(y);
        let m = out.column_mean();
        let v = out.column_var(&m);
        for &mv in m.data() {
            assert!(mv.abs() < 1e-4, "mean {mv}");
        }
        for &vv in v.data() {
            assert!((vv - 1.0).abs() < 1e-2, "var {vv}");
        }
        // Reported stats describe the *input* batch.
        assert!(stats.mean.data().iter().all(|&x| (x - 5.0).abs() < 2.0));
    }

    #[test]
    fn bn2d_output_is_normalized_per_channel() {
        let mut rng = Rng::seed_from_u64(52);
        let xt = Tensor::randn(&[8, 3, 4, 4], 2.0, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(xt);
        let gamma = g.leaf(Tensor::ones(&[3]));
        let beta = g.leaf(Tensor::zeros(&[3]));
        let (y, _) = g.batch_norm2d(x, gamma, beta, 1e-5);
        let out = g.value(y);
        let m = out.channel_mean();
        let v = out.channel_var(&m);
        for &mv in m.data() {
            assert!(mv.abs() < 1e-4);
        }
        for &vv in v.data() {
            assert!((vv - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn gamma_beta_affine_transform() {
        let mut rng = Rng::seed_from_u64(53);
        let xt = Tensor::randn(&[32, 4], 1.0, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(xt);
        let gamma = g.leaf(Tensor::full(&[4], 2.0));
        let beta = g.leaf(Tensor::full(&[4], -1.0));
        let (y, _) = g.batch_norm1d(x, gamma, beta, 1e-5);
        let out = g.value(y);
        let m = out.column_mean();
        let v = out.column_var(&m);
        for &mv in m.data() {
            assert!((mv + 1.0).abs() < 1e-4, "mean should be beta, got {mv}");
        }
        for &vv in v.data() {
            assert!((vv - 4.0).abs() < 0.05, "var should be gamma², got {vv}");
        }
    }

    #[test]
    fn bn_grad_sums_to_zero_per_channel() {
        // The BN input gradient is mean-free per channel by construction.
        let mut rng = Rng::seed_from_u64(54);
        let xt = Tensor::randn(&[16, 3], 1.0, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(xt);
        let gamma = g.leaf(Tensor::ones(&[3]));
        let beta = g.leaf(Tensor::zeros(&[3]));
        let (y, _) = g.batch_norm1d(x, gamma, beta, 1e-5);
        // Arbitrary downstream: sum of squares.
        let y2 = g.mul(y, y);
        let s = g.sum(y2);
        g.backward(s);
        let gx = g.grad(x).unwrap();
        let col_sums = gx.sum_rows();
        for &cs in col_sums.data() {
            assert!(cs.abs() < 1e-3, "per-channel grad sum {cs}");
        }
    }

    #[test]
    fn inference_mode_uses_given_stats() {
        let xt = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let mean = Tensor::from_vec(vec![2.0, 3.0], &[2]);
        let var = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let mut g = Graph::new();
        let x = g.leaf(xt);
        let gamma = g.leaf(Tensor::ones(&[2]));
        let beta = g.leaf(Tensor::zeros(&[2]));
        let y = g.batch_norm_inference(x, gamma, beta, &mean, &var, 0.0);
        assert_close(g.value(y), &Tensor::from_vec(vec![-1., -1., 1., 1.], &[2, 2]), 1e-5);
    }
}
