//! Shape-manipulating ops and reductions: reshape, concat, slice, sum, mean.

use crate::graph::{BackwardOp, Ctx, Var};
use crate::Graph;
use lcasgd_tensor::Tensor;

struct ReshapeBack {
    x: Var,
    in_dims: Vec<usize>,
}
impl BackwardOp for ReshapeBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        ctx.accumulate(self.x, ctx.grad.reshaped(&self.in_dims));
    }
}

/// Concatenation of two rank-2 tensors along the column axis.
struct ConcatColsBack {
    a: Var,
    b: Var,
    na: usize,
    nb: usize,
}
impl BackwardOp for ConcatColsBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let rows = ctx.grad.dims()[0];
        let n = self.na + self.nb;
        let mut ga = Tensor::zeros(&[rows, self.na]);
        let mut gb = Tensor::zeros(&[rows, self.nb]);
        let src = ctx.grad.data();
        for r in 0..rows {
            ga.data_mut()[r * self.na..(r + 1) * self.na]
                .copy_from_slice(&src[r * n..r * n + self.na]);
            gb.data_mut()[r * self.nb..(r + 1) * self.nb]
                .copy_from_slice(&src[r * n + self.na..(r + 1) * n]);
        }
        ctx.accumulate(self.a, ga);
        ctx.accumulate(self.b, gb);
    }
}

struct SliceColsBack {
    x: Var,
    start: usize,
    in_cols: usize,
}
impl BackwardOp for SliceColsBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let rows = ctx.grad.dims()[0];
        let len = ctx.grad.dims()[1];
        let mut gx = Tensor::zeros(&[rows, self.in_cols]);
        let src = ctx.grad.data();
        for r in 0..rows {
            gx.data_mut()[r * self.in_cols + self.start..r * self.in_cols + self.start + len]
                .copy_from_slice(&src[r * len..(r + 1) * len]);
        }
        ctx.accumulate(self.x, gx);
    }
}

struct SumBack {
    x: Var,
    in_dims: Vec<usize>,
}
impl BackwardOp for SumBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        ctx.accumulate(self.x, Tensor::full(&self.in_dims, ctx.grad.item()));
    }
}

struct MeanBack {
    x: Var,
    in_dims: Vec<usize>,
}
impl BackwardOp for MeanBack {
    fn backward(&self, ctx: &mut Ctx<'_>) {
        let n: usize = self.in_dims.iter().product();
        ctx.accumulate(self.x, Tensor::full(&self.in_dims, ctx.grad.item() / n.max(1) as f32));
    }
}

impl Graph {
    /// Reshape to an equal-element-count shape.
    pub fn reshape(&mut self, x: Var, dims: &[usize]) -> Var {
        let in_dims = self.value(x).dims().to_vec();
        let v = self.value(x).reshaped(dims);
        self.push(v, Some(Box::new(ReshapeBack { x, in_dims })))
    }

    /// Concatenates `[b, na]` and `[b, nb]` into `[b, na+nb]`. The LSTM cell
    /// uses this to join `x_t` with `h_{t-1}`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape().rank(), 2, "concat_cols lhs rank");
        assert_eq!(tb.shape().rank(), 2, "concat_cols rhs rank");
        assert_eq!(ta.dims()[0], tb.dims()[0], "concat_cols row mismatch");
        let (rows, na, nb) = (ta.dims()[0], ta.dims()[1], tb.dims()[1]);
        let mut out = Tensor::zeros(&[rows, na + nb]);
        for r in 0..rows {
            out.data_mut()[r * (na + nb)..r * (na + nb) + na]
                .copy_from_slice(&ta.data()[r * na..(r + 1) * na]);
            out.data_mut()[r * (na + nb) + na..(r + 1) * (na + nb)]
                .copy_from_slice(&tb.data()[r * nb..(r + 1) * nb]);
        }
        self.push(out, Some(Box::new(ConcatColsBack { a, b, na, nb })))
    }

    /// Extracts columns `[start, start+len)` of a rank-2 tensor. The LSTM
    /// cell uses this to split the packed gate pre-activations.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let t = self.value(x);
        assert_eq!(t.shape().rank(), 2, "slice_cols rank");
        let (rows, cols) = (t.dims()[0], t.dims()[1]);
        assert!(start + len <= cols, "slice_cols out of range");
        let mut out = Tensor::zeros(&[rows, len]);
        for r in 0..rows {
            out.data_mut()[r * len..(r + 1) * len]
                .copy_from_slice(&t.data()[r * cols + start..r * cols + start + len]);
        }
        self.push(out, Some(Box::new(SliceColsBack { x, start, in_cols: cols })))
    }

    /// Sum of all elements (scalar output).
    pub fn sum(&mut self, x: Var) -> Var {
        let in_dims = self.value(x).dims().to_vec();
        let v = Tensor::scalar(self.value(x).sum());
        self.push(v, Some(Box::new(SumBack { x, in_dims })))
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&mut self, x: Var) -> Var {
        let in_dims = self.value(x).dims().to_vec();
        let v = Tensor::scalar(self.value(x).mean());
        self.push(v, Some(Box::new(MeanBack { x, in_dims })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_grad_restores_shape() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[2, 3]));
        let y = g.reshape(x, &[6]);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().dims(), &[2, 3]);
    }

    #[test]
    fn concat_then_slice_roundtrip_grads() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]));
        let b = g.leaf(Tensor::from_vec(vec![5., 6.], &[2, 1]));
        let c = g.concat_cols(a, b);
        assert_eq!(g.value(c).data(), &[1., 2., 5., 3., 4., 6.]);
        // Take only the b-part: gradient should hit b with ones, a with zeros.
        let sl = g.slice_cols(c, 2, 1);
        let s = g.sum(sl);
        g.backward(s);
        assert_eq!(g.grad(b).unwrap().data(), &[1., 1.]);
        assert_eq!(g.grad(a).unwrap().data(), &[0., 0., 0., 0.]);
    }

    #[test]
    fn mean_grad_is_uniform() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1., 2., 3., 4.], &[4]));
        let m = g.mean(x);
        g.backward(m);
        assert_eq!(g.grad(x).unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn sum_vs_mean_scaling() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[5]));
        let s = g.sum(x);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().data(), &[1.0; 5]);
    }

    #[test]
    #[should_panic(expected = "slice_cols out of range")]
    fn slice_out_of_range_panics() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[2, 3]));
        let _ = g.slice_cols(x, 2, 2);
    }
}
