//! Weight initialization schemes.

use crate::rng::Rng;
use crate::tensor::Tensor;

impl Tensor {
    /// Standard normal entries scaled by `std`.
    pub fn randn(dims: &[usize], std: f32, rng: &mut Rng) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| (rng.normal() as f32) * std).collect(), dims)
    }

    /// Uniform entries in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec(
            (0..n).map(|_| rng.uniform_range(lo as f64, hi as f64) as f32).collect(),
            dims,
        )
    }
}

/// Kaiming/He normal initialization for a layer with the given fan-in —
/// the scheme ResNet uses for conv/linear weights feeding ReLUs.
pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f64).sqrt() as f32;
    Tensor::randn(dims, std, rng)
}

/// Xavier/Glorot uniform initialization — used for the LSTM predictors,
/// whose gates feed sigmoids/tanh.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt() as f32;
    Tensor::rand_uniform(dims, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_normal_std_is_calibrated() {
        let mut rng = Rng::seed_from_u64(21);
        let t = he_normal(&[200, 200], 200, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / t.numel() as f32;
        let expect = 2.0 / 200.0;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var - expect).abs() < 0.2 * expect, "var {var} vs {expect}");
    }

    #[test]
    fn xavier_uniform_bound() {
        let mut rng = Rng::seed_from_u64(22);
        let t = xavier_uniform(&[64, 64], 64, 64, &mut rng);
        let bound = (6.0f32 / 128.0).sqrt();
        assert!(t.max_value() <= bound && t.min_value() >= -bound);
        // Should actually fill a good part of the range.
        assert!(t.max_value() > bound * 0.8);
    }

    #[test]
    fn randn_deterministic_with_seed() {
        let mut a = Rng::seed_from_u64(5);
        let mut b = Rng::seed_from_u64(5);
        assert_eq!(Tensor::randn(&[10], 1.0, &mut a), Tensor::randn(&[10], 1.0, &mut b));
    }
}
