//! The dense `f32` tensor type.

use crate::shape::Shape;
use std::fmt;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// All operations that produce a new tensor allocate exactly once; in-place
/// variants (`*_inplace`, `add_assign_*`) exist for the optimizer and
/// parameter-server hot paths.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ---------------------------------------------------------- constructors

    /// Builds a tensor from a flat row-major buffer. Panics if the buffer
    /// length does not match the shape.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![0.0; shape.numel()], shape }
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![value; shape.numel()], shape }
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], shape: Shape::scalar() }
    }

    /// The `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Zeros with the same shape as `other`.
    pub fn zeros_like(other: &Tensor) -> Self {
        Tensor { data: vec![0.0; other.numel()], shape: other.shape.clone() }
    }

    // ---------------------------------------------------------- accessors

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable value at a multi-index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// The single value of a scalar or 1-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor with {} elements", self.numel());
        self.data[0]
    }

    // ---------------------------------------------------------- reshaping

    /// Returns a tensor with the same buffer and a new shape of equal
    /// element count. O(1) move, no copy of the data on owned receivers.
    pub fn reshape(mut self, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(shape.numel(), self.numel(), "reshape {:?} -> {:?}", self.shape, shape);
        self.shape = shape;
        self
    }

    /// Like [`reshape`](Self::reshape) but clones the buffer.
    pub fn reshaped(&self, dims: &[usize]) -> Self {
        self.clone().reshape(dims)
    }

    /// Transposes a rank-2 tensor.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2d on rank {}", self.shape.rank());
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        // Blocked transpose for cache friendliness on the larger matrices.
        const B: usize = 32;
        for ib in (0..m).step_by(B) {
            for jb in (0..n).step_by(B) {
                for i in ib..(ib + B).min(m) {
                    for j in jb..(jb + B).min(n) {
                        out[j * m + i] = self.data[i * n + j];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Copies row `i` of a rank-≥1 tensor (the slice along the first
    /// dimension) into a new tensor of rank `rank-1`.
    pub fn index_first(&self, i: usize) -> Tensor {
        assert!(self.shape.rank() >= 1);
        let row = self.shape.numel() / self.shape.dim(0);
        assert!(i < self.shape.dim(0), "row {i} out of {}", self.shape.dim(0));
        let data = self.data[i * row..(i + 1) * row].to_vec();
        Tensor::from_vec(data, &self.shape.dims()[1..])
    }

    /// Stacks rank-`r` tensors of identical shape into a rank-`r+1` tensor.
    pub fn stack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack of zero tensors");
        let inner = parts[0].shape.clone();
        let mut data = Vec::with_capacity(parts.len() * inner.numel());
        for p in parts {
            assert_eq!(p.shape, inner, "stack shape mismatch");
            data.extend_from_slice(&p.data);
        }
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(inner.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Selects the given rows (first-dimension slices), producing a tensor
    /// with first dimension `rows.len()`.
    pub fn gather_rows(&self, rows: &[usize]) -> Tensor {
        assert!(self.shape.rank() >= 1);
        let row = self.shape.numel() / self.shape.dim(0).max(1);
        let mut data = Vec::with_capacity(rows.len() * row);
        for &r in rows {
            assert!(r < self.shape.dim(0), "row {r} out of {}", self.shape.dim(0));
            data.extend_from_slice(&self.data[r * row..(r + 1) * row]);
        }
        let mut dims = self.shape.dims().to_vec();
        dims[0] = rows.len();
        Tensor::from_vec(data, &dims)
    }

    // ---------------------------------------------------------- diagnostics

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Elementwise approximate equality.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol + tol * a.abs().max(b.abs()))
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| (*x as f64) * (*x as f64)).sum::<f64>().sqrt() as f32
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{} elements, norm {:.4}]", self.numel(), self.norm())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.dims(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_len_mismatch_panics() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn eye_matmul_identity_property() {
        let t = Tensor::eye(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(t.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let r = t.clone().reshape(&[4, 6]);
        assert_eq!(r.dims(), &[4, 6]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_vec((0..70).map(|x| x as f32 * 0.5).collect(), &[7, 10]);
        let tt = t.transpose2d().transpose2d();
        assert_eq!(tt, t);
    }

    #[test]
    fn transpose_values() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let tt = t.transpose2d();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), 6.0);
        assert_eq!(tt.at(&[0, 1]), 4.0);
    }

    #[test]
    fn stack_and_index_first_inverse() {
        let a = Tensor::from_vec(vec![1., 2.], &[2]);
        let b = Tensor::from_vec(vec![3., 4.], &[2]);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.index_first(0), a);
        assert_eq!(s.index_first(1), b);
    }

    #[test]
    fn gather_rows_selects() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let g = t.gather_rows(&[3, 1]);
        assert_eq!(g.dims(), &[2, 3]);
        assert_eq!(g.data(), &[9., 10., 11., 3., 4., 5.]);
    }

    #[test]
    fn norm_matches_manual() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut t = Tensor::ones(&[3]);
        assert!(t.is_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.is_finite());
    }
}
