//! Deterministic random number generation.
//!
//! Every stochastic component in the reproduction (weight init, data
//! generation, batch shuffling, simulated jitter) draws from a seeded
//! [`Rng`] so that experiments replay bit-identically. The generator is
//! `rand`'s `StdRng` behind a small façade that adds the distributions we
//! need (normal via Box–Muller, lognormal, exponential) without pulling in
//! `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Seeded random number generator used throughout the workspace.
pub struct Rng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { inner: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// Derives an independent child generator. Used to hand each simulated
    /// worker / dataset split its own stream so that adding workers does not
    /// perturb the draws of existing ones.
    pub fn fork(&mut self, salt: u64) -> Rng {
        let s = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::seed_from_u64(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Standard normal via Box–Muller (cached pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Lognormal: `exp(N(mu, sigma))`. Used for compute-time jitter, which
    /// is right-skewed in real clusters.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential with the given rate (`1/mean`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0);
        -self.uniform().max(f64::MIN_POSITIVE).ln() / rate
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Raw 64-bit output (for hashing/forking purposes).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_are_independent_of_sibling_consumption() {
        // Forking with the same salts after identical parent state yields
        // identical children, regardless of what the children then consume.
        let mut p1 = Rng::seed_from_u64(9);
        let mut p2 = Rng::seed_from_u64(9);
        let mut c1 = p1.fork(1);
        let mut d1 = p1.fork(2);
        let mut c2 = p2.fork(1);
        let mut d2 = p2.fork(2);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_eq!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(42);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            let r = rng.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&r));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely identity");
    }

    #[test]
    fn exponential_positive_mean() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(rng.lognormal(0.0, 0.5) > 0.0);
        }
    }
}
