//! Tensor shapes: a thin, validated wrapper around a dimension list.

use std::fmt;

/// The shape (dimension sizes) of a tensor. Row-major, outermost first.
///
/// Rank 0 (scalars) is represented by an empty dimension list and has
/// `numel() == 1`, matching the convention of the major frameworks.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Builds a shape from a dimension slice.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// A rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `i` (supports negative-from-end via `dim_from_end`).
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Size of the `i`-th dimension counting from the end (0 = last).
    pub fn dim_from_end(&self, i: usize) -> usize {
        self.0[self.0.len() - 1 - i]
    }

    /// Row-major strides for this shape (innermost stride is 1).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat (row-major) offset of a multi-index. Panics on out-of-range
    /// indices in debug builds.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for (i, (&ix, &d)) in index.iter().zip(&self.0).enumerate().rev() {
            debug_assert!(ix < d, "index {ix} out of range for dim {i} of size {d}");
            off += ix * stride;
            stride *= d;
            let _ = i;
        }
        off
    }

    /// Whether two shapes can be used in a leading-dimension broadcast:
    /// `other` equals `self` with the first dimension removed (e.g. adding a
    /// `[n]` bias to every row of a `[b, n]` matrix).
    pub fn broadcasts_rows(&self, other: &Shape) -> bool {
        self.rank() >= 1 && self.0[1..] == other.0[..]
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[1, 0, 2]), 14);
    }

    #[test]
    fn broadcast_rows_rule() {
        let m = Shape::new(&[8, 5]);
        let v = Shape::new(&[5]);
        assert!(m.broadcasts_rows(&v));
        assert!(!v.broadcasts_rows(&m));
        assert!(!m.broadcasts_rows(&Shape::new(&[4])));
        // 4D activation + per-feature map broadcast is not row broadcast.
        let act = Shape::new(&[2, 3, 4, 4]);
        assert!(act.broadcasts_rows(&Shape::new(&[3, 4, 4])));
    }

    #[test]
    fn zero_sized_dims() {
        let s = Shape::new(&[0, 4]);
        assert_eq!(s.numel(), 0);
    }
}
