//! # lcasgd-tensor
//!
//! Dense, contiguous, row-major `f32` tensors with the operation set needed
//! by the LC-ASGD reproduction: elementwise arithmetic, rayon-parallel
//! blocked matrix multiplication, reductions, and im2col-based convolution
//! helpers.
//!
//! The crate is deliberately small and predictable rather than general:
//! every tensor is contiguous and owns its storage, so there are no stride
//! or aliasing surprises in the hot paths. Parallelism is applied only above
//! a size threshold ([`ops::PAR_THRESHOLD`]) so tiny tensors (e.g. the LSTM
//! predictors' hidden states) never pay rayon dispatch overhead.
//!
//! ```
//! use lcasgd_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod init;
pub mod ops;
pub mod rng;
pub mod shape;
#[allow(clippy::module_inception)]
pub mod tensor;

pub use rng::Rng;
pub use shape::Shape;
pub use tensor::Tensor;

/// Absolute tolerance used by [`Tensor::allclose`] and the test helpers.
pub const DEFAULT_ATOL: f32 = 1e-5;

/// Asserts two tensors are elementwise close; panics with the first
/// offending index on failure. Intended for tests.
pub fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
    assert_eq!(a.shape(), b.shape(), "shape mismatch: {:?} vs {:?}", a.shape(), b.shape());
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!(
            (x - y).abs() <= tol + tol * x.abs().max(y.abs()),
            "mismatch at flat index {i}: {x} vs {y} (tol {tol})"
        );
    }
}
