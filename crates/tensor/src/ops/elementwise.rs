//! Elementwise arithmetic, activation maps and in-place updates.

use super::PAR_THRESHOLD;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Applies `f` to every element, in parallel above [`PAR_THRESHOLD`].
fn map_unary(t: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let mut out = t.clone();
    map_unary_inplace(&mut out, f);
    out
}

fn map_unary_inplace(t: &mut Tensor, f: impl Fn(f32) -> f32 + Sync) {
    if t.numel() >= PAR_THRESHOLD {
        t.data_mut().par_iter_mut().for_each(|x| *x = f(*x));
    } else {
        t.data_mut().iter_mut().for_each(|x| *x = f(*x));
    }
}

fn zip_binary(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    assert_eq!(
        a.shape(),
        b.shape(),
        "elementwise shape mismatch: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let mut out = a.clone();
    if out.numel() >= PAR_THRESHOLD {
        out.data_mut().par_iter_mut().zip(b.data().par_iter()).for_each(|(x, &y)| *x = f(*x, y));
    } else {
        out.data_mut().iter_mut().zip(b.data()).for_each(|(x, &y)| *x = f(*x, y));
    }
    out
}

impl Tensor {
    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        zip_binary(self, other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        zip_binary(self, other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product — the `⊗` of DC-ASGD's Formula 3.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        zip_binary(self, other, |a, b| a * b)
    }

    /// Elementwise quotient.
    pub fn div(&self, other: &Tensor) -> Tensor {
        zip_binary(self, other, |a, b| a / b)
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        map_unary(self, |x| x + s)
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        map_unary(self, |x| x * s)
    }

    /// In-place scale.
    pub fn scale_inplace(&mut self, s: f32) {
        map_unary_inplace(self, |x| x * s);
    }

    /// `self += alpha * other`, the axpy kernel at the heart of every SGD
    /// update in the workspace.
    pub fn add_assign_scaled(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        if self.numel() >= PAR_THRESHOLD {
            self.data_mut()
                .par_iter_mut()
                .zip(other.data().par_iter())
                .for_each(|(x, &y)| *x += alpha * y);
        } else {
            self.data_mut().iter_mut().zip(other.data()).for_each(|(x, &y)| *x += alpha * y);
        }
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.add_assign_scaled(other, 1.0);
    }

    /// Fused `self = a·self + b·other` — one pass over both buffers instead
    /// of a `scale_inplace` followed by an `add_assign_scaled`. Used for the
    /// exponential-moving-average updates of BN running statistics
    /// (`a = 1−momentum, b = momentum`). Per-element arithmetic is identical
    /// to the two-pass form (`x·a` then `+ b·y`), so results are bitwise
    /// equal to the unfused sequence.
    pub fn scale_add_inplace(&mut self, a: f32, other: &Tensor, b: f32) {
        assert_eq!(self.shape(), other.shape(), "scale_add shape mismatch");
        if self.numel() >= PAR_THRESHOLD {
            self.data_mut()
                .par_iter_mut()
                .zip(other.data().par_iter())
                .for_each(|(x, &y)| *x = *x * a + b * y);
        } else {
            self.data_mut().iter_mut().zip(other.data()).for_each(|(x, &y)| *x = *x * a + b * y);
        }
    }

    /// Elementwise `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        map_unary(self, |x| x.max(0.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        map_unary(self, |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Hyperbolic tangent.
    pub fn tanh_map(&self) -> Tensor {
        map_unary(self, |x| x.tanh())
    }

    /// Natural exponential.
    pub fn exp_map(&self) -> Tensor {
        map_unary(self, |x| x.exp())
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        map_unary(self, |x| x * x)
    }

    /// Elementwise square root.
    pub fn sqrt_map(&self) -> Tensor {
        map_unary(self, |x| x.sqrt())
    }

    /// Elementwise absolute value.
    pub fn abs_map(&self) -> Tensor {
        map_unary(self, |x| x.abs())
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp_map(&self, lo: f32, hi: f32) -> Tensor {
        map_unary(self, |x| x.clamp(lo, hi))
    }

    /// Adds `bias` (shape = trailing dims of `self`) to every slice along
    /// the first dimension: `[b, n] + [n]`, `[b, c, h, w] + [c, h, w]`.
    pub fn add_rows(&self, bias: &Tensor) -> Tensor {
        assert!(
            self.shape().broadcasts_rows(bias.shape()),
            "add_rows: {:?} cannot broadcast {:?}",
            self.shape(),
            bias.shape()
        );
        let row = bias.numel();
        let mut out = self.clone();
        let bd = bias.data();
        if out.numel() >= PAR_THRESHOLD {
            out.data_mut().par_chunks_mut(row).for_each(|chunk| {
                for (x, &b) in chunk.iter_mut().zip(bd) {
                    *x += b;
                }
            });
        } else {
            for chunk in out.data_mut().chunks_mut(row) {
                for (x, &b) in chunk.iter_mut().zip(bd) {
                    *x += b;
                }
            }
        }
        out
    }

    /// Adds a per-channel bias to a `[n, c, h, w]` activation (`bias` has
    /// shape `[c]`). Complements [`add_rows`](Self::add_rows) for conv
    /// layers where the bias does not span the spatial dims.
    pub fn add_channels(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 4, "add_channels expects NCHW");
        let (n, c, h, w) = (self.dims()[0], self.dims()[1], self.dims()[2], self.dims()[3]);
        assert_eq!(bias.dims(), &[c], "channel bias shape");
        let hw = h * w;
        let mut out = self.clone();
        let bd = bias.data();
        out.data_mut().chunks_mut(c * hw).for_each(|img| {
            for ch in 0..c {
                let b = bd[ch];
                for x in &mut img[ch * hw..(ch + 1) * hw] {
                    *x += b;
                }
            }
        });
        let _ = n;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn add_sub_roundtrip() {
        let a = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        let b = Tensor::from_vec(vec![0.5, -1., 2.], &[3]);
        assert_close(&a.add(&b).sub(&b), &a, 1e-6);
    }

    #[test]
    fn hadamard_matches_manual() {
        let a = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        let b = Tensor::from_vec(vec![4., 5., 6.], &[3]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
    }

    #[test]
    #[should_panic(expected = "elementwise shape mismatch")]
    fn mismatched_shapes_panic() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn axpy_matches_formula() {
        let mut w = Tensor::from_vec(vec![1., 1.], &[2]);
        let g = Tensor::from_vec(vec![2., 4.], &[2]);
        w.add_assign_scaled(&g, -0.5);
        assert_eq!(w.data(), &[0., -1.]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(vec![-1., 0., 2.], &[3]);
        assert_eq!(t.relu().data(), &[0., 0., 2.]);
    }

    #[test]
    fn sigmoid_symmetry() {
        let t = Tensor::from_vec(vec![-3., 0., 3.], &[3]);
        let s = t.sigmoid();
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!((s.data()[0] + s.data()[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn add_rows_broadcasts() {
        let m = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let v = Tensor::from_vec(vec![10., 20.], &[2]);
        assert_eq!(m.add_rows(&v).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn add_channels_per_feature_map() {
        // [1, 2, 1, 2] activation, channel bias [100, 200]
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 2, 1, 2]);
        let b = Tensor::from_vec(vec![100., 200.], &[2]);
        assert_eq!(a.add_channels(&b).data(), &[101., 102., 203., 204.]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Exceed PAR_THRESHOLD to exercise the rayon branch.
        let n = super::PAR_THRESHOLD + 17;
        let a = Tensor::from_vec((0..n).map(|i| i as f32 * 0.001).collect(), &[n]);
        let serial: Vec<f32> = a.data().iter().map(|x| x.max(0.0) + 1.0).collect();
        let par = a.relu().add_scalar(1.0);
        assert_eq!(par.data(), &serial[..]);
    }

    #[test]
    fn fused_ema_bitwise_equals_two_pass() {
        let n = super::PAR_THRESHOLD + 3; // cover the parallel branch too
        let dst = Tensor::from_vec((0..n).map(|i| (i as f32).sin()).collect(), &[n]);
        let src = Tensor::from_vec((0..n).map(|i| (i as f32).cos()).collect(), &[n]);
        let momentum = 0.1f32;
        let mut fused = dst.clone();
        fused.scale_add_inplace(1.0 - momentum, &src, momentum);
        let two_pass = crate::ops::reference::ema_ref(&dst, &src, momentum);
        assert_eq!(fused.data(), two_pass.data());
    }

    #[test]
    fn clamp_bounds() {
        let t = Tensor::from_vec(vec![-5., 0.5, 5.], &[3]);
        assert_eq!(t.clamp_map(-1., 1.).data(), &[-1., 0.5, 1.]);
    }
}
