//! Deliberately-naive reference kernels for differential testing.
//!
//! These are the "obviously correct" textbook loops — serial, unblocked,
//! unpacked — that the optimized kernels are checked against in
//! `tests/kernel_differential.rs`. They are compiled only for test builds
//! and under the `reference-kernels` feature, so they can never end up on
//! a hot path by accident. Do not optimize them: their value is that a
//! reader can verify them by inspection.

use super::conv::Conv2dSpec;
use crate::tensor::Tensor;

/// Triple-loop `[m, k] × [k, n]` matrix product.
pub fn matmul_ref(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_ref inner dims");
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a.at(&[i, l]) * b.at(&[l, j]);
            }
            *out.at_mut(&[i, j]) = acc;
        }
    }
    out
}

/// `aᵀ × b` with `a: [k, m]`, `b: [k, n]`, via explicit indexing.
pub fn matmul_tn_ref(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn_ref inner dims");
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a.at(&[l, i]) * b.at(&[l, j]);
            }
            *out.at_mut(&[i, j]) = acc;
        }
    }
    out
}

/// `a × bᵀ` with `a: [m, k]`, `b: [n, k]`, via explicit indexing.
pub fn matmul_nt_ref(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt_ref inner dims");
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a.at(&[i, l]) * b.at(&[j, l]);
            }
            *out.at_mut(&[i, j]) = acc;
        }
    }
    out
}

/// Seven-loop direct convolution: `input` NCHW, `weight`
/// `[cout, cin, k, k]`, zero padding.
pub fn conv2d_ref(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    assert_eq!(c, spec.in_channels, "conv2d_ref channel mismatch");
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
    for img in 0..n {
        for co in 0..spec.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    acc += input.at(&[img, ci, iy as usize, ix as usize])
                                        * weight.at(&[co, ci, ky, kx]);
                                }
                            }
                        }
                    }
                    *out.at_mut(&[img, co, oy, ox]) = acc;
                }
            }
        }
    }
    out
}

/// Weight gradient of [`conv2d_ref`]: `dW[co, ci, ky, kx] = Σ dY · x`.
pub fn conv2d_dw_ref(dy: &Tensor, input: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    assert_eq!(dy.dims(), &[n, spec.out_channels, oh, ow], "conv2d_dw_ref dy shape");
    let mut dw = Tensor::zeros(&[spec.out_channels, c, k, k]);
    for img in 0..n {
        for co in 0..spec.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dy.at(&[img, co, oy, ox]);
                    for ci in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    *dw.at_mut(&[co, ci, ky, kx]) +=
                                        g * input.at(&[img, ci, iy as usize, ix as usize]);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    dw
}

/// Input gradient of [`conv2d_ref`]: the transposed convolution of `dy`
/// with `weight`.
pub fn conv2d_dx_ref(
    dy: &Tensor,
    weight: &Tensor,
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
) -> Tensor {
    let n = dy.dims()[0];
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(dy.dims(), &[n, spec.out_channels, oh, ow], "conv2d_dx_ref dy shape");
    let k = spec.kernel;
    let mut dx = Tensor::zeros(&[n, spec.in_channels, h, w]);
    for img in 0..n {
        for co in 0..spec.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dy.at(&[img, co, oy, ox]);
                    for ci in 0..spec.in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    *dx.at_mut(&[img, ci, iy as usize, ix as usize]) +=
                                        g * weight.at(&[co, ci, ky, kx]);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Single-loop f32 sum (no f64 widening, no blocking) — the reduction the
/// optimized `sum_rows`/EMA kernels are compared against.
pub fn sum_rows_ref(t: &Tensor) -> Tensor {
    let b = t.dims()[0];
    let row = t.numel() / b.max(1);
    let mut out = Tensor::zeros(&t.dims()[1..]);
    for i in 0..b {
        for j in 0..row {
            out.data_mut()[j] += t.data()[i * row + j];
        }
    }
    out
}

/// Two-pass (unfused) EMA update: `dst = (1−m)·dst`, then `dst += m·src`.
/// Reference for the fused `scale_add_inplace` kernel.
pub fn ema_ref(dst: &Tensor, src: &Tensor, momentum: f32) -> Tensor {
    let mut out = dst.clone();
    out.scale_inplace(1.0 - momentum);
    out.add_assign_scaled(src, momentum);
    out
}
