//! Central tuning knobs for kernel dispatch and cache blocking.
//!
//! Every size threshold that decides *how* a kernel runs (serial fast path
//! vs packed/blocked vs rayon-parallel) lives here, so the matmul, conv and
//! elementwise kernels agree on one set of numbers instead of each carrying
//! a private copy. The values are sized for a generic x86-64 cache
//! hierarchy (32 KiB L1d, 256 KiB–1 MiB L2) and for this workspace's two
//! extremes: the LSTM predictors' tiny `[1, h] × [h, 4h]` products, which
//! must never pay packing or thread-dispatch overhead, and the ResNet conv
//! GEMMs, which are large enough that cache misses dominate.
//!
//! Changing a blocking parameter cannot change results across thread
//! counts: parallel kernels split only the output-row dimension, and a
//! single output element is always accumulated in the same order (see
//! DESIGN.md §8).

/// Minimum element count before an elementwise op dispatches to rayon.
/// Below this, the rayon fork/join overhead dwarfs the arithmetic (the LSTM
/// predictors operate on vectors of 64–128 floats).
pub const PAR_THRESHOLD: usize = 16 * 1024;

/// Rows-of-output threshold before a matmul dispatches to the thread pool.
/// A single LSTM predictor step multiplies `[1, h] × [h, 4h]`; those must
/// stay serial.
pub const PAR_ROWS: usize = 8;

/// Minimum total FLOPs (`m·n·k`) before a matmul parallelizes.
pub const PAR_FLOPS: usize = 1 << 18;

/// Minimum total FLOPs before a matmul takes the packed/blocked GEMM path.
/// Below this the panel-packing overhead is not amortized and the simple
/// serial kernel wins.
pub const GEMM_PACK_FLOPS: usize = 1 << 15;

/// Micro-kernel register tile height (rows of A per micro-panel). The
/// micro-kernel keeps an `MR × NR` f32 accumulator block in registers.
pub const MR: usize = 4;

/// Micro-kernel register tile width (columns of B per micro-panel).
/// Sixteen f32 lanes — two AVX `ymm` vectors per accumulator row, giving
/// the AVX2+FMA micro-kernel `MR × NR/8 = 8` independent accumulator
/// chains, enough to cover FMA latency at two issues per cycle. (With one
/// vector per row the kernel is latency-bound at half peak.)
pub const NR: usize = 16;

/// Rows of A packed per cache block (`MC × KC` panel, L2-resident).
/// Must be a multiple of [`MR`].
pub const MC: usize = 64;

/// Depth of one packed panel pair (shared k-extent of the A and B panels,
/// L1-friendly inner loop length).
pub const KC: usize = 256;

/// Columns of B packed per cache block (`KC × NC` panel). Must be a
/// multiple of [`NR`].
pub const NC: usize = 256;

const _: () = assert!(MC.is_multiple_of(MR), "MC must be a multiple of MR");
const _: () = assert!(NC.is_multiple_of(NR), "NC must be a multiple of NR");

/// Whether an `m × k · k × n` product should take the packed/blocked GEMM
/// path. Depends only on the shape — never on the thread count — so the
/// dispatch decision itself cannot break thread-count invariance.
pub fn use_packed_gemm(m: usize, n: usize, k: usize) -> bool {
    m >= MR && n >= NR && m * n * k >= GEMM_PACK_FLOPS
}

/// Number of threads an `m`-row GEMM should fan out to (1 = stay serial).
pub fn gemm_threads(m: usize, n: usize, k: usize) -> usize {
    if m >= PAR_ROWS && m * n * k >= PAR_FLOPS {
        rayon::current_num_threads().max(1)
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_matmuls_stay_serial_and_unpacked() {
        // The largest LSTM predictor gate product is [1, 128] × [128, 512];
        // it must never pay packing or thread-dispatch overhead.
        assert!(!use_packed_gemm(1, 512, 128));
        assert_eq!(gemm_threads(1, 512, 128), 1);
    }

    #[test]
    fn resnet_gemms_take_the_packed_path() {
        // Per-image CIFAR conv3x3 GEMM: cout=64, plen=576, oh·ow=1024.
        assert!(use_packed_gemm(64, 1024, 576));
    }

    #[test]
    fn blocking_fits_reasonable_caches() {
        // A panel (MC×KC) + B panel (KC×NC) in f32 stay under 1 MiB.
        const { assert!((MC * KC + KC * NC) * 4 <= 1 << 20) };
    }
}
