//! Reductions: sums, means, argmax, per-row and per-channel statistics.

use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements (f64 accumulation to bound drift on big tensors).
    pub fn sum(&self) -> f32 {
        self.data().iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        assert!(self.numel() > 0, "mean of empty tensor");
        self.sum() / self.numel() as f32
    }

    /// Maximum element.
    pub fn max_value(&self) -> f32 {
        self.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min_value(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sums a `[b, n]` matrix over the batch dimension to `[n]`.
    /// This is the reverse of [`add_rows`](Tensor::add_rows), used by bias
    /// gradients.
    pub fn sum_rows(&self) -> Tensor {
        assert!(self.shape().rank() >= 1, "sum_rows on scalar");
        let b = self.dims()[0];
        let row = self.numel() / b.max(1);
        let mut out = vec![0.0f32; row];
        for chunk in self.data().chunks_exact(row) {
            for (o, &x) in out.iter_mut().zip(chunk) {
                *o += x;
            }
        }
        Tensor::from_vec(out, &self.dims()[1..])
    }

    /// Per-row argmax of a `[b, n]` matrix: returns the index of the max
    /// element of each row. Used to turn logits into predicted classes.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape().rank(), 2, "argmax_rows expects rank 2");
        let n = self.dims()[1];
        self.data()
            .chunks_exact(n)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Per-channel mean of an NCHW activation: `[n, c, h, w] -> [c]`.
    /// The statistic BatchNorm normalizes with.
    pub fn channel_mean(&self) -> Tensor {
        let (n, c, h, w) = self.nchw();
        let count = (n * h * w).max(1) as f64;
        let hw = h * w;
        let mut out = vec![0.0f64; c];
        for img in self.data().chunks_exact(c * hw) {
            for (ch, o) in out.iter_mut().enumerate() {
                *o += img[ch * hw..(ch + 1) * hw].iter().map(|&x| x as f64).sum::<f64>();
            }
        }
        Tensor::from_vec(out.into_iter().map(|x| (x / count) as f32).collect(), &[c])
    }

    /// Per-channel (biased) variance of an NCHW activation given its mean.
    pub fn channel_var(&self, mean: &Tensor) -> Tensor {
        let (n, c, h, w) = self.nchw();
        assert_eq!(mean.dims(), &[c], "channel_var mean shape");
        let count = (n * h * w).max(1) as f64;
        let hw = h * w;
        let md = mean.data();
        let mut out = vec![0.0f64; c];
        for img in self.data().chunks_exact(c * hw) {
            for (ch, o) in out.iter_mut().enumerate() {
                let m = md[ch] as f64;
                *o += img[ch * hw..(ch + 1) * hw]
                    .iter()
                    .map(|&x| {
                        let d = x as f64 - m;
                        d * d
                    })
                    .sum::<f64>();
            }
        }
        Tensor::from_vec(out.into_iter().map(|x| (x / count) as f32).collect(), &[c])
    }

    /// Per-column mean of a `[b, n]` matrix: `-> [n]`. BatchNorm1d statistic.
    pub fn column_mean(&self) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "column_mean expects rank 2");
        let b = self.dims()[0].max(1);
        self.sum_rows().scale(1.0 / b as f32)
    }

    /// Per-column (biased) variance of a `[b, n]` matrix given its mean.
    pub fn column_var(&self, mean: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2);
        let (b, n) = (self.dims()[0], self.dims()[1]);
        assert_eq!(mean.dims(), &[n]);
        let md = mean.data();
        let mut out = vec![0.0f64; n];
        for row in self.data().chunks_exact(n) {
            for ((o, &x), &m) in out.iter_mut().zip(row).zip(md) {
                let d = x as f64 - m as f64;
                *o += d * d;
            }
        }
        Tensor::from_vec(out.into_iter().map(|x| (x / b.max(1) as f64) as f32).collect(), &[n])
    }

    fn nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.shape().rank(), 4, "expected NCHW, got {:?}", self.shape());
        (self.dims()[0], self.dims()[1], self.dims()[2], self.dims()[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn sum_mean_minmax() {
        let t = Tensor::from_vec(vec![1., -2., 3., 6.], &[4]);
        assert_eq!(t.sum(), 8.0);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.max_value(), 6.0);
        assert_eq!(t.min_value(), -2.0);
    }

    #[test]
    fn sum_rows_is_bias_grad_shape() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let s = t.sum_rows();
        assert_eq!(s.dims(), &[3]);
        assert_eq!(s.data(), &[5., 7., 9.]);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.3], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn channel_stats_match_manual() {
        // 2 images, 2 channels, 1x2 spatial.
        let t = Tensor::from_vec(vec![1., 3., 10., 10., 5., 7., 20., 20.], &[2, 2, 1, 2]);
        let m = t.channel_mean();
        assert_close(&m, &Tensor::from_vec(vec![4., 15.], &[2]), 1e-6);
        let v = t.channel_var(&m);
        // channel 0 values: 1,3,5,7 -> var 5; channel 1: 10,10,20,20 -> var 25
        assert_close(&v, &Tensor::from_vec(vec![5., 25.], &[2]), 1e-6);
    }

    #[test]
    fn column_stats_match_manual() {
        let t = Tensor::from_vec(vec![1., 10., 3., 20.], &[2, 2]);
        let m = t.column_mean();
        assert_close(&m, &Tensor::from_vec(vec![2., 15.], &[2]), 1e-6);
        let v = t.column_var(&m);
        assert_close(&v, &Tensor::from_vec(vec![1., 25.], &[2]), 1e-6);
    }

    #[test]
    fn variance_is_translation_invariant() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[3, 2]);
        let shifted = t.add_scalar(100.0);
        let v1 = t.column_var(&t.column_mean());
        let v2 = shifted.column_var(&shifted.column_mean());
        assert_close(&v1, &v2, 1e-3);
    }
}
