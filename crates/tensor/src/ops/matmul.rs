//! Matrix multiplication: packed/blocked GEMM for large products, simple
//! serial kernels for small ones.
//!
//! All three variants (`matmul`, `matmul_tn`, `matmul_nt`) dispatch on
//! shape alone (see [`tune`](super::tune)): products below
//! [`GEMM_PACK_FLOPS`](super::tune::GEMM_PACK_FLOPS) — notably the LSTM
//! predictors' `[1, h] × [h, 4h]` gate products — run a serial loop with no
//! packing or thread dispatch; everything larger goes through the shared
//! cache-blocked, register-tiled kernel in [`gemm`](super::gemm), which
//! handles transposed operands via strided packing instead of materialized
//! transposes and splits output rows across threads without changing
//! results (DESIGN.md §8).

use super::gemm::{gemm, MatRef};
use super::tune::{gemm_threads, use_packed_gemm};
use crate::tensor::Tensor;

fn matmul_rows_serial(out_rows: &mut [f32], a_rows: &[f32], b: &[f32], k: usize, n: usize) {
    // out[i, :] += a[i, k] * b[k, :]
    for (out_row, a_row) in out_rows.chunks_exact_mut(n).zip(a_rows.chunks_exact(k)) {
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..kk * n + n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
}

impl Tensor {
    /// `[m, k] × [k, n] -> [m, n]` matrix product.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "matmul lhs rank {}", self.shape().rank());
        assert_eq!(other.shape().rank(), 2, "matmul rhs rank {}", other.shape().rank());
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dims: [{m}, {k}] × [{k2}, {n}]");

        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = other.data();
        if use_packed_gemm(m, n, k) {
            gemm(
                out.data_mut(),
                m,
                n,
                k,
                MatRef::row_major(a, k),
                MatRef::row_major(b, n),
                gemm_threads(m, n, k),
            );
        } else {
            matmul_rows_serial(out.data_mut(), a, b, k, n);
        }
        out
    }

    /// `self.transpose() × other` without materializing the transpose:
    /// `[k, m]ᵀ × [k, n] -> [m, n]`. Used by linear-layer backward passes.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2);
        assert_eq!(other.shape().rank(), 2);
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn inner dims");
        let a = self.data();
        let b = other.data();
        let mut out = Tensor::zeros(&[m, n]);
        if use_packed_gemm(m, n, k) {
            gemm(
                out.data_mut(),
                m,
                n,
                k,
                MatRef::transposed(a, m),
                MatRef::row_major(b, n),
                gemm_threads(m, n, k),
            );
            return out;
        }
        // out[i, j] = sum_k a[k, i] * b[k, j]; accumulate k-major so both
        // reads stream sequentially.
        let od = out.data_mut();
        for kk in 0..k {
            let a_row = &a[kk * m..kk * m + m];
            let b_row = &b[kk * n..kk * n + n];
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let o = &mut od[i * n..i * n + n];
                for (ov, &bv) in o.iter_mut().zip(b_row) {
                    *ov += aki * bv;
                }
            }
        }
        out
    }

    /// `self × other.transpose()` without materializing the transpose:
    /// `[m, k] × [n, k]ᵀ -> [m, n]`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2);
        assert_eq!(other.shape().rank(), 2);
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt inner dims");
        let a = self.data();
        let b = other.data();
        let mut out = Tensor::zeros(&[m, n]);
        if use_packed_gemm(m, n, k) {
            gemm(
                out.data_mut(),
                m,
                n,
                k,
                MatRef::row_major(a, k),
                MatRef::transposed(b, k),
                gemm_threads(m, n, k),
            );
            return out;
        }
        for (i, out_row) in out.data_mut().chunks_mut(n).enumerate() {
            let a_row = &a[i * k..i * k + k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k..j * k + k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
        out
    }

    /// Matrix–vector product `[m, k] × [k] -> [m]`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2);
        assert_eq!(v.shape().rank(), 1);
        let (m, k) = (self.dims()[0], self.dims()[1]);
        assert_eq!(k, v.dims()[0], "matvec inner dims");
        let a = self.data();
        let x = v.data();
        let mut out = Tensor::zeros(&[m]);
        for (i, o) in out.data_mut().iter_mut().enumerate() {
            let row = &a[i * k..i * k + k];
            *o = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
        out
    }

    /// Dot product of two rank-1 tensors (f64 accumulation).
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot shape mismatch");
        self.data().iter().zip(other.data()).map(|(&a, &b)| a as f64 * b as f64).sum::<f64>() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::reference;
    use crate::{assert_close, Rng};

    fn random(dims: &[usize], rng: &mut Rng) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.normal() as f32).collect(), dims)
    }

    #[test]
    fn matches_naive_small() {
        let mut rng = Rng::seed_from_u64(1);
        let a = random(&[3, 5], &mut rng);
        let b = random(&[5, 4], &mut rng);
        assert_close(&a.matmul(&b), &reference::matmul_ref(&a, &b), 1e-4);
    }

    #[test]
    fn matches_naive_packed_path() {
        // Large enough to take the packed GEMM (and band-split) path.
        let mut rng = Rng::seed_from_u64(2);
        let a = random(&[96, 80], &mut rng);
        let b = random(&[80, 64], &mut rng);
        assert_close(&a.matmul(&b), &reference::matmul_ref(&a, &b), 1e-3);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from_u64(3);
        let a = random(&[6, 6], &mut rng);
        assert_close(&a.matmul(&Tensor::eye(6)), &a, 1e-5);
        assert_close(&Tensor::eye(6).matmul(&a), &a, 1e-5);
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(4);
        let a = random(&[7, 5], &mut rng);
        let b = random(&[7, 6], &mut rng);
        assert_close(&a.matmul_tn(&b), &a.transpose2d().matmul(&b), 1e-4);
    }

    #[test]
    fn tn_packed_equals_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(40);
        let a = random(&[70, 50], &mut rng);
        let b = random(&[70, 60], &mut rng);
        assert_close(&a.matmul_tn(&b), &a.transpose2d().matmul(&b), 1e-3);
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(5);
        let a = random(&[7, 5], &mut rng);
        let b = random(&[6, 5], &mut rng);
        assert_close(&a.matmul_nt(&b), &a.matmul(&b.transpose2d()), 1e-4);
    }

    #[test]
    fn nt_packed_equals_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(50);
        let a = random(&[70, 50], &mut rng);
        let b = random(&[60, 50], &mut rng);
        assert_close(&a.matmul_nt(&b), &a.matmul(&b.transpose2d()), 1e-3);
    }

    #[test]
    fn matvec_equals_matmul_column() {
        let mut rng = Rng::seed_from_u64(6);
        let a = random(&[4, 9], &mut rng);
        let v = random(&[9], &mut rng);
        let mv = a.matvec(&v);
        let mm = a.matmul(&v.reshaped(&[9, 1]));
        assert_close(&mv, &mm.reshape(&[4]), 1e-5);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn inner_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn dot_symmetry_and_norm() {
        let mut rng = Rng::seed_from_u64(7);
        let a = random(&[33], &mut rng);
        let b = random(&[33], &mut rng);
        assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-5);
        assert!((a.dot(&a).sqrt() - a.norm()).abs() < 1e-4);
    }
}
