//! Tensor operations, grouped by kind.
//!
//! Every op validates shapes eagerly (panicking with a descriptive message)
//! so that shape bugs surface at the op that caused them, not three layers
//! downstream in a backward pass.

pub mod conv;
pub mod elementwise;
pub mod matmul;
pub mod reduce;

/// Minimum element count before an elementwise op dispatches to rayon.
/// Below this, the rayon fork/join overhead dwarfs the arithmetic (the LSTM
/// predictors operate on vectors of 64–128 floats).
pub const PAR_THRESHOLD: usize = 16 * 1024;
