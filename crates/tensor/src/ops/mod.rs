//! Tensor operations, grouped by kind.
//!
//! Every op validates shapes eagerly (panicking with a descriptive message)
//! so that shape bugs surface at the op that caused them, not three layers
//! downstream in a backward pass.
//!
//! Dispatch thresholds and cache-blocking parameters are centralized in
//! [`tune`]; the packed GEMM kernel shared by the matmul variants and the
//! fused conv path lives in [`gemm`]. Deliberately-naive reference kernels
//! for differential testing live in [`reference`] (test builds and the
//! `reference-kernels` feature only).

pub mod conv;
pub mod elementwise;
pub mod gemm;
pub mod matmul;
pub mod reduce;
#[cfg(any(test, feature = "reference-kernels"))]
pub mod reference;
pub mod tune;

pub use tune::PAR_THRESHOLD;
