//! Convolution support: im2col / col2im lowering.
//!
//! `conv2d` is lowered to a single large matmul per batch:
//! `im2col(input) [n·oh·ow, cin·kh·kw] × weightᵀ [cin·kh·kw, cout]`, which
//! reuses the parallel matmul kernel instead of a bespoke conv loop. The
//! backward passes (in `lcasgd-autograd`) use `col2im` for the input
//! gradient and the transposed products for the weight gradient.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Static description of a 2-D convolution's geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dSpec {
    pub in_channels: usize,
    pub out_channels: usize,
    pub kernel: usize,
    pub stride: usize,
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an input of `h × w`. Panics when the kernel
    /// does not fit (misconfigured network).
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding).checked_sub(self.kernel).expect("kernel larger than padded input") / self.stride + 1;
        let ow = (w + 2 * self.padding).checked_sub(self.kernel).expect("kernel larger than padded input") / self.stride + 1;
        (oh, ow)
    }

    /// Number of columns of the im2col matrix (`cin·kh·kw`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Unfolds `input` (NCHW) into patch rows: output is
/// `[n·oh·ow, cin·k·k]`, where row `(img, oy, ox)` holds the receptive
/// field of output pixel `(oy, ox)` of image `img`, zero-padded.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "im2col expects NCHW, got {:?}", input.shape());
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, spec.in_channels, "im2col channel mismatch");
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let plen = spec.patch_len();
    let mut out = Tensor::zeros(&[n * oh * ow, plen]);
    let src = input.data();
    let img_stride = c * h * w;
    let rows_per_img = oh * ow;

    out.data_mut()
        .par_chunks_mut(rows_per_img * plen)
        .enumerate()
        .for_each(|(img, img_rows)| {
            let base = img * img_stride;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = &mut img_rows[(oy * ow + ox) * plen..(oy * ow + ox + 1) * plen];
                    let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                    let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                    for ch in 0..c {
                        for ky in 0..k {
                            let iy = iy0 + ky as isize;
                            let dst = &mut row[(ch * k + ky) * k..(ch * k + ky + 1) * k];
                            if iy < 0 || iy >= h as isize {
                                dst.fill(0.0);
                                continue;
                            }
                            let src_row = base + ch * h * w + iy as usize * w;
                            for (kx, d) in dst.iter_mut().enumerate() {
                                let ix = ix0 + kx as isize;
                                *d = if ix < 0 || ix >= w as isize {
                                    0.0
                                } else {
                                    src[src_row + ix as usize]
                                };
                            }
                        }
                    }
                }
            }
        });
    out
}

/// Folds patch-row gradients back onto the input: the adjoint of
/// [`im2col`]. `cols` is `[n·oh·ow, cin·k·k]`; the result is NCHW with the
/// given spatial size. Overlapping patches accumulate.
pub fn col2im(cols: &Tensor, spec: &Conv2dSpec, n: usize, h: usize, w: usize) -> Tensor {
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let c = spec.in_channels;
    let plen = spec.patch_len();
    assert_eq!(cols.dims(), &[n * oh * ow, plen], "col2im shape");
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let img_stride = c * h * w;
    let rows_per_img = oh * ow;
    let src = cols.data();

    out.data_mut()
        .par_chunks_mut(img_stride)
        .enumerate()
        .for_each(|(img, dst)| {
            let img_rows = &src[img * rows_per_img * plen..(img + 1) * rows_per_img * plen];
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = &img_rows[(oy * ow + ox) * plen..(oy * ow + ox + 1) * plen];
                    let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                    let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                    for ch in 0..c {
                        for ky in 0..k {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let dst_row = ch * h * w + iy as usize * w;
                            let srow = &row[(ch * k + ky) * k..(ch * k + ky + 1) * k];
                            for (kx, &v) in srow.iter().enumerate() {
                                let ix = ix0 + kx as isize;
                                if ix >= 0 && ix < w as isize {
                                    dst[dst_row + ix as usize] += v;
                                }
                            }
                        }
                    }
                }
            }
        });
    out
}

/// Convolution forward pass via im2col. `input` is NCHW, `weight` is
/// `[cout, cin, k, k]`. Returns `[n, cout, oh, ow]`.
pub fn conv2d(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let dims = input.dims();
    let (n, _, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(
        weight.dims(),
        &[spec.out_channels, spec.in_channels, spec.kernel, spec.kernel],
        "conv2d weight shape"
    );
    let (oh, ow) = spec.out_hw(h, w);
    let cols = im2col(input, spec); // [n·oh·ow, plen]
    let wmat = weight.reshaped(&[spec.out_channels, spec.patch_len()]);
    // [n·oh·ow, plen] × [cout, plen]ᵀ -> [n·oh·ow, cout]
    let prod = cols.matmul_nt(&wmat);
    // Reorder [n·oh·ow, cout] -> [n, cout, oh, ow].
    let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
    let pd = prod.data();
    let hw = oh * ow;
    out.data_mut()
        .chunks_mut(spec.out_channels * hw)
        .enumerate()
        .for_each(|(img, dst)| {
            for p in 0..hw {
                let row = &pd[(img * hw + p) * spec.out_channels..(img * hw + p + 1) * spec.out_channels];
                for (co, &v) in row.iter().enumerate() {
                    dst[co * hw + p] = v;
                }
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_close, Rng};

    fn random(dims: &[usize], rng: &mut Rng) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.normal() as f32).collect(), dims)
    }

    /// Direct convolution loop used as ground truth.
    fn naive_conv(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Tensor {
        let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
        let (oh, ow) = spec.out_hw(h, w);
        let k = spec.kernel;
        let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
        for img in 0..n {
            for co in 0..spec.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                        acc += input.at(&[img, ci, iy as usize, ix as usize])
                                            * weight.at(&[co, ci, ky, kx]);
                                    }
                                }
                            }
                        }
                        *out.at_mut(&[img, co, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn out_hw_formula() {
        let spec = Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        assert_eq!(spec.out_hw(8, 8), (8, 8)); // same-padding 3x3
        let spec2 = Conv2dSpec { kernel: 3, stride: 2, padding: 1, ..spec };
        assert_eq!(spec2.out_hw(8, 8), (4, 4));
        let spec3 = Conv2dSpec { kernel: 1, stride: 1, padding: 0, ..spec };
        assert_eq!(spec3.out_hw(5, 7), (5, 7));
    }

    #[test]
    fn conv_matches_naive_3x3_pad1() {
        let mut rng = Rng::seed_from_u64(11);
        let spec = Conv2dSpec { in_channels: 3, out_channels: 4, kernel: 3, stride: 1, padding: 1 };
        let x = random(&[2, 3, 6, 6], &mut rng);
        let w = random(&[4, 3, 3, 3], &mut rng);
        assert_close(&conv2d(&x, &w, &spec), &naive_conv(&x, &w, &spec), 1e-4);
    }

    #[test]
    fn conv_matches_naive_strided() {
        let mut rng = Rng::seed_from_u64(12);
        let spec = Conv2dSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 2, padding: 1 };
        let x = random(&[1, 2, 7, 7], &mut rng);
        let w = random(&[3, 2, 3, 3], &mut rng);
        assert_close(&conv2d(&x, &w, &spec), &naive_conv(&x, &w, &spec), 1e-4);
    }

    #[test]
    fn conv_matches_naive_1x1() {
        let mut rng = Rng::seed_from_u64(13);
        let spec = Conv2dSpec { in_channels: 4, out_channels: 2, kernel: 1, stride: 1, padding: 0 };
        let x = random(&[2, 4, 5, 5], &mut rng);
        let w = random(&[2, 4, 1, 1], &mut rng);
        assert_close(&conv2d(&x, &w, &spec), &naive_conv(&x, &w, &spec), 1e-4);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
        // checked with random tensors.
        let mut rng = Rng::seed_from_u64(14);
        let spec = Conv2dSpec { in_channels: 2, out_channels: 1, kernel: 3, stride: 2, padding: 1 };
        let x = random(&[2, 2, 5, 5], &mut rng);
        let cols = im2col(&x, &spec);
        let y = random(cols.dims(), &mut rng);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, 2, 5, 5);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_identity_kernel1() {
        // kernel 1, stride 1, no padding: im2col rows are just the pixels
        // in channel-major order.
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let spec = Conv2dSpec { in_channels: 2, out_channels: 1, kernel: 1, stride: 1, padding: 0 };
        let cols = im2col(&x, &spec);
        assert_eq!(cols.dims(), &[4, 2]);
        // pixel (0,0): channels (0, 4); pixel (0,1): (1, 5)...
        assert_eq!(cols.data(), &[0., 4., 1., 5., 2., 6., 3., 7.]);
    }
}
