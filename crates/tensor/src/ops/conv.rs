//! Convolution kernels: GEMM-fused forward/backward plus im2col / col2im
//! helpers.
//!
//! The forward pass no longer materializes the `[n·oh·ow, cin·k·k]` im2col
//! matrix. Instead, each image is one packed GEMM
//! `Wmat [cout, plen] × P [plen, oh·ow]` where the virtual patch matrix `P`
//! is generated straight into the GEMM's packed B panels
//! ([`pack_patch_panel`]) — the unfold, the product and the NCHW layout all
//! happen in one pass, because `C = Wmat·P` *is* the `[cout, oh·ow]` image
//! slice of the NCHW output. The weight gradient ([`conv2d_dw`]) fuses the
//! same way (per-image `dY [cout, oh·ow] × colsᵀ` with on-the-fly pixel
//! packing), and the input gradient ([`conv2d_dx`]) materializes only one
//! image's `dcols` at a time before folding with [`col2im`]'s inner loop.
//!
//! `im2col`/`col2im` remain public: `col2im` is the adjoint the input
//! gradient needs, and `im2col` is kept for tests and external users.

use super::gemm::{gemm, gemm_band, MatRef};
use super::tune::NR;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Static description of a 2-D convolution's geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dSpec {
    pub in_channels: usize,
    pub out_channels: usize,
    pub kernel: usize,
    pub stride: usize,
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an input of `h × w`. Panics when the kernel
    /// does not fit (misconfigured network).
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding)
            .checked_sub(self.kernel)
            .expect("kernel larger than padded input")
            / self.stride
            + 1;
        let ow = (w + 2 * self.padding)
            .checked_sub(self.kernel)
            .expect("kernel larger than padded input")
            / self.stride
            + 1;
        (oh, ow)
    }

    /// Number of columns of the im2col matrix (`cin·kh·kw`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Decodes a flat patch index into `(channel, ky, kx)`.
#[inline(always)]
fn decode_patch(idx: usize, k: usize) -> (usize, usize, usize) {
    let kk = k * k;
    (idx / kk, (idx % kk) / k, idx % k)
}

/// Packs the virtual patch matrix `P[plen, oh·ow]`
/// (`P[patch, pixel] = im2col value`) block `[pc..pc+kc, jc..jc+nc]` into
/// `NR`-lane GEMM B panels — this *is* im2col, fused into the panel loop.
/// All index arithmetic in the pixel scan is incremental (no div/mod), so
/// packing stays a small fraction of the GEMM's FMA work.
#[allow(clippy::too_many_arguments)]
fn pack_patch_panel(
    dst: &mut [f32],
    img: &[f32],
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
    ow: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let k = spec.kernel;
    let (s, pad) = (spec.stride, spec.padding as isize);
    let panels = nc.div_ceil(NR);
    if !nc.is_multiple_of(NR) {
        // The last panel has dead lanes; clear them once so the micro-kernel
        // reads zeros instead of a previous block's values.
        dst[(panels - 1) * kc * NR..panels * kc * NR].fill(0.0);
    }
    let (mut ch, mut ky, mut kx) = decode_patch(pc, k);
    let (oy0, ox0) = (jc / ow, jc % ow);
    for l in 0..kc {
        let plane = &img[ch * h * w..(ch + 1) * h * w];
        // Scan pixels jc..jc+nc with incremental (iy, ix) tracking.
        let mut ox = ox0;
        let mut iy = (oy0 * s + ky) as isize - pad;
        let mut ix = (ox * s + kx) as isize - pad;
        let mut write = l * NR;
        let mut lane = 0;
        for _ in 0..nc {
            dst[write + lane] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                plane[iy as usize * w + ix as usize]
            } else {
                0.0
            };
            lane += 1;
            if lane == NR {
                lane = 0;
                write += kc * NR;
            }
            ox += 1;
            ix += s as isize;
            if ox == ow {
                ox = 0;
                iy += s as isize;
                ix = kx as isize - pad;
            }
        }
        if lane != 0 {
            dst[write + lane..write + NR].fill(0.0);
        }
        kx += 1;
        if kx == k {
            kx = 0;
            ky += 1;
            if ky == k {
                ky = 0;
                ch += 1;
            }
        }
    }
}

/// Packs the *transposed* virtual patch matrix `cols[oh·ow, plen]`
/// (`cols[pixel, patch]`) block `[pc..pc+kc, jc..jc+nc]` into B panels —
/// the operand of the fused weight-gradient GEMM.
#[allow(clippy::too_many_arguments)]
fn pack_pixel_panel(
    dst: &mut [f32],
    img: &[f32],
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
    ow: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let k = spec.kernel;
    let (s, pad) = (spec.stride, spec.padding as isize);
    let panels = nc.div_ceil(NR);
    if !nc.is_multiple_of(NR) {
        dst[(panels - 1) * kc * NR..panels * kc * NR].fill(0.0);
    }
    let (mut oy, mut ox) = (pc / ow, pc % ow);
    let (ch0, ky0, kx0) = decode_patch(jc, k);
    for l in 0..kc {
        let iy0 = (oy * s) as isize - pad;
        let ix0 = (ox * s) as isize - pad;
        // Scan patch indices jc..jc+nc with incremental (ch, ky, kx).
        let (mut ch, mut ky, mut kx) = (ch0, ky0, kx0);
        let mut write = l * NR;
        let mut lane = 0;
        for _ in 0..nc {
            let iy = iy0 + ky as isize;
            let ix = ix0 + kx as isize;
            dst[write + lane] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                img[ch * h * w + iy as usize * w + ix as usize]
            } else {
                0.0
            };
            lane += 1;
            if lane == NR {
                lane = 0;
                write += kc * NR;
            }
            kx += 1;
            if kx == k {
                kx = 0;
                ky += 1;
                if ky == k {
                    ky = 0;
                    ch += 1;
                }
            }
        }
        if lane != 0 {
            dst[write + lane..write + NR].fill(0.0);
        }
        ox += 1;
        if ox == ow {
            ox = 0;
            oy += 1;
        }
    }
}

/// Unfolds `input` (NCHW) into patch rows: output is
/// `[n·oh·ow, cin·k·k]`, where row `(img, oy, ox)` holds the receptive
/// field of output pixel `(oy, ox)` of image `img`, zero-padded.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "im2col expects NCHW, got {:?}", input.shape());
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, spec.in_channels, "im2col channel mismatch");
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let plen = spec.patch_len();
    let mut out = Tensor::zeros(&[n * oh * ow, plen]);
    let src = input.data();
    let img_stride = c * h * w;
    let rows_per_img = oh * ow;

    out.data_mut().par_chunks_mut(rows_per_img * plen).enumerate().for_each(|(img, img_rows)| {
        let base = img * img_stride;
        for oy in 0..oh {
            for ox in 0..ow {
                let row = &mut img_rows[(oy * ow + ox) * plen..(oy * ow + ox + 1) * plen];
                let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                for ch in 0..c {
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        let dst = &mut row[(ch * k + ky) * k..(ch * k + ky + 1) * k];
                        if iy < 0 || iy >= h as isize {
                            dst.fill(0.0);
                            continue;
                        }
                        let src_row = base + ch * h * w + iy as usize * w;
                        for (kx, d) in dst.iter_mut().enumerate() {
                            let ix = ix0 + kx as isize;
                            *d = if ix < 0 || ix >= w as isize {
                                0.0
                            } else {
                                src[src_row + ix as usize]
                            };
                        }
                    }
                }
            }
        }
    });
    out
}

/// Folds one image's patch-row gradients (`[oh·ow, plen]`) onto that
/// image's input gradient (`[c·h·w]`). Overlapping patches accumulate.
fn col2im_image(dst: &mut [f32], img_rows: &[f32], spec: &Conv2dSpec, h: usize, w: usize) {
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let plen = spec.patch_len();
    for oy in 0..oh {
        for ox in 0..ow {
            let row = &img_rows[(oy * ow + ox) * plen..(oy * ow + ox + 1) * plen];
            let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
            let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
            for ch in 0..spec.in_channels {
                for ky in 0..k {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row = ch * h * w + iy as usize * w;
                    let srow = &row[(ch * k + ky) * k..(ch * k + ky + 1) * k];
                    for (kx, &v) in srow.iter().enumerate() {
                        let ix = ix0 + kx as isize;
                        if ix >= 0 && ix < w as isize {
                            dst[dst_row + ix as usize] += v;
                        }
                    }
                }
            }
        }
    }
}

/// Folds patch-row gradients back onto the input: the adjoint of
/// [`im2col`]. `cols` is `[n·oh·ow, cin·k·k]`; the result is NCHW with the
/// given spatial size. Overlapping patches accumulate.
pub fn col2im(cols: &Tensor, spec: &Conv2dSpec, n: usize, h: usize, w: usize) -> Tensor {
    let (oh, ow) = spec.out_hw(h, w);
    let plen = spec.patch_len();
    assert_eq!(cols.dims(), &[n * oh * ow, plen], "col2im shape");
    let mut out = Tensor::zeros(&[n, spec.in_channels, h, w]);
    let img_stride = spec.in_channels * h * w;
    let rows_per_img = oh * ow;
    let src = cols.data();

    out.data_mut().par_chunks_mut(img_stride).enumerate().for_each(|(img, dst)| {
        let img_rows = &src[img * rows_per_img * plen..(img + 1) * rows_per_img * plen];
        col2im_image(dst, img_rows, spec, h, w);
    });
    out
}

/// Convolution forward pass, im2col fused into the GEMM panel loop.
/// `input` is NCHW, `weight` is `[cout, cin, k, k]`.
/// Returns `[n, cout, oh, ow]`. No `[n·oh·ow, cin·k·k]` intermediate is
/// materialized; images are processed in parallel, each as one packed GEMM
/// whose output slab is already in NCHW order.
pub fn conv2d(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, spec.in_channels, "conv2d input channel mismatch");
    assert_eq!(
        weight.dims(),
        &[spec.out_channels, spec.in_channels, spec.kernel, spec.kernel],
        "conv2d weight shape"
    );
    let (oh, ow) = spec.out_hw(h, w);
    let (ohw, plen) = (oh * ow, spec.patch_len());
    let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
    let src = input.data();
    let wd = weight.data(); // already [cout, plen] row-major
    let img_stride = c * h * w;
    out.data_mut().par_chunks_mut(spec.out_channels * ohw).enumerate().for_each(|(img, dst)| {
        let img_src = &src[img * img_stride..(img + 1) * img_stride];
        let pack = |d: &mut [f32], pc: usize, kc: usize, jc: usize, nc: usize| {
            pack_patch_panel(d, img_src, spec, h, w, ow, pc, kc, jc, nc)
        };
        gemm_band(dst, spec.out_channels, ohw, plen, MatRef::row_major(wd, plen), &pack);
    });
    out
}

/// Fused convolution weight gradient:
/// `dW [cout, plen] = Σ_img dY_img [cout, oh·ow] × cols_img [oh·ow, plen]`,
/// with the per-image `cols` operand generated straight into the packed
/// panels (nothing materialized). `dy` is `[n, cout, oh, ow]`; returns
/// `[cout, cin, k, k]`.
pub fn conv2d_dw(dy: &Tensor, input: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.out_hw(h, w);
    let (ohw, plen) = (oh * ow, spec.patch_len());
    assert_eq!(dy.dims(), &[n, spec.out_channels, oh, ow], "conv2d_dw dy shape");
    let mut dw = Tensor::zeros(&[spec.out_channels, spec.in_channels, spec.kernel, spec.kernel]);
    let dyd = dy.data();
    let src = input.data();
    let img_stride = c * h * w;
    // Images accumulate serially into dW (fixed order — thread-count
    // invariant); row-banding inside each image's GEMM is safe because
    // bands write disjoint dW rows.
    for img in 0..n {
        let dy_img = &dyd[img * spec.out_channels * ohw..(img + 1) * spec.out_channels * ohw];
        let img_src = &src[img * img_stride..(img + 1) * img_stride];
        let pack = |d: &mut [f32], pc: usize, kc: usize, jc: usize, nc: usize| {
            pack_pixel_panel(d, img_src, spec, h, w, ow, pc, kc, jc, nc)
        };
        gemm_band(
            dw.data_mut(),
            spec.out_channels,
            plen,
            ohw,
            MatRef::row_major(dy_img, ohw),
            &pack,
        );
    }
    dw
}

/// Fused convolution input gradient: per image,
/// `dcols_img [oh·ow, plen] = dY_imgᵀ × Wmat`, folded immediately with
/// the col2im adjoint — only one image's `dcols` exists at a time.
/// `dy` is `[n, cout, oh, ow]`; returns `[n, cin, h, w]`.
pub fn conv2d_dx(dy: &Tensor, weight: &Tensor, spec: &Conv2dSpec, h: usize, w: usize) -> Tensor {
    let n = dy.dims()[0];
    let (oh, ow) = spec.out_hw(h, w);
    let (ohw, plen) = (oh * ow, spec.patch_len());
    assert_eq!(dy.dims(), &[n, spec.out_channels, oh, ow], "conv2d_dx dy shape");
    assert_eq!(
        weight.dims(),
        &[spec.out_channels, spec.in_channels, spec.kernel, spec.kernel],
        "conv2d_dx weight shape"
    );
    let mut dx = Tensor::zeros(&[n, spec.in_channels, h, w]);
    let dyd = dy.data();
    let wd = weight.data();
    let img_stride = spec.in_channels * h * w;
    dx.data_mut().par_chunks_mut(img_stride).enumerate().for_each(|(img, dst)| {
        let dy_img = &dyd[img * spec.out_channels * ohw..(img + 1) * spec.out_channels * ohw];
        let mut dcols = vec![0.0f32; ohw * plen];
        gemm(
            &mut dcols,
            ohw,
            plen,
            spec.out_channels,
            MatRef::transposed(dy_img, ohw),
            MatRef::row_major(wd, plen),
            1,
        );
        col2im_image(dst, &dcols, spec, h, w);
    });
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::reference;
    use crate::{assert_close, Rng};

    fn random(dims: &[usize], rng: &mut Rng) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.normal() as f32).collect(), dims)
    }

    #[test]
    fn out_hw_formula() {
        let spec = Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        assert_eq!(spec.out_hw(8, 8), (8, 8)); // same-padding 3x3
        let spec2 = Conv2dSpec { kernel: 3, stride: 2, padding: 1, ..spec };
        assert_eq!(spec2.out_hw(8, 8), (4, 4));
        let spec3 = Conv2dSpec { kernel: 1, stride: 1, padding: 0, ..spec };
        assert_eq!(spec3.out_hw(5, 7), (5, 7));
    }

    #[test]
    fn conv_matches_naive_3x3_pad1() {
        let mut rng = Rng::seed_from_u64(11);
        let spec = Conv2dSpec { in_channels: 3, out_channels: 4, kernel: 3, stride: 1, padding: 1 };
        let x = random(&[2, 3, 6, 6], &mut rng);
        let w = random(&[4, 3, 3, 3], &mut rng);
        assert_close(&conv2d(&x, &w, &spec), &reference::conv2d_ref(&x, &w, &spec), 1e-4);
    }

    #[test]
    fn conv_matches_naive_strided() {
        let mut rng = Rng::seed_from_u64(12);
        let spec = Conv2dSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 2, padding: 1 };
        let x = random(&[1, 2, 7, 7], &mut rng);
        let w = random(&[3, 2, 3, 3], &mut rng);
        assert_close(&conv2d(&x, &w, &spec), &reference::conv2d_ref(&x, &w, &spec), 1e-4);
    }

    #[test]
    fn conv_matches_naive_1x1() {
        let mut rng = Rng::seed_from_u64(13);
        let spec = Conv2dSpec { in_channels: 4, out_channels: 2, kernel: 1, stride: 1, padding: 0 };
        let x = random(&[2, 4, 5, 5], &mut rng);
        let w = random(&[2, 4, 1, 1], &mut rng);
        assert_close(&conv2d(&x, &w, &spec), &reference::conv2d_ref(&x, &w, &spec), 1e-4);
    }

    #[test]
    fn conv_matches_naive_nonsquare_blocksized() {
        // Non-square input, oh·ow and plen straddling the NC/KC boundaries.
        let mut rng = Rng::seed_from_u64(15);
        let spec = Conv2dSpec { in_channels: 5, out_channels: 6, kernel: 3, stride: 1, padding: 1 };
        let x = random(&[1, 5, 9, 13], &mut rng);
        let w = random(&[6, 5, 3, 3], &mut rng);
        assert_close(&conv2d(&x, &w, &spec), &reference::conv2d_ref(&x, &w, &spec), 1e-4);
    }

    #[test]
    fn fused_dw_matches_naive() {
        let mut rng = Rng::seed_from_u64(16);
        let spec = Conv2dSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 2, padding: 1 };
        let x = random(&[2, 2, 7, 6], &mut rng);
        let (oh, ow) = spec.out_hw(7, 6);
        let dy = random(&[2, 3, oh, ow], &mut rng);
        assert_close(&conv2d_dw(&dy, &x, &spec), &reference::conv2d_dw_ref(&dy, &x, &spec), 1e-4);
    }

    #[test]
    fn fused_dx_matches_naive() {
        let mut rng = Rng::seed_from_u64(17);
        let spec = Conv2dSpec { in_channels: 3, out_channels: 2, kernel: 3, stride: 1, padding: 1 };
        let w = random(&[2, 3, 3, 3], &mut rng);
        let (oh, ow) = spec.out_hw(5, 8);
        let dy = random(&[2, 2, oh, ow], &mut rng);
        assert_close(
            &conv2d_dx(&dy, &w, &spec, 5, 8),
            &reference::conv2d_dx_ref(&dy, &w, &spec, 5, 8),
            1e-4,
        );
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
        // checked with random tensors.
        let mut rng = Rng::seed_from_u64(14);
        let spec = Conv2dSpec { in_channels: 2, out_channels: 1, kernel: 3, stride: 2, padding: 1 };
        let x = random(&[2, 2, 5, 5], &mut rng);
        let cols = im2col(&x, &spec);
        let y = random(cols.dims(), &mut rng);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, 2, 5, 5);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_identity_kernel1() {
        // kernel 1, stride 1, no padding: im2col rows are just the pixels
        // in channel-major order.
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let spec = Conv2dSpec { in_channels: 2, out_channels: 1, kernel: 1, stride: 1, padding: 0 };
        let cols = im2col(&x, &spec);
        assert_eq!(cols.dims(), &[4, 2]);
        // pixel (0,0): channels (0, 4); pixel (0,1): (1, 5)...
        assert_eq!(cols.data(), &[0., 4., 1., 5., 2., 6., 3., 7.]);
    }
}
