//! Cache-blocked, register-tiled GEMM with panel packing.
//!
//! One kernel serves `matmul`, `matmul_tn`, `matmul_nt` and the fused conv
//! path: the operand layout is abstracted as a [`MatRef`] (base slice plus
//! row/column strides), so a transposed operand is handled by the packing
//! routine rather than by a materialized transpose, and the conv path
//! substitutes a virtual im2col operand by packing patch values directly
//! into the B panel (see `ops::conv`).
//!
//! Blocking follows the classic three-loop structure (Goto/BLIS): the
//! output is swept in `NC`-wide column slabs; for each slab, `KC`-deep
//! panels of B are packed once into a contiguous `NR`-lane layout; `MC`-row
//! panels of A are packed into `MR`-row micro-panels; and an `MR × NR`
//! register-tile micro-kernel accumulates over the packed panels with
//! unit-stride loads the auto-vectorizer turns into packed FMAs.
//!
//! # Thread-count invariance
//!
//! Parallelism splits only the output rows into contiguous bands (sized
//! with `div_ceil` so the last band is never larger than the others). The
//! value of output element `(i, j)` is accumulated in `pc`-block order and,
//! within a block, in ascending `k` order — neither depends on which band
//! `i` landed in, so results are bitwise identical for any thread count.
//! `tests/properties.rs` pins this contract.

use super::tune::{KC, MC, MR, NC, NR};
use rayon::prelude::*;

/// A strided view of an `f32` matrix: element `(i, j)` lives at
/// `data[i * rs + j * cs]`. A row-major `[m, k]` matrix is
/// `rs = k, cs = 1`; its transpose is viewed with `rs = 1, cs = k` —
/// no data movement.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    pub data: &'a [f32],
    pub rs: usize,
    pub cs: usize,
}

impl<'a> MatRef<'a> {
    /// Row-major view of a `[rows, cols]` matrix.
    pub fn row_major(data: &'a [f32], cols: usize) -> Self {
        MatRef { data, rs: cols, cs: 1 }
    }

    /// Transposed view of a row-major `[rows, cols]` matrix (logical shape
    /// `[cols, rows]`).
    pub fn transposed(data: &'a [f32], cols: usize) -> Self {
        MatRef { data, rs: 1, cs: cols }
    }

    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }

    /// View advanced by `rows` logical rows.
    fn offset_rows(&self, rows: usize) -> MatRef<'a> {
        MatRef { data: &self.data[rows * self.rs..], rs: self.rs, cs: self.cs }
    }
}

/// Packs `B[pc..pc+kc, jc..jc+nc]` into `NR`-lane panels: panel `p` holds
/// columns `jc + p·NR ..`, laid out k-major (`kc` rows of `NR` lanes each),
/// zero-padded past `nc` so the micro-kernel never branches on tails.
fn pack_b_strided(dst: &mut [f32], b: MatRef<'_>, pc: usize, kc: usize, jc: usize, nc: usize) {
    let panels = nc.div_ceil(NR);
    for p in 0..panels {
        let j0 = jc + p * NR;
        let lanes = NR.min(jc + nc - j0);
        let panel = &mut dst[p * kc * NR..(p + 1) * kc * NR];
        for l in 0..kc {
            let row = &mut panel[l * NR..l * NR + NR];
            for (lane, r) in row.iter_mut().enumerate().take(lanes) {
                *r = b.at(pc + l, j0 + lane);
            }
            row[lanes..].fill(0.0);
        }
    }
}

/// Packs `A[ic..ic+mc, pc..pc+kc]` into `MR`-row micro-panels: panel `q`
/// holds rows `ic + q·MR ..`, laid out k-major (`kc` columns of `MR` rows
/// each), zero-padded past `mc`.
fn pack_a_strided(dst: &mut [f32], a: MatRef<'_>, ic: usize, mc: usize, pc: usize, kc: usize) {
    let panels = mc.div_ceil(MR);
    for q in 0..panels {
        let i0 = ic + q * MR;
        let rows = MR.min(ic + mc - i0);
        let panel = &mut dst[q * kc * MR..(q + 1) * kc * MR];
        for l in 0..kc {
            let col = &mut panel[l * MR..l * MR + MR];
            for (r, c) in col.iter_mut().enumerate().take(rows) {
                *c = a.at(i0 + r, pc + l);
            }
            col[rows..].fill(0.0);
        }
    }
}

/// The register-tile micro-kernel: `acc[r][c] += Σ_l ap[l][r] · bp[l][c]`
/// over one packed A micro-panel (`kc × MR`, k-major) and one packed B
/// panel (`kc × NR`, k-major). The whole accumulator block stays in
/// registers; the `NR`-wide inner loop is a unit-stride FMA the
/// auto-vectorizer packs into SIMD.
#[inline(always)]
fn micro_kernel(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    // Const-size array refs (not slices) so every lane access is
    // bounds-check-free and the r/c loops fully unroll.
    for l in 0..kc {
        let av: &[f32; MR] = ap[l * MR..l * MR + MR].try_into().unwrap();
        let bv: &[f32; NR] = bp[l * NR..l * NR + NR].try_into().unwrap();
        for r in 0..MR {
            let a = av[r];
            for c in 0..NR {
                acc[r][c] += a * bv[c];
            }
        }
    }
}

/// AVX2+FMA build of the same micro-kernel, selected at runtime and written
/// with explicit intrinsics: under thin LTO the surrounding loop nest is
/// cloned into every caller and the autovectorizer's choices vary per clone
/// (measured 2× swings between binaries); intrinsics pin the codegen. The
/// accumulator block is `MR × NR/8 = 8` `ymm` registers — enough
/// independent chains to cover FMA latency at two issues per cycle.
///
/// Each output element still accumulates in ascending-`l` order, one
/// `fmadd` per step, so results are bitwise identical across thread counts
/// (and across this kernel vs. any scalar `mul_add` formulation). Numerics
/// differ from the portable non-FMA kernel by the fused multiply's skipped
/// intermediate rounding — a per-*machine* property, constant within a
/// process, so thread-count invariance is unaffected.
///
/// # Safety
/// Caller must ensure the host supports AVX2 and FMA (see
/// [`avx2_fma_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_kernel_avx2(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    const { assert!(MR == 4 && NR == 16, "intrinsic kernel is tiled for MR=4, NR=16") };
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    // SAFETY: panel extents checked above; lane offsets stay within one
    // kc-row of the packed panels.
    unsafe {
        let mut accv = [[_mm256_setzero_ps(); 2]; MR];
        for (r, row) in acc.iter().enumerate() {
            accv[r][0] = _mm256_loadu_ps(row.as_ptr());
            accv[r][1] = _mm256_loadu_ps(row.as_ptr().add(8));
        }
        for l in 0..kc {
            let bptr = bp.as_ptr().add(l * NR);
            let b0 = _mm256_loadu_ps(bptr);
            let b1 = _mm256_loadu_ps(bptr.add(8));
            let aptr = ap.as_ptr().add(l * MR);
            for (r, accr) in accv.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*aptr.add(r));
                accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
            }
        }
        for (r, row) in acc.iter_mut().enumerate() {
            _mm256_storeu_ps(row.as_mut_ptr(), accv[r][0]);
            _mm256_storeu_ps(row.as_mut_ptr().add(8), accv[r][1]);
        }
    }
}

/// One-time CPUID probe for the fast micro-kernel. A process-global
/// constant: every thread sees the same answer, so kernel selection can
/// never vary across a parallel band split.
#[cfg(target_arch = "x86_64")]
fn avx2_fma_available() -> bool {
    use std::sync::OnceLock;
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

#[inline(always)]
fn micro_kernel_dispatch(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_available() {
        // SAFETY: guarded by the CPUID probe above.
        unsafe { micro_kernel_avx2(ap, bp, kc, acc) };
        return;
    }
    micro_kernel(ap, bp, kc, acc)
}

/// Serial blocked GEMM over a band of output rows:
/// `c[0..rows, 0..n] += A[0..rows, 0..k] · B[0..k, 0..n]`, with B supplied
/// by a panel-packing callback (strided matrix or virtual im2col operand).
///
/// `pack_b(dst, pc, kc, jc, nc)` must fill `dst` with the
/// `B[pc..pc+kc, jc..jc+nc]` panel in the layout [`pack_b_strided`]
/// produces.
pub(crate) fn gemm_band(
    c: &mut [f32],
    rows: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    pack_b: &(impl Fn(&mut [f32], usize, usize, usize, usize) + Sync),
) {
    debug_assert_eq!(c.len(), rows * n);
    // Size the packing buffers to the problem (capped at one full block) so
    // small GEMMs don't pay for a 320 KB allocation they won't use.
    let kc_max = KC.min(k).max(1);
    let nc_max = NC.min(n.div_ceil(NR) * NR).max(NR);
    let mc_max = MC.min(rows.div_ceil(MR) * MR).max(MR);
    let mut apack = vec![0.0f32; mc_max * kc_max];
    let mut bpack = vec![0.0f32; kc_max * nc_max];
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let jpanels = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&mut bpack, pc, kc, jc, nc);
            for ic in (0..rows).step_by(MC) {
                let mc = MC.min(rows - ic);
                pack_a_strided(&mut apack, a, ic, mc, pc, kc);
                let ipanels = mc.div_ceil(MR);
                for p in 0..jpanels {
                    let bp = &bpack[p * kc * NR..(p + 1) * kc * NR];
                    let j0 = jc + p * NR;
                    let lanes = NR.min(jc + nc - j0);
                    for q in 0..ipanels {
                        let ap = &apack[q * kc * MR..(q + 1) * kc * MR];
                        let i0 = ic + q * MR;
                        let tile_rows = MR.min(ic + mc - i0);
                        let mut acc = [[0.0f32; NR]; MR];
                        micro_kernel_dispatch(ap, bp, kc, &mut acc);
                        for (r, acc_row) in acc.iter().enumerate().take(tile_rows) {
                            let out = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + lanes];
                            for (o, &v) in out.iter_mut().zip(acc_row) {
                                *o += v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Packed, blocked, optionally banded GEMM:
/// `c[0..m, 0..n] += A · B` with both operands as strided views.
///
/// `threads` > 1 splits the output rows into `div_ceil`-sized contiguous
/// bands, one per thread; each band packs its own panels, so no
/// synchronization (and no cross-band floating-point reassociation)
/// occurs.
pub(crate) fn gemm(
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    threads: usize,
) {
    let pack_b = |dst: &mut [f32], pc: usize, kc: usize, jc: usize, nc: usize| {
        pack_b_strided(dst, b, pc, kc, jc, nc)
    };
    if threads <= 1 || m < 2 {
        gemm_band(c, m, n, k, a, &pack_b);
        return;
    }
    // Round the band size *up* so the last band can only be smaller than
    // the others, never (nearly) twice as large.
    let band = m.div_ceil(threads.min(m));
    c.par_chunks_mut(band * n).enumerate().for_each(|(bi, c_band)| {
        let rows = c_band.len() / n;
        gemm_band(c_band, rows, n, k, a.offset_rows(bi * band), &pack_b);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a[i * k + l] * b[l * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = crate::Rng::seed_from_u64(seed);
        (0..len).map(|_| rng.normal() as f32).collect()
    }

    fn check(m: usize, n: usize, k: usize, threads: usize) {
        let a = filled(m * k, 7 + m as u64);
        let b = filled(k * n, 11 + n as u64);
        let mut c = vec![0.0f32; m * n];
        gemm(&mut c, m, n, k, MatRef::row_major(&a, k), MatRef::row_major(&b, n), threads);
        let want = naive(m, n, k, &a, &b);
        for (i, (x, y)) in c.iter().zip(&want).enumerate() {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "({m},{n},{k}) idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_across_tail_shapes() {
        // Hit every blocking edge: tails < MR/NR, single row/col, k=1,
        // shapes straddling the MC/KC/NC block boundaries.
        for &(m, n, k) in &[
            (1, 1, 1),
            (1, 9, 5),
            (3, 7, 1),
            (4, 8, 16),
            (5, 9, 3),
            (7, 17, 33),
            (63, 65, 31),
            (64, 8, 257),
            (65, 9, 256),
            (130, 20, 70),
        ] {
            check(m, n, k, 1);
        }
    }

    #[test]
    fn banded_matches_serial_bitwise() {
        let (m, n, k) = (37, 19, 23);
        let a = filled(m * k, 3);
        let b = filled(k * n, 5);
        let mut serial = vec![0.0f32; m * n];
        gemm(&mut serial, m, n, k, MatRef::row_major(&a, k), MatRef::row_major(&b, n), 1);
        for threads in [2, 3, 5, 8] {
            let mut banded = vec![0.0f32; m * n];
            gemm(&mut banded, m, n, k, MatRef::row_major(&a, k), MatRef::row_major(&b, n), threads);
            assert_eq!(serial, banded, "threads={threads}");
        }
    }

    #[test]
    fn transposed_views_match_explicit_transpose() {
        let (m, n, k) = (13, 21, 17);
        let a_t = filled(k * m, 9); // stored [k, m]
        let b = filled(k * n, 10);
        let mut c = vec![0.0f32; m * n];
        gemm(&mut c, m, n, k, MatRef::transposed(&a_t, m), MatRef::row_major(&b, n), 1);
        // Explicitly transpose A and compare.
        let mut a = vec![0.0f32; m * k];
        for i in 0..m {
            for l in 0..k {
                a[i * k + l] = a_t[l * m + i];
            }
        }
        let want = naive(m, n, k, &a, &b);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn accumulates_into_existing_c() {
        let (m, n, k) = (6, 10, 4);
        let a = filled(m * k, 21);
        let b = filled(k * n, 22);
        let mut c = vec![1.0f32; m * n];
        gemm(&mut c, m, n, k, MatRef::row_major(&a, k), MatRef::row_major(&b, n), 1);
        let want = naive(m, n, k, &a, &b);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - (y + 1.0)).abs() <= 1e-4 * (1.0 + y.abs()));
        }
    }
}
