//! Differential tests: optimized kernels vs the naive reference kernels.
//!
//! Every optimized code path (packed GEMM for the three matmul variants,
//! the fused conv forward/backward, the fused EMA update) is compared
//! against the deliberately-naive loops in `ops::reference` over randomized
//! shapes chosen to hit the blocking edge cases: tails smaller than the
//! MR/NR register tile, k = 1, single rows/columns, shapes straddling the
//! MC/KC/NC cache-block boundaries, strided + padded and 1×1 convolutions.
//! A slice of the cases additionally runs under a forced 4-thread fan-out
//! so the banded dispatch path is exercised even on single-core CI hosts.
//!
//! Tolerance is relative (1e-4 with an absolute floor), since blocked
//! accumulation reassociates sums relative to the reference loops.

use lcasgd_tensor::ops::conv::{conv2d, conv2d_dw, conv2d_dx, Conv2dSpec};
use lcasgd_tensor::ops::reference;
use lcasgd_tensor::{Rng, Tensor};
use proptest::prelude::*;

const REL_TOL: f32 = 1e-4;

fn randn(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    Tensor::randn(dims, 1.0, &mut rng)
}

fn rel_close(
    got: &Tensor,
    want: &Tensor,
    what: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(got.dims(), want.dims());
    for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
        let denom = w.abs().max(1.0);
        prop_assert!(
            (g - w).abs() <= REL_TOL * denom,
            "{} diverges at flat index {}: optimized {} vs reference {}",
            what,
            i,
            g,
            w
        );
    }
    Ok(())
}

/// Biases a raw dimension draw toward blocking edges: tile-multiples,
/// one-off-tile tails, and 1.
fn edgey(raw: usize, kind: usize) -> usize {
    match kind % 4 {
        0 => raw,                      // arbitrary
        1 => (raw / 8).max(1) * 8,     // NR multiple
        2 => (raw / 8).max(1) * 8 + 1, // just past a tile boundary
        _ => 1,                        // degenerate single row/col
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_variants_match_reference(
        m_raw in 1usize..90,
        n_raw in 1usize..90,
        k_raw in 1usize..300,
        m_kind in 0usize..4,
        n_kind in 0usize..4,
        k_kind in 0usize..3, // keep k >= 1 but allow k = 1 via kind 2
        seed in any::<u64>(),
        forced_threads in 0usize..2,
    ) {
        let m = edgey(m_raw, m_kind);
        let n = edgey(n_raw, n_kind);
        let k = if k_kind == 2 { 1 } else { k_raw };
        let a = randn(&[m, k], seed);
        let b = randn(&[k, n], seed ^ 0x9e37_79b9);
        let at = randn(&[k, m], seed ^ 0x517c_c1b7);
        let bt = randn(&[n, k], seed ^ 0x2545_f491);
        let run = || -> Result<(), proptest::test_runner::TestCaseError> {
            rel_close(&a.matmul(&b), &reference::matmul_ref(&a, &b), "matmul")?;
            rel_close(&at.matmul_tn(&b), &reference::matmul_tn_ref(&at, &b), "matmul_tn")?;
            rel_close(&a.matmul_nt(&bt), &reference::matmul_nt_ref(&a, &bt), "matmul_nt")?;
            Ok(())
        };
        if forced_threads == 1 {
            rayon::with_num_threads(4, run)?;
        } else {
            run()?;
        }
    }

    #[test]
    fn conv_forward_and_backward_match_reference(
        n in 1usize..3,
        cin in 1usize..6,
        cout in 1usize..10,
        h in 3usize..12,
        w in 3usize..12,
        kernel_ix in 0usize..2,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in any::<u64>(),
        forced_threads in 0usize..2,
    ) {
        let kernel = [1, 3][kernel_ix];
        // Skip geometrically-invalid combinations (kernel must fit).
        if h + 2 * padding < kernel || w + 2 * padding < kernel {
            return Ok(());
        }
        let spec = Conv2dSpec { in_channels: cin, out_channels: cout, kernel, stride, padding };
        let (oh, ow) = spec.out_hw(h, w);
        let x = randn(&[n, cin, h, w], seed);
        let wt = randn(&[cout, cin, kernel, kernel], seed ^ 0xabcd_ef01);
        let dy = randn(&[n, cout, oh, ow], seed ^ 0x1357_9bdf);
        let run = || -> Result<(), proptest::test_runner::TestCaseError> {
            rel_close(&conv2d(&x, &wt, &spec), &reference::conv2d_ref(&x, &wt, &spec), "conv2d")?;
            rel_close(&conv2d_dw(&dy, &x, &spec), &reference::conv2d_dw_ref(&dy, &x, &spec), "conv2d_dw")?;
            rel_close(
                &conv2d_dx(&dy, &wt, &spec, h, w),
                &reference::conv2d_dx_ref(&dy, &wt, &spec, h, w),
                "conv2d_dx",
            )?;
            Ok(())
        };
        if forced_threads == 1 {
            rayon::with_num_threads(4, run)?;
        } else {
            run()?;
        }
    }

    #[test]
    fn fused_ema_matches_two_pass(
        len in 1usize..5000,
        momentum in 0.01f32..0.99,
        seed in any::<u64>(),
    ) {
        let dst = randn(&[len], seed);
        let src = randn(&[len], seed ^ 0xfeed_beef);
        let mut fused = dst.clone();
        fused.scale_add_inplace(1.0 - momentum, &src, momentum);
        let want = reference::ema_ref(&dst, &src, momentum);
        // Per-element arithmetic is identical to the two-pass form, so
        // this comparison is exact, not tolerance-based.
        prop_assert_eq!(fused.data(), want.data());
    }
}

/// Deterministic shapes that pin every structural edge of the blocking:
/// single row/col, k = 1, tails just below/above MR, NR, and spans across
/// the MC = 64, KC = 256, NC = 256 block boundaries.
#[test]
fn matmul_blocking_edges_exhaustive() {
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 64, 17),    // single output row
        (64, 1, 17),    // single output column
        (3, 7, 1),      // k = 1
        (4, 8, 256),    // exactly one register tile, k at KC boundary
        (5, 9, 257),    // tails just past tile/block boundaries
        (63, 255, 12),  // just below MC / NC
        (65, 257, 12),  // just above MC / NC
        (64, 256, 300), // k spans two KC blocks
        (67, 9, 31),
    ];
    for &(m, n, k) in shapes {
        let a = randn(&[m, k], 1000 + (m * 31 + n * 7 + k) as u64);
        let b = randn(&[k, n], 2000 + (m + n * 13 + k * 3) as u64);
        let got = a.matmul(&b);
        let want = reference::matmul_ref(&a, &b);
        for (i, (&g, &wv)) in got.data().iter().zip(want.data()).enumerate() {
            assert!(
                (g - wv).abs() <= REL_TOL * wv.abs().max(1.0),
                "({m},{n},{k}) flat index {i}: {g} vs {wv}"
            );
        }
    }
}

/// Conv configs the fused path specializes, pinned deterministically:
/// stride 2 + padding, non-square, 1×1, and a CIFAR-like 3×3 block.
#[test]
fn conv_specialized_configs_exhaustive() {
    // (n, cin, cout, h, w, kernel, stride, padding)
    type ConvConfig = (usize, usize, usize, usize, usize, usize, usize, usize);
    let configs: &[ConvConfig] = &[
        (2, 3, 4, 8, 8, 3, 1, 1),
        (1, 2, 3, 9, 7, 3, 2, 1),   // strided + padded, non-square
        (2, 4, 6, 5, 5, 1, 1, 0),   // 1×1
        (1, 1, 1, 3, 3, 3, 1, 0),   // minimal valid
        (1, 5, 7, 6, 11, 3, 2, 0),  // no padding, stride 2, off-tile cout
        (2, 8, 8, 16, 16, 3, 1, 1), // CIFAR-like block (scaled down)
    ];
    for &(n, cin, cout, h, w, kernel, stride, padding) in configs {
        let spec = Conv2dSpec { in_channels: cin, out_channels: cout, kernel, stride, padding };
        let (oh, ow) = spec.out_hw(h, w);
        let seed = (n * 131 + cout * 17 + h * 3 + w) as u64;
        let x = randn(&[n, cin, h, w], seed);
        let wt = randn(&[cout, cin, kernel, kernel], seed + 1);
        let dy = randn(&[n, cout, oh, ow], seed + 2);

        for (got, want, what) in [
            (conv2d(&x, &wt, &spec), reference::conv2d_ref(&x, &wt, &spec), "forward"),
            (conv2d_dw(&dy, &x, &spec), reference::conv2d_dw_ref(&dy, &x, &spec), "dw"),
            (
                conv2d_dx(&dy, &wt, &spec, h, w),
                reference::conv2d_dx_ref(&dy, &wt, &spec, h, w),
                "dx",
            ),
        ] {
            for (i, (&g, &wv)) in got.data().iter().zip(want.data()).enumerate() {
                assert!(
                    (g - wv).abs() <= REL_TOL * wv.abs().max(1.0),
                    "{what} {spec:?} on {h}x{w}: flat index {i}: {g} vs {wv}"
                );
            }
        }
    }
}
