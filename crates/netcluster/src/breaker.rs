//! Per-connection circuit breakers for the TCP backend.
//!
//! A worker whose link keeps dying should not hammer the server with
//! redial storms, and the server should not keep paying codec work for a
//! rank whose frames keep failing CRC. Both sides therefore run a
//! classic three-state breaker per connection:
//!
//! * **Closed** — traffic flows; failures are counted over a tumbling
//!   window. Too many failures inside one window trips the breaker.
//! * **Open** — everything is refused until a cooldown deadline passes.
//!   Each consecutive trip doubles the cooldown, up to a cap.
//! * **Half-open** — after the cooldown, exactly one probe is admitted.
//!   Success closes the breaker (and resets the cooldown ladder);
//!   failure re-opens it with the next-longer cooldown.
//!
//! The breaker is purely local state driven by an injected `Instant`, so
//! it is unit-testable without sockets or sleeps.

use std::time::{Duration, Instant};

/// Thresholds for one [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Failures within one `window` that trip the breaker.
    pub failure_threshold: u32,
    /// Length of the tumbling failure-counting window.
    pub window: Duration,
    /// Cooldown after the first trip; doubles per consecutive trip.
    pub cooldown: Duration,
    /// Ceiling on the doubled cooldown.
    pub cooldown_cap: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            window: Duration::from_secs(10),
            cooldown: Duration::from_millis(500),
            cooldown_cap: Duration::from_secs(30),
        }
    }
}

impl BreakerConfig {
    /// Aggressive thresholds for tests: trips after 2 failures, recovers
    /// in tens of milliseconds.
    pub fn fast() -> Self {
        BreakerConfig {
            failure_threshold: 2,
            window: Duration::from_millis(500),
            cooldown: Duration::from_millis(30),
            cooldown_cap: Duration::from_millis(200),
        }
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows.
    Closed,
    /// Refusing everything until the cooldown deadline.
    Open,
    /// Cooldown expired; one probe is in flight.
    HalfOpen,
}

/// One connection's error-rate circuit breaker. Not thread-safe on its
/// own — callers hold it under their existing connection lock.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Failures inside the current tumbling window.
    failures: u32,
    window_start: Option<Instant>,
    /// When an Open breaker transitions to Half-open.
    open_until: Option<Instant>,
    /// Consecutive trips without an intervening success (cooldown ladder).
    trips: u32,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            failures: 0,
            window_start: None,
            open_until: None,
            trips: 0,
        }
    }

    /// Current state, after applying any cooldown expiry at `now`.
    pub fn state(&mut self, now: Instant) -> BreakerState {
        if self.state == BreakerState::Open
            && self.open_until.is_some_and(|deadline| now >= deadline)
        {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// Whether an operation may proceed at `now`. In Half-open this
    /// admits the single probe (subsequent calls before the probe
    /// resolves are refused).
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state(now) {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                // Arm the probe: refuse further ops until it resolves.
                self.state = BreakerState::Open;
                self.open_until = None; // no deadline: only the probe's
                                        // outcome moves the state now
                true
            }
        }
    }

    /// Records a successful operation: closes the breaker and resets the
    /// failure window and the cooldown ladder.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.failures = 0;
        self.window_start = None;
        self.open_until = None;
        self.trips = 0;
    }

    /// Records a failed operation at `now`; trips the breaker when the
    /// window fills (or immediately if this was the Half-open probe).
    pub fn record_failure(&mut self, now: Instant) {
        if self.state == BreakerState::Open && self.open_until.is_none() {
            // The Half-open probe failed: straight back to Open with the
            // next-longer cooldown.
            self.trip(now);
            return;
        }
        if self.state != BreakerState::Closed {
            return;
        }
        match self.window_start {
            Some(start) if now.duration_since(start) <= self.cfg.window => {}
            _ => {
                // New tumbling window.
                self.window_start = Some(now);
                self.failures = 0;
            }
        }
        self.failures += 1;
        if self.failures >= self.cfg.failure_threshold {
            self.trip(now);
        }
    }

    fn trip(&mut self, now: Instant) {
        let factor = 2u32.saturating_pow(self.trips.min(16));
        let cooldown = (self.cfg.cooldown * factor).min(self.cfg.cooldown_cap);
        self.trips = self.trips.saturating_add(1);
        self.state = BreakerState::Open;
        self.open_until = Some(now + cooldown);
        self.failures = 0;
        self.window_start = None;
    }

    /// The cooldown deadline, when Open with one pending.
    pub fn open_until(&self) -> Option<Instant> {
        self.open_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            window: Duration::from_secs(1),
            cooldown: Duration::from_millis(100),
            cooldown_cap: Duration::from_millis(350),
        }
    }

    #[test]
    fn stays_closed_below_threshold() {
        let mut b = CircuitBreaker::new(cfg());
        let t = Instant::now();
        b.record_failure(t);
        b.record_failure(t + Duration::from_millis(10));
        assert_eq!(b.state(t + Duration::from_millis(20)), BreakerState::Closed);
        assert!(b.allow(t + Duration::from_millis(20)));
    }

    #[test]
    fn window_failures_trip_to_open() {
        let mut b = CircuitBreaker::new(cfg());
        let t = Instant::now();
        for i in 0..3 {
            b.record_failure(t + Duration::from_millis(i * 10));
        }
        assert_eq!(b.state(t + Duration::from_millis(40)), BreakerState::Open);
        assert!(!b.allow(t + Duration::from_millis(40)));
    }

    #[test]
    fn failures_in_separate_windows_do_not_trip() {
        let mut b = CircuitBreaker::new(cfg());
        let t = Instant::now();
        b.record_failure(t);
        b.record_failure(t + Duration::from_millis(500));
        // The third failure lands in a fresh tumbling window.
        b.record_failure(t + Duration::from_millis(1600));
        assert_eq!(b.state(t + Duration::from_millis(1700)), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_one_probe_then_success_closes() {
        let mut b = CircuitBreaker::new(cfg());
        let t = Instant::now();
        for _ in 0..3 {
            b.record_failure(t);
        }
        let after = t + Duration::from_millis(150); // past the 100ms cooldown
        assert_eq!(b.state(after), BreakerState::HalfOpen);
        assert!(b.allow(after), "one probe goes through");
        assert!(!b.allow(after), "but only one");
        b.record_success();
        assert_eq!(b.state(after), BreakerState::Closed);
        assert!(b.allow(after));
    }

    #[test]
    fn failed_probe_reopens_with_doubled_cooldown() {
        let mut b = CircuitBreaker::new(cfg());
        let t = Instant::now();
        for _ in 0..3 {
            b.record_failure(t);
        }
        let t1 = t + Duration::from_millis(150);
        assert!(b.allow(t1));
        b.record_failure(t1); // probe fails → second trip, 200ms cooldown
        assert_eq!(b.state(t1 + Duration::from_millis(150)), BreakerState::Open);
        assert_eq!(b.state(t1 + Duration::from_millis(250)), BreakerState::HalfOpen);
        assert!(b.allow(t1 + Duration::from_millis(250)));
        b.record_failure(t1 + Duration::from_millis(250)); // third trip: capped at 350ms
        let deadline = b.open_until().expect("open with a deadline");
        assert_eq!(
            deadline.duration_since(t1 + Duration::from_millis(250)),
            Duration::from_millis(350)
        );
    }

    #[test]
    fn success_resets_the_cooldown_ladder() {
        let mut b = CircuitBreaker::new(cfg());
        let t = Instant::now();
        for _ in 0..3 {
            b.record_failure(t);
        }
        let t1 = t + Duration::from_millis(150);
        assert!(b.allow(t1));
        b.record_success();
        // Trip again from scratch: back to the base 100ms cooldown.
        for _ in 0..3 {
            b.record_failure(t1);
        }
        let deadline = b.open_until().expect("open with a deadline");
        assert_eq!(deadline.duration_since(t1), Duration::from_millis(100));
    }
}
