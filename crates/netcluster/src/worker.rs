//! The worker side of the TCP backend.
//!
//! A `NetWorker` owns one connection to the parameter server: the read
//! half stays on the calling thread (the only server→worker traffic is
//! replies), the write half is shared with a background heartbeat thread
//! that keeps the connection visibly alive between pushes.
//!
//! Failure handling:
//! * connects (initial and re-) retry with bounded exponential backoff;
//! * every blocking request carries a deadline ([`NetConfig::request_timeout`]);
//! * a failed *write* triggers one reconnect-and-resend — a request is
//!   never resent after it may have been processed, so server-side
//!   effects stay at-most-once (LC-ASGD's pulls and pushes tolerate a
//!   dropped message far better than a doubled gradient);
//! * [`NetWorker::finish`] performs the `Goodbye` handshake; dropping
//!   without it looks like a crash to the server, which is exactly what
//!   the fault-injection tests rely on.

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::config::NetConfig;
use crate::frame::{read_frame, write_frame, Frame, FrameKind};
use lcasgd_simcluster::{ClusterError, FaultHooks, TraceHook, TransportStats, WireMsg, WorkerLink};
use parking_lot::Mutex;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Interruptible stop flag: the heartbeat thread waits on the condvar
/// between beats, so teardown wakes it instantly instead of waiting out
/// a full heartbeat interval.
struct StopSignal {
    stopped: StdMutex<bool>,
    cv: Condvar,
}

impl StopSignal {
    fn new() -> Arc<StopSignal> {
        Arc::new(StopSignal { stopped: StdMutex::new(false), cv: Condvar::new() })
    }

    fn stop(&self) {
        *self.stopped.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    /// Waits up to `timeout`; returns true once stopped.
    fn wait(&self, timeout: std::time::Duration) -> bool {
        let guard = self.stopped.lock().unwrap_or_else(|e| e.into_inner());
        let (guard, _) = self
            .cv
            .wait_timeout_while(guard, timeout, |stopped| !*stopped)
            .unwrap_or_else(|e| e.into_inner());
        *guard
    }
}

struct Conn {
    /// Read half; replies are consumed on the worker's own thread.
    read: TcpStream,
    /// Write half, shared with the heartbeat thread.
    write: Arc<Mutex<TcpStream>>,
    hb_stop: Arc<StopSignal>,
    hb: Option<JoinHandle<()>>,
}

/// A connected worker client implementing [`WorkerLink`] over TCP.
pub struct NetWorker {
    rank: usize,
    addr: SocketAddr,
    cfg: NetConfig,
    conn: Option<Conn>,
    seq: u64,
    stats: TransportStats,
    finished: bool,
    trace_hook: Option<Arc<dyn TraceHook>>,
    /// Gates reconnect storms: repeated transport failures open the
    /// breaker and further dial attempts fail fast until the cooldown
    /// admits a half-open probe.
    breaker: CircuitBreaker,
}

impl NetWorker {
    /// Connects to the server (with backoff retries) and announces
    /// `rank`.
    pub fn connect(
        addr: SocketAddr,
        rank: usize,
        cfg: NetConfig,
    ) -> Result<NetWorker, ClusterError> {
        cfg.validate_worker()
            .map_err(|why| ClusterError::Protocol(format!("invalid NetConfig: {why}")))?;
        let breaker = CircuitBreaker::new(cfg.breaker.clone());
        let mut worker = NetWorker {
            rank,
            addr,
            cfg,
            conn: None,
            seq: 0,
            stats: TransportStats::default(),
            finished: false,
            trace_hook: None,
            breaker,
        };
        worker.reconnect()?;
        Ok(worker)
    }

    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Installs a span observer: frame encode/decode time is reported as
    /// `codec` spans and each request round trip as a `comm` span, all on
    /// the wall clock.
    pub fn set_trace_hook(&mut self, hook: Arc<dyn TraceHook>) {
        self.trace_hook = Some(hook);
    }

    fn span(&self, phase: &'static str, t0: Instant, dur: f64) {
        if let Some(h) = &self.trace_hook {
            h.wall_span(Some(self.rank), phase, t0, dur);
        }
    }

    /// Tears down any existing connection, then dials the server again
    /// through the config's [`crate::BackoffSchedule`] and re-sends the
    /// `Hello`. An open circuit breaker fails fast instead of dialing at
    /// all; a successful dial closes it.
    fn reconnect(&mut self) -> Result<(), ClusterError> {
        self.teardown();
        if !self.breaker.allow(Instant::now()) {
            return Err(ClusterError::Disconnected);
        }
        let mut last_err = ClusterError::Disconnected;
        for delay in self.cfg.backoff().delays() {
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            let stream = match TcpStream::connect(self.addr) {
                Ok(s) => s,
                Err(e) => {
                    last_err = e.into();
                    continue;
                }
            };
            let _ = stream.set_nodelay(true);
            if let Err(e) = stream.set_read_timeout(Some(self.cfg.request_timeout)) {
                last_err = e.into();
                continue;
            }
            let write_half = match stream.try_clone() {
                Ok(s) => s,
                Err(e) => {
                    last_err = e.into();
                    continue;
                }
            };
            let write = Arc::new(Mutex::new(write_half));
            let hello = Frame::hello_for(self.rank, self.cfg.wire_codec);
            if let Err(e) = write_frame(&mut *write.lock(), &hello) {
                last_err = e;
                continue;
            }
            let hb_stop = StopSignal::new();
            let hb = {
                let write = Arc::clone(&write);
                let stop = Arc::clone(&hb_stop);
                let interval = self.cfg.heartbeat_interval;
                std::thread::spawn(move || {
                    while !stop.wait(interval) {
                        let sent = write_frame(
                            &mut *write.lock(),
                            &Frame::new(FrameKind::Heartbeat, 0, Vec::new()),
                        );
                        if sent.is_err() {
                            // The request path will notice and reconnect;
                            // a beating heart on a dead socket helps nobody.
                            break;
                        }
                    }
                })
            };
            self.conn = Some(Conn { read: stream, write, hb_stop, hb: Some(hb) });
            self.breaker.record_success();
            return Ok(());
        }
        self.breaker.record_failure(Instant::now());
        Err(last_err)
    }

    /// The reconnect circuit breaker's current state.
    pub fn breaker_state(&mut self) -> BreakerState {
        self.breaker.state(Instant::now())
    }

    fn teardown(&mut self) {
        if let Some(mut conn) = self.conn.take() {
            conn.hb_stop.stop();
            let _ = conn.read.shutdown(Shutdown::Both);
            if let Some(hb) = conn.hb.take() {
                let _ = hb.join();
            }
        }
    }

    /// Writes a frame, reconnecting and retrying once if the write
    /// itself fails.
    fn write_with_retry(&mut self, frame: &Frame) -> Result<u64, ClusterError> {
        match self.write_frame_now(frame) {
            Ok(n) => Ok(n),
            Err(_) => {
                self.reconnect()?;
                self.write_frame_now(frame)
            }
        }
    }

    fn write_frame_now(&mut self, frame: &Frame) -> Result<u64, ClusterError> {
        let conn = self.conn.as_ref().ok_or(ClusterError::Disconnected)?;
        write_frame(&mut *conn.write.lock(), frame)
    }

    /// Sends a blocking request and waits for the matching reply.
    pub fn request<Req: WireMsg, Resp: WireMsg>(
        &mut self,
        req: &Req,
    ) -> Result<Resp, ClusterError> {
        let t0 = Instant::now();
        let payload = req.encoded();
        let encode = t0.elapsed().as_secs_f64();
        self.stats.serialize_seconds += encode;
        self.span("codec", t0, encode);
        self.seq += 1;
        let seq = self.seq;
        self.write_with_retry(&Frame::new(FrameKind::Request, seq, payload))?;

        let sent = Instant::now();
        loop {
            let conn = self.conn.as_mut().ok_or(ClusterError::Disconnected)?;
            let (frame, _wire) = match read_frame(&mut conn.read) {
                Ok(ok) => ok,
                Err(e) => {
                    // Timeouts and disconnects both leave the stream in
                    // an unknown framing state; drop the connection so
                    // the next operation starts clean.
                    self.breaker.record_failure(Instant::now());
                    self.teardown();
                    return Err(e);
                }
            };
            if frame.kind != FrameKind::Reply {
                self.teardown();
                return Err(ClusterError::Protocol(format!(
                    "server sent unexpected {:?} frame to a worker",
                    frame.kind
                )));
            }
            if frame.seq != seq {
                // A stale reply from before a reconnect; skip it, but
                // keep the overall deadline.
                if sent.elapsed() > self.cfg.request_timeout {
                    self.teardown();
                    return Err(ClusterError::Timeout);
                }
                continue;
            }
            // Requests/oneways/bytes are counted server-side; recording
            // them here too would double-count after the backend merge.
            let rtt = sent.elapsed().as_secs_f64();
            self.stats.rtt.record(rtt);
            self.span("comm", sent, rtt);
            let t0 = Instant::now();
            let resp = match Resp::decoded(&frame.payload) {
                Ok(resp) => resp,
                Err(e) => {
                    // The frame layer vouched for the bytes, but the codec
                    // rejected them: the connection's protocol state is
                    // suspect, so start the next operation from a clean
                    // reconnect instead of reading mid-conversation.
                    self.teardown();
                    return Err(e);
                }
            };
            let decode = t0.elapsed().as_secs_f64();
            self.stats.serialize_seconds += decode;
            self.span("codec", t0, decode);
            return Ok(resp);
        }
    }

    /// Fire-and-forget send.
    pub fn send<Req: WireMsg>(&mut self, req: &Req) -> Result<(), ClusterError> {
        let t0 = Instant::now();
        let payload = req.encoded();
        let encode = t0.elapsed().as_secs_f64();
        self.stats.serialize_seconds += encode;
        self.span("codec", t0, encode);
        self.seq += 1;
        let frame = Frame::new(FrameKind::Oneway, self.seq, payload);
        self.write_with_retry(&frame)?;
        Ok(())
    }

    /// Performs the clean `Goodbye` handshake and closes the connection.
    /// Idempotent.
    pub fn finish(&mut self) -> Result<(), ClusterError> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        self.seq += 1;
        let res = self.write_frame_now(&Frame::new(FrameKind::Goodbye, self.seq, Vec::new()));
        self.teardown();
        res.map(|_| ())
    }

    /// Abruptly kills the transport — no `Goodbye`, sockets closed — as a
    /// fault-plan crash. Unlike [`NetWorker::finish`] the worker is *not*
    /// marked finished, so the next request/send after a restart dials the
    /// server again, re-sends `Hello`, and revives the rank.
    pub fn crash_transport(&mut self) {
        self.teardown();
    }

    /// Writes a frame whose CRC deliberately disagrees with its payload —
    /// the wire-level expression of a corrupted message. The server's
    /// reader rejects it and drops the connection; the connection is torn
    /// down locally too so the next operation starts from a clean
    /// reconnect instead of stalling on a reply that will never come.
    pub fn inject_corrupt_frame(&mut self) {
        if let Some(conn) = self.conn.as_ref() {
            let payload = b"deliberately corrupted payload";
            let mut buf = [0u8; crate::frame::HEADER_LEN];
            buf[0..4].copy_from_slice(&crate::frame::MAGIC.to_le_bytes());
            buf[4..6].copy_from_slice(&crate::frame::VERSION.to_le_bytes());
            buf[6] = FrameKind::Oneway as u8;
            buf[7] = 0;
            self.seq += 1;
            buf[8..16].copy_from_slice(&self.seq.to_le_bytes());
            buf[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
            let bad_crc = crate::frame::crc32(payload) ^ 0xFFFF_FFFF;
            buf[20..24].copy_from_slice(&bad_crc.to_le_bytes());
            {
                use std::io::Write;
                let mut write = conn.write.lock();
                let _ = write.write_all(&buf);
                let _ = write.write_all(payload);
                let _ = write.flush();
            }
        }
        self.teardown();
    }

    /// Simulates a *hung* worker for fault-injection tests: stops all
    /// traffic (heartbeats included) while leaving the socket open, so
    /// the server can only detect the loss via its heartbeat timeout.
    /// The leaked socket closes when the process exits.
    pub fn hang(mut self) {
        self.finished = true; // suppress the Drop-path Goodbye
        if let Some(mut conn) = self.conn.take() {
            conn.hb_stop.stop();
            if let Some(hb) = conn.hb.take() {
                let _ = hb.join();
            }
            std::mem::forget(conn.read);
            std::mem::forget(conn.write);
        }
    }

    /// Worker-side transport statistics accumulated so far (RTTs and
    /// serialization time; byte totals are accounted server-side).
    pub fn take_stats(&mut self) -> TransportStats {
        std::mem::take(&mut self.stats)
    }
}

impl Drop for NetWorker {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

// Fault-plan hooks: a crash is an abrupt socket kill (the restart delay is
// slept by the backend's worker loop), and wire corruption is a real
// bad-CRC frame that exercises the server's per-connection recovery. Link
// delays use the default wall-clock sleep.
impl FaultHooks for NetWorker {
    fn fault_crash(&mut self, _restart_after_ms: Option<u32>) {
        self.crash_transport();
    }

    fn fault_corrupt_wire(&mut self) {
        self.inject_corrupt_frame();
    }
}

impl<Req: WireMsg, Resp: WireMsg> WorkerLink<Req, Resp> for NetWorker {
    fn worker(&self) -> usize {
        self.rank
    }

    fn request(&mut self, req: Req) -> Result<Resp, ClusterError> {
        NetWorker::request(self, &req)
    }

    fn send(&mut self, req: Req) -> Result<(), ClusterError> {
        NetWorker::send(self, &req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn breaker_opens_after_repeated_reconnect_failures_and_fails_fast() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut cfg = NetConfig::fast();
        cfg.connect_attempts = 1;
        cfg.request_timeout = Duration::from_millis(100);
        cfg.breaker = crate::breaker::BreakerConfig {
            failure_threshold: 2,
            window: Duration::from_secs(5),
            cooldown: Duration::from_secs(5), // long: stays Open for the test
            cooldown_cap: Duration::from_secs(5),
        };
        let accepted = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            stream
        });
        let mut w = NetWorker::connect(addr, 0, cfg).unwrap();
        assert_eq!(w.breaker_state(), BreakerState::Closed);
        // Server side (and the listener) go away entirely.
        drop(accepted.join().unwrap());
        // Failures accumulate — the dead read, then a refused redial —
        // until the breaker trips.
        for _ in 0..4 {
            if w.request::<u32, u32>(&1).is_ok() {
                panic!("no server to answer");
            }
            if w.breaker_state() == BreakerState::Open {
                break;
            }
        }
        assert_eq!(w.breaker_state(), BreakerState::Open);
        // Open breaker: the next request fails fast, without dialing.
        let t0 = Instant::now();
        assert!(w.request::<u32, u32>(&1).is_err());
        assert!(t0.elapsed() < Duration::from_millis(50), "open breaker must not dial");
        w.finished = true; // skip the Drop-path Goodbye on a dead socket
    }
}
