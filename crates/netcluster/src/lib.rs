//! # lcasgd-netcluster
//!
//! The real-sockets member of the backend family: a TCP parameter server
//! speaking the same pull / push-state / push-grad protocol as the
//! discrete-event simulator and the in-process thread scaffold, behind
//! the same [`ClusterBackend`] trait — so every algorithm in lcasgd-core
//! runs over loopback (or a real network) unchanged.
//!
//! Pieces:
//!
//! * [`frame`] — the length-prefixed binary wire format: magic,
//!   protocol version, frame kind, sequence number and CRC-32 payload
//!   checksum (see the module docs for the byte layout);
//! * [`NetServer`] — accept loop + per-connection reader threads
//!   multiplexed onto one serialized Algorithm-2 event loop, with
//!   heartbeat-based dead-worker reaping;
//! * [`NetWorker`] — the client: bounded-exponential-backoff connect and
//!   reconnect, per-request deadlines, a background heartbeat thread,
//!   and a clean `Goodbye` handshake;
//! * [`NetCluster`] — the [`ClusterBackend`] glue that launches a
//!   loopback server plus M in-process worker threads, for tests,
//!   examples and backend-equivalence experiments.
//!
//! Transport accounting: the server counts bytes and messages; each
//! worker measures its own request round trips and serialization time.
//! [`NetCluster`] merges both sides into one
//! [`TransportStats`](lcasgd_simcluster::TransportStats).

pub mod breaker;
pub mod config;
pub mod frame;
pub mod pool;
pub mod reactor;
pub mod server;
pub mod worker;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use config::{BackoffSchedule, NetConfig, Transport};
pub use pool::BufferPool;
pub use reactor::{ReactorServer, COALESCE_PHASE};
pub use server::NetServer;
pub use worker::NetWorker;

use frame::{read_frame, write_frame, Frame, FrameKind};
use lcasgd_simcluster::{
    ClusterBackend, ClusterError, FaultPlan, FaultyLink, ReplicaDuplex, ReplicaDuplexPair,
    ServerCtx, TraceHook, TransportStats, WireMsg, WorkerLink,
};
use parking_lot::Mutex;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

/// [`ReplicaDuplex`] endpoint over a loopback TCP stream: every
/// replication payload rides one CRC-checked [`Frame`], so the
/// primary→standby stream exercises the same wire format (magic, version,
/// sequence, checksum) as worker traffic. The primary's frames are
/// `Request`s, the standby's acknowledgements `Reply`s.
struct TcpReplicaDuplex {
    stream: TcpStream,
    kind: FrameKind,
    seq: u64,
}

impl ReplicaDuplex for TcpReplicaDuplex {
    fn send(&mut self, payload: &[u8]) -> Result<(), ClusterError> {
        self.seq += 1;
        write_frame(&mut self.stream, &Frame::new(self.kind, self.seq, payload.to_vec()))?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, ClusterError> {
        let (frame, _wire) = read_frame(&mut self.stream)?;
        Ok(frame.payload)
    }
}

/// Builds a connected CRC-framed loopback pair: `(primary_end,
/// standby_end)`.
fn tcp_replica_pair() -> Result<(TcpReplicaDuplex, TcpReplicaDuplex), ClusterError> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
    let dial = TcpStream::connect(listener.local_addr()?)?;
    let (accepted, _peer) = listener.accept()?;
    dial.set_nodelay(true)?;
    accepted.set_nodelay(true)?;
    Ok((
        TcpReplicaDuplex { stream: dial, kind: FrameKind::Request, seq: 0 },
        TcpReplicaDuplex { stream: accepted, kind: FrameKind::Reply, seq: 0 },
    ))
}

/// The server implementation selected by [`config::Transport`], bound and
/// ready to serve. Both speak the identical wire protocol; they differ
/// only in how the sockets are driven.
enum AnyServer {
    Threaded(NetServer),
    Reactor(ReactorServer),
}

impl AnyServer {
    fn bind(addr: SocketAddr, workers: usize, cfg: NetConfig) -> std::io::Result<AnyServer> {
        Ok(match cfg.transport {
            Transport::Threaded => AnyServer::Threaded(NetServer::bind(addr, workers, cfg)?),
            Transport::Reactor => AnyServer::Reactor(ReactorServer::bind(addr, workers, cfg)?),
        })
    }

    fn local_addr(&self) -> std::io::Result<SocketAddr> {
        match self {
            AnyServer::Threaded(s) => s.local_addr(),
            AnyServer::Reactor(s) => s.local_addr(),
        }
    }

    fn set_trace_hook(&mut self, hook: Arc<dyn TraceHook>) {
        match self {
            AnyServer::Threaded(s) => s.set_trace_hook(hook),
            AnyServer::Reactor(s) => s.set_trace_hook(hook),
        }
    }

    fn serve<Req, Resp, S>(self, server_fn: S) -> Result<TransportStats, ClusterError>
    where
        Req: WireMsg,
        Resp: WireMsg,
        S: FnMut(usize, Req, &mut ServerCtx<Resp>),
    {
        match self {
            AnyServer::Threaded(s) => s.serve(server_fn),
            AnyServer::Reactor(s) => s.serve(server_fn),
        }
    }
}

/// TCP instantiation of [`ClusterBackend`]: one server (reactor by
/// default, see [`config::Transport`]) and M `NetWorker` threads over
/// loopback by default.
pub struct NetCluster {
    workers: usize,
    cfg: NetConfig,
    addr: SocketAddr,
    fault_plan: Option<FaultPlan>,
    trace_hook: Option<Arc<dyn TraceHook>>,
}

impl NetCluster {
    /// A loopback cluster on an OS-assigned port with default timeouts.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        NetCluster {
            workers,
            cfg: NetConfig::default(),
            addr: SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0),
            fault_plan: None,
            trace_hook: None,
        }
    }

    /// Overrides the liveness/retry configuration.
    pub fn with_config(mut self, cfg: NetConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Binds the server to a specific address instead of an ephemeral
    /// loopback port.
    pub fn with_addr(mut self, addr: SocketAddr) -> Self {
        self.addr = addr;
        self
    }

    /// Attaches a fault schedule: each worker link is wrapped in a
    /// [`FaultyLink`], crashes kill the TCP transport abruptly (no
    /// `Goodbye`), and a crashed worker redials + re-`Hello`s after its
    /// restart delay.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

impl ClusterBackend for NetCluster {
    fn workers(&self) -> usize {
        self.workers
    }

    fn wire_codec(&self) -> lcasgd_simcluster::WireCodec {
        self.cfg.wire_codec
    }

    fn attach_trace_hook(&mut self, hook: Arc<dyn TraceHook>) {
        self.trace_hook = Some(hook);
    }

    fn replica_duplex(&mut self) -> Result<ReplicaDuplexPair, ClusterError> {
        let (primary, standby) = tcp_replica_pair()?;
        Ok((Box::new(primary), Box::new(standby)))
    }

    fn run<Req, Resp, S, W>(
        self,
        server_fn: S,
        worker_fn: W,
    ) -> Result<TransportStats, ClusterError>
    where
        Req: WireMsg + Send + 'static,
        Resp: WireMsg + Send + 'static,
        S: FnMut(usize, Req, &mut ServerCtx<Resp>),
        W: Fn(usize, &mut dyn WorkerLink<Req, Resp>) + Send + Sync,
    {
        let m = self.workers;
        let mut server = AnyServer::bind(self.addr, m, self.cfg.clone())?;
        if let Some(hook) = &self.trace_hook {
            server.set_trace_hook(Arc::clone(hook));
        }
        let addr = server.local_addr()?;
        let plan = self.fault_plan;
        let hook = self.trace_hook;
        let worker_stats: Mutex<TransportStats> = Mutex::new(TransportStats::default());
        let mut server_result: Result<TransportStats, ClusterError> =
            Err(ClusterError::Disconnected);

        std::thread::scope(|scope| {
            for w in 0..m {
                let cfg = self.cfg.clone();
                let plan = plan.clone();
                let hook = hook.clone();
                let worker_fn = &worker_fn;
                let worker_stats = &worker_stats;
                scope.spawn(move || {
                    // A worker that cannot connect is simply absent; the
                    // server writes its rank off after the hello timeout
                    // and the survivors keep training.
                    let Ok(mut link) = NetWorker::connect(addr, w, cfg) else {
                        return;
                    };
                    if let Some(hook) = hook {
                        link.set_trace_hook(hook);
                    }
                    // A panicking worker must still hang up cleanly, or
                    // the server would wait out the heartbeat timeout.
                    let (mut link, outcome) = match plan {
                        None => {
                            let mut link = link;
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    worker_fn(w, &mut link)
                                }));
                            (link, outcome)
                        }
                        Some(plan) => {
                            let mut faulty = FaultyLink::new(link, w, &plan);
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    loop {
                                        worker_fn(w, &mut faulty);
                                        let Some(delay_ms) = faulty.crashed_restart_ms() else {
                                            break; // finished, or dead for good
                                        };
                                        std::thread::sleep(std::time::Duration::from_millis(
                                            u64::from(delay_ms),
                                        ));
                                        // The next operation redials and
                                        // re-Hellos, reviving the rank.
                                        faulty.resume();
                                    }
                                }));
                            (faulty.into_inner(), outcome)
                        }
                    };
                    let _ = link.finish();
                    worker_stats.lock().merge(&link.take_stats());
                    if let Err(payload) = outcome {
                        std::panic::resume_unwind(payload);
                    }
                });
            }
            server_result = server.serve(server_fn);
        });

        let mut stats = server_result?;
        stats.merge(&worker_stats.into_inner());
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn fast(workers: usize) -> NetCluster {
        NetCluster::new(workers).with_config(NetConfig::fast())
    }

    #[test]
    fn request_reply_roundtrips_over_tcp() {
        let mut served = 0u32;
        let stats = fast(4)
            .run(
                |_w, x: u32, ctx: &mut ServerCtx<u32>| {
                    served += 1;
                    ctx.reply(x * 2);
                },
                |_w, h| {
                    for i in 0..8u32 {
                        assert_eq!(h.request(i).unwrap(), i * 2);
                    }
                },
            )
            .unwrap();
        assert_eq!(served, 32);
        assert_eq!(stats.requests, 32);
        assert_eq!(stats.rtt.count(), 32);
        assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
    }

    #[test]
    fn oneway_sums_arrive() {
        // No flush needed: oneways and the Goodbye ride the same ordered
        // connection, so the server sums everything before terminating.
        let mut sum = 0u64;
        let stats = fast(3)
            .run(
                |_w, x: u64, _ctx: &mut ServerCtx<()>| sum += x,
                |_w, h| {
                    for i in 1..=10u64 {
                        h.send(i).unwrap();
                    }
                },
            )
            .unwrap();
        assert_eq!(sum, 3 * 55);
        assert_eq!(stats.oneways, 30);
    }

    #[test]
    fn deferred_replies_release_a_barrier() {
        let mut parked: Vec<usize> = Vec::new();
        fast(4)
            .run(
                |w, round: u32, ctx: &mut ServerCtx<u32>| {
                    parked.push(w);
                    if parked.len() == 4 {
                        for t in parked.drain(..) {
                            ctx.reply_to(t, round);
                        }
                    }
                },
                |_w, h| {
                    for round in 0..3u32 {
                        assert_eq!(h.request(round).unwrap(), round);
                    }
                },
            )
            .unwrap();
    }

    #[test]
    fn reply_to_idle_worker_is_a_protocol_error() {
        let err = fast(2)
            .run(
                |_w, _x: u8, ctx: &mut ServerCtx<u8>| ctx.reply_to(1, 0),
                |w, h| {
                    if w == 0 {
                        let _ = h.request(0);
                    } else {
                        // Keep rank 1 alive but idle until the server
                        // aborts; it must never block the run's exit.
                        std::thread::sleep(Duration::from_millis(50));
                    }
                },
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::Protocol(_)));
    }

    #[test]
    fn hung_worker_is_reaped_and_survivors_finish() {
        let finished = AtomicUsize::new(0);
        let cfg = NetConfig::fast();
        let server = NetServer::bind("127.0.0.1:0", 3, cfg.clone()).unwrap();
        let addr = server.local_addr().unwrap();

        std::thread::scope(|scope| {
            for w in 0..3usize {
                let cfg = cfg.clone();
                let finished = &finished;
                scope.spawn(move || {
                    let mut link = NetWorker::connect(addr, w, cfg).unwrap();
                    let first: u32 = link.request(&7u32).unwrap();
                    assert_eq!(first, 14);
                    if w == 2 {
                        // Socket stays open, all traffic stops: only the
                        // heartbeat timeout can catch this.
                        link.hang();
                        return;
                    }
                    for _ in 0..20 {
                        let _: u32 = link.request(&7u32).unwrap();
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    link.finish().unwrap();
                    finished.fetch_add(1, Ordering::SeqCst);
                });
            }
            let stats =
                server.serve(|_w, x: u32, ctx: &mut ServerCtx<u32>| ctx.reply(x * 2)).unwrap();
            assert!(stats.requests >= 41);
        });
        assert_eq!(finished.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn replica_duplex_roundtrips_crc_frames_over_loopback() {
        let (mut primary, mut standby) =
            NetCluster::new(2).replica_duplex().expect("loopback pair");
        let standby_thread = std::thread::spawn(move || {
            // Echo each payload back reversed until the primary hangs up.
            let mut served = 0u32;
            while let Ok(mut bytes) = standby.recv() {
                bytes.reverse();
                standby.send(&bytes).unwrap();
                served += 1;
            }
            served
        });
        for i in 0..8u8 {
            let payload = vec![i, i + 1, i + 2];
            primary.send(&payload).unwrap();
            let mut back = primary.recv().unwrap();
            back.reverse();
            assert_eq!(back, payload);
        }
        drop(primary); // EOF → the standby's recv errors out
        assert_eq!(standby_thread.join().unwrap(), 8);
    }

    #[test]
    fn bind_and_connect_reject_invalid_configs() {
        let mut bad = NetConfig::fast();
        bad.heartbeat_timeout = Duration::from_millis(5); // below the 20ms interval
        let err = match NetServer::bind("127.0.0.1:0", 1, bad) {
            Err(e) => e,
            Ok(_) => panic!("inverted heartbeat windows must be rejected"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("heartbeat_timeout"), "unhelpful error: {err}");

        let server = NetServer::bind("127.0.0.1:0", 1, NetConfig::fast()).unwrap();
        let addr = server.local_addr().unwrap();
        let mut bad = NetConfig::fast();
        bad.request_timeout = Duration::ZERO;
        let err = match NetWorker::connect(addr, 0, bad) {
            Err(e) => e,
            Ok(_) => panic!("zero request_timeout must be rejected"),
        };
        assert!(
            matches!(&err, ClusterError::Protocol(why) if why.contains("request_timeout")),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn worker_reconnects_after_server_side_drop() {
        // A flaky worker whose heartbeat interval exceeds the server's
        // timeout goes silent between requests and gets reaped; its next
        // successful request must ride the automatic reconnect +
        // re-Hello. A second, healthy worker keeps the run alive while
        // the flaky rank is dead.
        let server_cfg = NetConfig::fast();
        let healthy_cfg = NetConfig::fast();
        let mut flaky_cfg = NetConfig::fast();
        flaky_cfg.heartbeat_interval = Duration::from_secs(30); // silence
        flaky_cfg.request_timeout = Duration::from_millis(300);

        let server = NetServer::bind("127.0.0.1:0", 2, server_cfg.clone()).unwrap();
        let addr = server.local_addr().unwrap();
        let flaky_done = std::sync::atomic::AtomicBool::new(false);

        std::thread::scope(|scope| {
            let flaky_done = &flaky_done;
            scope.spawn(move || {
                let mut link = NetWorker::connect(addr, 0, flaky_cfg).unwrap();
                assert_eq!(link.request::<u32, u32>(&1).unwrap(), 2);
                // Silence long past the server's 200ms heartbeat timeout.
                std::thread::sleep(Duration::from_millis(500));
                // The old connection is dead server-side. Depending on
                // how the RST races the write, the first attempt may
                // reconnect transparently or surface one error; within a
                // few tries the reconnect path must land a request.
                let mut revived = None;
                for _ in 0..4 {
                    if let Ok(v) = link.request::<u32, u32>(&3) {
                        revived = Some(v);
                        break;
                    }
                }
                assert_eq!(revived, Some(6), "reconnect never recovered the link");
                link.finish().unwrap();
                flaky_done.store(true, Ordering::SeqCst);
            });
            scope.spawn(move || {
                let mut link = NetWorker::connect(addr, 1, healthy_cfg).unwrap();
                while !flaky_done.load(Ordering::SeqCst) {
                    let _: u32 = link.request(&5u32).unwrap();
                    std::thread::sleep(Duration::from_millis(20));
                }
                link.finish().unwrap();
            });
            server.serve(|_w, x: u32, ctx: &mut ServerCtx<u32>| ctx.reply(x * 2)).unwrap();
        });
    }
}
