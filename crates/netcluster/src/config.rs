//! Tuning knobs for the TCP backend's liveness machinery.

use crate::breaker::BreakerConfig;
use lcasgd_simcluster::WireCodec;
use std::time::Duration;

/// Which server implementation answers the cluster's sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// One readiness-driven reactor thread owns every connection
    /// ([`crate::ReactorServer`]): nonblocking sockets, pooled read
    /// buffers, pull-reply coalescing. The default.
    #[default]
    Reactor,
    /// The original thread-per-connection server ([`crate::NetServer`]):
    /// one reader thread per socket feeding a serialized apply loop. Kept
    /// as the bench baseline and as a fallback.
    Threaded,
}

/// The bounded-exponential reconnect schedule derived from a
/// [`NetConfig`]: attempt 0 dials immediately, attempt `i > 0` waits
/// `initial · 2^(i-1)` first, clamped to `cap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffSchedule {
    attempts: u32,
    initial: Duration,
    cap: Duration,
}

impl BackoffSchedule {
    pub fn new(attempts: u32, initial: Duration, cap: Duration) -> Self {
        BackoffSchedule { attempts: attempts.max(1), initial, cap }
    }

    /// Number of dial attempts the schedule allows (≥ 1).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The delay to sleep *before* each attempt, in order. Exactly
    /// [`BackoffSchedule::attempts`] entries; the first is always zero.
    pub fn delays(&self) -> impl Iterator<Item = Duration> + '_ {
        let (initial, cap) = (self.initial, self.cap);
        (0..self.attempts).map(move |i| {
            if i == 0 {
                Duration::ZERO
            } else {
                let doubled = initial.saturating_mul(1u32 << (i - 1).min(30));
                doubled.min(cap)
            }
        })
    }

    /// Total time the schedule can spend sleeping (excludes dial time).
    pub fn total_delay(&self) -> Duration {
        self.delays().sum()
    }
}

/// Timeouts and retry policy shared by [`crate::NetServer`] and
/// [`crate::NetWorker`]. The invariants that make the protocol live:
///
/// * `heartbeat_interval` ≪ `heartbeat_timeout`, so a healthy-but-idle
///   worker is never reaped (several beats fit in one timeout window);
/// * `request_timeout` bounds how long a worker blocks on a reply, so a
///   dead server surfaces as [`lcasgd_simcluster::ClusterError::Timeout`]
///   instead of a hang.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// How often a worker's background thread emits a `Heartbeat`.
    pub heartbeat_interval: Duration,
    /// Server-side: a connection with no traffic for this long is
    /// dropped and its worker declared dead.
    pub heartbeat_timeout: Duration,
    /// Server-side: a rank that never says `Hello` within this window
    /// (measured from serve start) is written off, so one crashed-at-
    /// launch worker cannot hang the whole run.
    pub hello_timeout: Duration,
    /// Worker-side deadline for one blocking request round trip.
    pub request_timeout: Duration,
    /// Maximum connection attempts per (re)connect.
    pub connect_attempts: u32,
    /// Delay before the second connection attempt; doubles per attempt.
    pub connect_backoff: Duration,
    /// Ceiling on the exponential backoff.
    pub connect_backoff_cap: Duration,
    /// How long a primary holds the replication lease without a standby
    /// acknowledgement before it must stop serving writes and force a
    /// confirmation round trip (see `lcasgd-core`'s failover design).
    pub lease_timeout: Duration,
    /// Per-connection circuit breaker thresholds: the worker gates its
    /// redial storms and the server gates codec-failing ranks through
    /// the same error-rate window → open → half-open probe machine.
    pub breaker: BreakerConfig,
    /// Which server implementation answers the sockets.
    pub transport: Transport,
    /// How dense `f32` payloads are packed on the wire. Negotiated at
    /// `Hello` time: the server closes any connection advertising a
    /// different codec. [`WireCodec::F32`] is byte-identical to the seed
    /// protocol (including the 4-byte `Hello` payload).
    pub wire_codec: WireCodec,
    /// Reactor-only: answer every pull carrying the same coalescing key
    /// from one cached encoding per server-version tick instead of
    /// re-encoding per request. Replies are byte-identical either way;
    /// disabling this only exists for A/B tests.
    pub pull_coalescing: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            heartbeat_interval: Duration::from_millis(250),
            heartbeat_timeout: Duration::from_secs(2),
            hello_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            connect_attempts: 5,
            connect_backoff: Duration::from_millis(25),
            connect_backoff_cap: Duration::from_secs(1),
            lease_timeout: Duration::from_millis(500),
            breaker: BreakerConfig::default(),
            transport: Transport::Reactor,
            wire_codec: WireCodec::F32,
            pull_coalescing: true,
        }
    }
}

impl NetConfig {
    /// Aggressive timeouts for tests: failures are detected in tens of
    /// milliseconds instead of seconds.
    pub fn fast() -> Self {
        NetConfig {
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(200),
            hello_timeout: Duration::from_millis(1500),
            request_timeout: Duration::from_secs(5),
            connect_attempts: 5,
            connect_backoff: Duration::from_millis(5),
            connect_backoff_cap: Duration::from_millis(100),
            lease_timeout: Duration::from_millis(100),
            breaker: BreakerConfig::fast(),
            transport: Transport::Reactor,
            wire_codec: WireCodec::F32,
            pull_coalescing: true,
        }
    }

    /// The reconnect schedule this config prescribes. `NetWorker` routes
    /// every redial sleep through this — there is no other sleep in the
    /// reconnect path.
    pub fn backoff(&self) -> BackoffSchedule {
        BackoffSchedule::new(self.connect_attempts, self.connect_backoff, self.connect_backoff_cap)
    }

    /// Invariants the *server* relies on, checked at
    /// [`crate::NetServer::bind`]. Only the server's own reaping windows
    /// are validated here — a worker may legitimately run a different
    /// heartbeat cadence (the reconnect tests do exactly that), so the
    /// interval/timeout relation is a per-process property, not a
    /// cluster-wide one.
    pub fn validate_server(&self) -> Result<(), String> {
        if self.heartbeat_timeout <= self.heartbeat_interval {
            return Err(format!(
                "heartbeat_timeout ({:?}) must exceed heartbeat_interval ({:?}): a \
                 healthy-but-idle worker beats once per interval, so a timeout at or \
                 below it reaps every connection it is meant to protect",
                self.heartbeat_timeout, self.heartbeat_interval
            ));
        }
        if self.hello_timeout.is_zero() {
            return Err("hello_timeout must be non-zero: a zero window writes every rank off \
                 before its Hello can arrive"
                .to_string());
        }
        if self.lease_timeout.is_zero() {
            return Err("lease_timeout must be non-zero: a zero lease forces a standby \
                 confirmation round trip before every write"
                .to_string());
        }
        Ok(())
    }

    /// Invariants the *worker* relies on, checked at
    /// [`crate::NetWorker::connect`]. Deliberately does not compare
    /// `heartbeat_interval` against `heartbeat_timeout`: the timeout is
    /// enforced by the server against the server's own config.
    pub fn validate_worker(&self) -> Result<(), String> {
        if self.heartbeat_interval.is_zero() {
            return Err("heartbeat_interval must be non-zero: a zero interval spins the \
                 heartbeat thread flat out and floods the connection"
                .to_string());
        }
        if self.request_timeout.is_zero() {
            return Err("request_timeout must be non-zero: a zero deadline times every \
                 request out before the reply can arrive"
                .to_string());
        }
        if self.connect_attempts == 0 {
            return Err(
                "connect_attempts must be non-zero: zero attempts can never dial".to_string()
            );
        }
        if self.connect_backoff.is_zero() {
            return Err("connect_backoff must be non-zero: a zero backoff redials in a \
                 busy loop and never escapes a refusing server"
                .to_string());
        }
        if self.connect_backoff_cap < self.connect_backoff {
            return Err(format!(
                "connect_backoff_cap ({:?}) must be at least connect_backoff ({:?}): \
                 the cap bounds the doubling schedule from above",
                self.connect_backoff_cap, self.connect_backoff
            ));
        }
        if self.lease_timeout.is_zero() {
            return Err("lease_timeout must be non-zero: a zero lease forces a standby \
                 confirmation round trip before every write"
                .to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_fast_pass_both_validators() {
        for cfg in [NetConfig::default(), NetConfig::fast()] {
            cfg.validate_server().unwrap();
            cfg.validate_worker().unwrap();
        }
    }

    #[test]
    fn server_rejects_timeout_at_or_below_interval() {
        let base = NetConfig::default();
        let cfg = NetConfig { heartbeat_timeout: base.heartbeat_interval, ..base.clone() };
        let err = cfg.validate_server().unwrap_err();
        assert!(err.contains("heartbeat_timeout"), "unhelpful error: {err}");
        let cfg = NetConfig { heartbeat_timeout: base.heartbeat_interval / 2, ..base };
        cfg.validate_server().unwrap_err();
        // The same config is a legal *worker* config: the worker never
        // enforces the server's reaping window.
        cfg.validate_worker().unwrap();
    }

    #[test]
    fn server_rejects_zero_hello_and_lease_windows() {
        let cfg = NetConfig { hello_timeout: Duration::ZERO, ..NetConfig::default() };
        assert!(cfg.validate_server().unwrap_err().contains("hello_timeout"));
        let cfg = NetConfig { lease_timeout: Duration::ZERO, ..NetConfig::default() };
        assert!(cfg.validate_server().unwrap_err().contains("lease_timeout"));
    }

    #[test]
    fn worker_rejects_zero_retry_machinery() {
        let cfg = NetConfig { request_timeout: Duration::ZERO, ..NetConfig::default() };
        assert!(cfg.validate_worker().unwrap_err().contains("request_timeout"));

        let cfg = NetConfig { connect_attempts: 0, ..NetConfig::default() };
        assert!(cfg.validate_worker().unwrap_err().contains("connect_attempts"));

        let cfg = NetConfig { connect_backoff: Duration::ZERO, ..NetConfig::default() };
        assert!(cfg.validate_worker().unwrap_err().contains("connect_backoff"));

        let base = NetConfig::default();
        let cfg = NetConfig { connect_backoff_cap: base.connect_backoff / 2, ..base };
        assert!(cfg.validate_worker().unwrap_err().contains("connect_backoff_cap"));

        let cfg = NetConfig { lease_timeout: Duration::ZERO, ..NetConfig::default() };
        assert!(cfg.validate_worker().unwrap_err().contains("lease_timeout"));

        let cfg = NetConfig { heartbeat_interval: Duration::ZERO, ..NetConfig::default() };
        assert!(cfg.validate_worker().unwrap_err().contains("heartbeat_interval"));
    }

    #[test]
    fn backoff_schedule_doubles_from_zero_and_clamps_at_the_cap() {
        let cfg = NetConfig {
            connect_attempts: 6,
            connect_backoff: Duration::from_millis(25),
            connect_backoff_cap: Duration::from_millis(100),
            ..NetConfig::default()
        };
        let delays: Vec<_> = cfg.backoff().delays().collect();
        assert_eq!(
            delays,
            vec![
                Duration::ZERO,
                Duration::from_millis(25),
                Duration::from_millis(50),
                Duration::from_millis(100),
                Duration::from_millis(100),
                Duration::from_millis(100),
            ]
        );
        assert_eq!(cfg.backoff().attempts(), 6);
        assert_eq!(cfg.backoff().total_delay(), Duration::from_millis(375));
    }

    #[test]
    fn backoff_schedule_always_dials_at_least_once() {
        // connect_attempts == 0 is rejected by validate_worker, but the
        // schedule itself still guards: a zero-attempt schedule would turn
        // every reconnect into an instant failure.
        let sched = BackoffSchedule::new(0, Duration::from_millis(10), Duration::from_secs(1));
        assert_eq!(sched.attempts(), 1);
        assert_eq!(sched.delays().collect::<Vec<_>>(), vec![Duration::ZERO]);
    }

    #[test]
    fn backoff_schedule_survives_huge_attempt_counts() {
        // The shift in the doubling must not overflow for large schedules.
        let sched = BackoffSchedule::new(64, Duration::from_millis(1), Duration::from_secs(2));
        let delays: Vec<_> = sched.delays().collect();
        assert_eq!(delays.len(), 64);
        assert!(delays.iter().all(|d| *d <= Duration::from_secs(2)));
        assert_eq!(delays[63], Duration::from_secs(2));
    }

    #[test]
    fn default_transport_is_the_reactor_with_seed_codec() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.transport, Transport::Reactor);
        assert_eq!(cfg.wire_codec, WireCodec::F32);
        assert!(cfg.pull_coalescing);
    }

    #[test]
    fn slow_worker_heartbeat_is_legal_worker_side() {
        // The reconnect tests run a worker whose interval exceeds the
        // server's timeout on purpose; that asymmetry must validate.
        let cfg = NetConfig { heartbeat_interval: Duration::from_secs(30), ..NetConfig::fast() };
        cfg.validate_worker().unwrap();
    }
}
