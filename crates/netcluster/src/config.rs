//! Tuning knobs for the TCP backend's liveness machinery.

use crate::breaker::BreakerConfig;
use std::time::Duration;

/// Timeouts and retry policy shared by [`crate::NetServer`] and
/// [`crate::NetWorker`]. The invariants that make the protocol live:
///
/// * `heartbeat_interval` ≪ `heartbeat_timeout`, so a healthy-but-idle
///   worker is never reaped (several beats fit in one timeout window);
/// * `request_timeout` bounds how long a worker blocks on a reply, so a
///   dead server surfaces as [`lcasgd_simcluster::ClusterError::Timeout`]
///   instead of a hang.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// How often a worker's background thread emits a `Heartbeat`.
    pub heartbeat_interval: Duration,
    /// Server-side: a connection with no traffic for this long is
    /// dropped and its worker declared dead.
    pub heartbeat_timeout: Duration,
    /// Server-side: a rank that never says `Hello` within this window
    /// (measured from serve start) is written off, so one crashed-at-
    /// launch worker cannot hang the whole run.
    pub hello_timeout: Duration,
    /// Worker-side deadline for one blocking request round trip.
    pub request_timeout: Duration,
    /// Maximum connection attempts per (re)connect.
    pub connect_attempts: u32,
    /// Delay before the second connection attempt; doubles per attempt.
    pub connect_backoff: Duration,
    /// Ceiling on the exponential backoff.
    pub connect_backoff_cap: Duration,
    /// Per-connection circuit breaker thresholds: the worker gates its
    /// redial storms and the server gates codec-failing ranks through
    /// the same error-rate window → open → half-open probe machine.
    pub breaker: BreakerConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            heartbeat_interval: Duration::from_millis(250),
            heartbeat_timeout: Duration::from_secs(2),
            hello_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            connect_attempts: 5,
            connect_backoff: Duration::from_millis(25),
            connect_backoff_cap: Duration::from_secs(1),
            breaker: BreakerConfig::default(),
        }
    }
}

impl NetConfig {
    /// Aggressive timeouts for tests: failures are detected in tens of
    /// milliseconds instead of seconds.
    pub fn fast() -> Self {
        NetConfig {
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(200),
            hello_timeout: Duration::from_millis(1500),
            request_timeout: Duration::from_secs(5),
            connect_attempts: 5,
            connect_backoff: Duration::from_millis(5),
            connect_backoff_cap: Duration::from_millis(100),
            breaker: BreakerConfig::fast(),
        }
    }
}
