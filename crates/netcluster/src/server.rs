//! The parameter-server side of the TCP backend.
//!
//! `NetServer` accepts up to M worker connections and multiplexes their
//! frames onto one serialized event loop — Algorithm 2's `repeat … until
//! forever`, with real sockets instead of a virtual clock. Each accepted
//! connection gets a reader thread that parses frames and forwards them
//! over an MPSC channel; the serve loop owns all mutable server state, so
//! the algorithm closure needs no locking.
//!
//! Liveness: any frame (heartbeats included) refreshes a connection's
//! `last_seen`. A connection silent past the heartbeat timeout is shut
//! down and its worker marked dead — the loop keeps serving the
//! survivors instead of stalling. A rank that never says hello within
//! the hello timeout is likewise written off. A worker may reconnect and
//! re-`Hello` at any time, superseding (and closing) its old connection
//! and reviving a dead rank.
//!
//! Termination: the run ends when every rank has either finished cleanly
//! (`Goodbye`) or been declared dead.

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::config::NetConfig;
use crate::frame::{read_frame, write_frame, Frame, FrameKind};
use lcasgd_simcluster::{ClusterError, ServerCtx, TraceHook, TransportStats, WireMsg};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// What the reader threads feed the serve loop.
enum Ev {
    /// New connection: the write half, registered under a connection id.
    Conn { id: u64, write: TcpStream },
    /// A parsed frame from connection `id` (`wire` = bytes on the wire).
    Frame { id: u64, frame: Frame, wire: u64 },
    /// Connection `id`'s reader exited (EOF, reset, or reaped).
    Closed { id: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankState {
    /// No `Hello` seen yet.
    Pending,
    /// Connected and (presumed) computing.
    Active,
    /// Sent `Goodbye`.
    Finished,
    /// Reaped by heartbeat/hello timeout or vanished without `Goodbye`.
    Dead,
}

struct ConnState {
    write: TcpStream,
    rank: Option<usize>,
    last_seen: Instant,
}

/// A bound-but-not-yet-serving parameter server.
pub struct NetServer {
    listener: TcpListener,
    workers: usize,
    cfg: NetConfig,
    trace_hook: Option<std::sync::Arc<dyn TraceHook>>,
}

impl NetServer {
    /// Binds the listener. `workers` is the number of ranks the run waits
    /// for; pass `127.0.0.1:0` as `addr` to let the OS pick a free port.
    pub fn bind(addr: impl ToSocketAddrs, workers: usize, cfg: NetConfig) -> io::Result<NetServer> {
        assert!(workers > 0, "need at least one worker");
        cfg.validate_server().map_err(|why| io::Error::new(io::ErrorKind::InvalidInput, why))?;
        Ok(NetServer { listener: TcpListener::bind(addr)?, workers, cfg, trace_hook: None })
    }

    /// Installs a span observer: server-side frame encode/decode time is
    /// reported as wall-clock `codec` spans attributed to the worker the
    /// payload belongs to.
    pub fn set_trace_hook(&mut self, hook: std::sync::Arc<dyn TraceHook>) {
        self.trace_hook = Some(hook);
    }

    /// The address workers should connect to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the serialized event loop until every rank is finished or
    /// dead. Returns server-side transport statistics (worker-perceived
    /// RTTs are measured by [`crate::worker::NetWorker`]).
    pub fn serve<Req, Resp, S>(self, mut server_fn: S) -> Result<TransportStats, ClusterError>
    where
        Req: WireMsg,
        Resp: WireMsg,
        S: FnMut(usize, Req, &mut ServerCtx<Resp>),
    {
        let m = self.workers;
        let cfg = &self.cfg;
        let hook = self.trace_hook.clone();
        let addr = self.listener.local_addr()?;
        let tick = (cfg.heartbeat_timeout / 4).max(Duration::from_millis(2));
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<Ev>();

        let mut conns: HashMap<u64, ConnState> = HashMap::new();
        let mut rank_conn: Vec<Option<u64>> = vec![None; m];
        // Per-rank circuit breakers driven by codec failures: a rank whose
        // frames keep failing the payload codec has its redials refused
        // until the cooldown admits a half-open probe.
        let mut rank_breakers: Vec<CircuitBreaker> =
            (0..m).map(|_| CircuitBreaker::new(cfg.breaker.clone())).collect();
        let mut rank_state = vec![RankState::Pending; m];
        // Pending request seq per rank, consumed when the reply goes out.
        let mut awaiting: Vec<Option<u64>> = vec![None; m];
        let mut stats = TransportStats::default();
        let mut result: Result<(), ClusterError> = Ok(());
        let started = Instant::now();

        // Every accepted socket is registered here so teardown can force
        // readers out of blocking reads even if the connection raced the
        // serve loop's exit and never made it into `conns`.
        let accepted: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            let listener = &self.listener;
            let stop_ref = &stop;
            let accepted_ref = &accepted;
            scope.spawn(move || {
                let mut next_id = 0u64;
                loop {
                    let Ok((stream, _peer)) = listener.accept() else {
                        if stop_ref.load(Ordering::Acquire) {
                            break;
                        }
                        continue;
                    };
                    {
                        // Register under the lock so the teardown sweep
                        // either sees this socket or we see `stop`.
                        let mut registry = accepted_ref.lock();
                        if stop_ref.load(Ordering::Acquire) {
                            break;
                        }
                        if let Ok(clone) = stream.try_clone() {
                            registry.push(clone);
                        }
                    }
                    let _ = stream.set_nodelay(true);
                    let id = next_id;
                    next_id += 1;
                    let Ok(write) = stream.try_clone() else { continue };
                    if tx.send(Ev::Conn { id, write }).is_err() {
                        break;
                    }
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let mut stream = stream;
                        while let Ok((frame, wire)) = read_frame(&mut stream) {
                            if tx.send(Ev::Frame { id, frame, wire }).is_err() {
                                break;
                            }
                        }
                        let _ = tx.send(Ev::Closed { id });
                    });
                }
            });

            // Drops a rank's live connection mapping and, unless it
            // finished cleanly, declares the rank dead.
            let mark_gone = |rank: usize,
                             rank_conn: &mut Vec<Option<u64>>,
                             rank_state: &mut Vec<RankState>,
                             awaiting: &mut Vec<Option<u64>>| {
                rank_conn[rank] = None;
                if rank_state[rank] == RankState::Active {
                    rank_state[rank] = RankState::Dead;
                    awaiting[rank] = None;
                }
            };

            'serve: loop {
                let ev = match rx.recv_timeout(tick) {
                    Ok(ev) => Some(ev),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break 'serve,
                };

                match ev {
                    None => {}
                    Some(Ev::Conn { id, write }) => {
                        conns
                            .insert(id, ConnState { write, rank: None, last_seen: Instant::now() });
                    }
                    Some(Ev::Closed { id }) => {
                        if let Some(conn) = conns.remove(&id) {
                            if let Some(rank) = conn.rank {
                                if rank_conn[rank] == Some(id) {
                                    mark_gone(rank, &mut rank_conn, &mut rank_state, &mut awaiting);
                                }
                            }
                        }
                    }
                    Some(Ev::Frame { id, frame, wire }) => {
                        // A frame from an already-reaped connection races
                        // its own shutdown; ignore it.
                        let Some(conn) = conns.get_mut(&id) else { continue };
                        conn.last_seen = Instant::now();
                        match frame.kind {
                            FrameKind::Heartbeat => {}
                            FrameKind::Reply => {
                                // Workers never send replies.
                                Self::close_conn(
                                    &mut conns,
                                    id,
                                    &mut rank_conn,
                                    &mut rank_state,
                                    &mut awaiting,
                                );
                            }
                            FrameKind::Hello => {
                                let (Ok(rank), Ok(codec)) =
                                    (frame.hello_rank(), frame.hello_codec())
                                else {
                                    Self::close_conn(
                                        &mut conns,
                                        id,
                                        &mut rank_conn,
                                        &mut rank_state,
                                        &mut awaiting,
                                    );
                                    continue;
                                };
                                if rank >= m || conn.rank.is_some() || codec != cfg.wire_codec {
                                    Self::close_conn(
                                        &mut conns,
                                        id,
                                        &mut rank_conn,
                                        &mut rank_state,
                                        &mut awaiting,
                                    );
                                    continue;
                                }
                                if !rank_breakers[rank].allow(Instant::now()) {
                                    // The rank's breaker is open: refuse
                                    // the redial until the cooldown admits
                                    // a probe. `conn.rank` is still unset,
                                    // so this only drops the socket.
                                    Self::close_conn(
                                        &mut conns,
                                        id,
                                        &mut rank_conn,
                                        &mut rank_state,
                                        &mut awaiting,
                                    );
                                    continue;
                                }
                                conn.rank = Some(rank);
                                // A reconnect supersedes the old socket.
                                if let Some(old) = rank_conn[rank] {
                                    if let Some(stale) = conns.remove(&old) {
                                        let _ = stale.write.shutdown(Shutdown::Both);
                                    }
                                }
                                rank_conn[rank] = Some(id);
                                if rank_state[rank] != RankState::Finished {
                                    rank_state[rank] = RankState::Active;
                                }
                            }
                            FrameKind::Goodbye => {
                                if let Some(rank) = conn.rank {
                                    rank_state[rank] = RankState::Finished;
                                    awaiting[rank] = None;
                                }
                            }
                            FrameKind::Request | FrameKind::Oneway => {
                                let Some(rank) = conn.rank else {
                                    // Traffic before Hello: rogue peer.
                                    Self::close_conn(
                                        &mut conns,
                                        id,
                                        &mut rank_conn,
                                        &mut rank_state,
                                        &mut awaiting,
                                    );
                                    continue;
                                };
                                let expects_reply = frame.kind == FrameKind::Request;
                                stats.bytes_sent += wire;
                                if expects_reply {
                                    stats.requests += 1;
                                    awaiting[rank] = Some(frame.seq);
                                } else {
                                    stats.oneways += 1;
                                }
                                let t0 = Instant::now();
                                let req = match Req::decoded(&frame.payload) {
                                    Ok(req) => req,
                                    Err(_) => {
                                        // A payload that framed correctly
                                        // but fails the codec means this
                                        // peer's stream can't be trusted.
                                        // That is a per-connection failure,
                                        // not a run failure: drop the
                                        // connection and let the worker's
                                        // reconnect + re-Hello revive the
                                        // rank. Repeated codec failures
                                        // trip the rank's breaker, which
                                        // then refuses the re-Hello until
                                        // its cooldown passes.
                                        rank_breakers[rank].record_failure(Instant::now());
                                        Self::close_conn(
                                            &mut conns,
                                            id,
                                            &mut rank_conn,
                                            &mut rank_state,
                                            &mut awaiting,
                                        );
                                        continue;
                                    }
                                };
                                if rank_breakers[rank].state(Instant::now()) != BreakerState::Closed
                                {
                                    // The half-open probe's first frame
                                    // decoded cleanly: close the breaker
                                    // and reset its cooldown ladder.
                                    rank_breakers[rank].record_success();
                                }
                                let decode = t0.elapsed().as_secs_f64();
                                stats.serialize_seconds += decode;
                                if let Some(h) = &hook {
                                    h.wall_span(Some(rank), "codec", t0, decode);
                                }

                                let mut ctx = ServerCtx::new(rank, expects_reply);
                                server_fn(rank, req, &mut ctx);

                                for (target, resp) in ctx.take_replies() {
                                    if target >= m {
                                        result = Err(ClusterError::Protocol(format!(
                                            "reply to worker {target}, but the cluster has {m}"
                                        )));
                                        break 'serve;
                                    }
                                    if rank_state[target] == RankState::Dead {
                                        // Dropped worker: discard, like a
                                        // real PS talking to a ghost.
                                        continue;
                                    }
                                    let Some(seq) = awaiting[target].take() else {
                                        result = Err(ClusterError::Protocol(format!(
                                            "reply to worker {target}, which has no pending request"
                                        )));
                                        break 'serve;
                                    };
                                    let t0 = Instant::now();
                                    let reply = Frame::new(FrameKind::Reply, seq, resp.encoded());
                                    let encode = t0.elapsed().as_secs_f64();
                                    stats.serialize_seconds += encode;
                                    if let Some(h) = &hook {
                                        h.wall_span(Some(target), "codec", t0, encode);
                                    }
                                    let delivered = rank_conn[target]
                                        .and_then(|cid| conns.get_mut(&cid))
                                        .map(|c| write_frame(&mut c.write, &reply));
                                    match delivered {
                                        Some(Ok(n)) => stats.bytes_received += n,
                                        _ => {
                                            // Write failure or no live
                                            // connection: the worker is
                                            // gone; reap it and move on.
                                            if let Some(cid) = rank_conn[target] {
                                                Self::close_conn(
                                                    &mut conns,
                                                    cid,
                                                    &mut rank_conn,
                                                    &mut rank_state,
                                                    &mut awaiting,
                                                );
                                            } else {
                                                mark_gone(
                                                    target,
                                                    &mut rank_conn,
                                                    &mut rank_state,
                                                    &mut awaiting,
                                                );
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }

                // Reap connections silent past the heartbeat timeout.
                let now = Instant::now();
                let stale: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| now.duration_since(c.last_seen) > cfg.heartbeat_timeout)
                    .map(|(&id, _)| id)
                    .collect();
                for id in stale {
                    Self::close_conn(
                        &mut conns,
                        id,
                        &mut rank_conn,
                        &mut rank_state,
                        &mut awaiting,
                    );
                }
                // Write off ranks that never connected at all.
                if started.elapsed() > cfg.hello_timeout {
                    for state in rank_state.iter_mut() {
                        if *state == RankState::Pending {
                            *state = RankState::Dead;
                        }
                    }
                }

                if rank_state.iter().all(|s| matches!(s, RankState::Finished | RankState::Dead)) {
                    break 'serve;
                }
            }

            // Wind down: stop accepting (a self-connect unblocks the
            // blocking accept), close every accepted socket so reader
            // threads exit, and let the scope join them.
            stop.store(true, Ordering::Release);
            for socket in accepted.lock().iter() {
                let _ = socket.shutdown(Shutdown::Both);
            }
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        });

        result.map(|()| stats)
    }

    /// Hard-closes a connection and updates rank bookkeeping.
    fn close_conn(
        conns: &mut HashMap<u64, ConnState>,
        id: u64,
        rank_conn: &mut [Option<u64>],
        rank_state: &mut [RankState],
        awaiting: &mut [Option<u64>],
    ) {
        if let Some(conn) = conns.remove(&id) {
            let _ = conn.write.shutdown(Shutdown::Both);
            if let Some(rank) = conn.rank {
                if rank_conn[rank] == Some(id) {
                    rank_conn[rank] = None;
                    if rank_state[rank] == RankState::Active {
                        rank_state[rank] = RankState::Dead;
                        awaiting[rank] = None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;
    use crate::worker::NetWorker;
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Frames correctly (valid CRC) but fails the `u32` payload codec.
    fn garbage_request(seq: u64) -> Frame {
        Frame::new(FrameKind::Request, seq, vec![1, 2, 3])
    }

    fn valid_request(seq: u64, x: u32) -> Frame {
        Frame::new(FrameKind::Request, seq, x.encoded())
    }

    #[test]
    fn codec_failures_trip_the_rank_breaker_until_cooldown() {
        let mut cfg = NetConfig::fast();
        cfg.breaker = BreakerConfig {
            failure_threshold: 2,
            window: Duration::from_secs(5),
            cooldown: Duration::from_millis(500),
            cooldown_cap: Duration::from_millis(500),
        };
        let server = NetServer::bind("127.0.0.1:0", 2, cfg.clone()).unwrap();
        let addr = server.local_addr().unwrap();
        let done = AtomicBool::new(false);

        std::thread::scope(|scope| {
            let done = &done;
            // A healthy rank 1 keeps the run alive while rank 0 abuses
            // the codec from raw sockets.
            scope.spawn(move || {
                let mut link = NetWorker::connect(addr, 1, cfg).unwrap();
                while !done.load(Ordering::SeqCst) {
                    let _: u32 = link.request(&5u32).unwrap();
                    std::thread::sleep(Duration::from_millis(10));
                }
                link.finish().unwrap();
            });
            scope.spawn(move || {
                // Two codec failures (threshold 2) trip rank 0's breaker;
                // each one costs the connection.
                for seq in 0..2u64 {
                    let mut s = TcpStream::connect(addr).unwrap();
                    s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                    write_frame(&mut s, &Frame::hello(0)).unwrap();
                    write_frame(&mut s, &garbage_request(seq)).unwrap();
                    assert!(read_frame(&mut s).is_err(), "codec failure must drop the link");
                }
                // During the cooldown even a clean redial is refused: the
                // Hello is answered with a hangup, so the valid request
                // after it never sees a reply.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                write_frame(&mut s, &Frame::hello(0)).unwrap();
                let _ = write_frame(&mut s, &valid_request(10, 7));
                assert!(read_frame(&mut s).is_err(), "open breaker must refuse the redial");
                // Past the cooldown the half-open probe is admitted, and
                // its first clean frame closes the breaker again.
                std::thread::sleep(Duration::from_millis(700));
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                write_frame(&mut s, &Frame::hello(0)).unwrap();
                write_frame(&mut s, &valid_request(11, 7)).unwrap();
                let (reply, _) = read_frame(&mut s).unwrap();
                assert_eq!(reply.kind, FrameKind::Reply);
                assert_eq!(u32::decoded(&reply.payload).unwrap(), 14);
                write_frame(&mut s, &Frame::new(FrameKind::Goodbye, 12, Vec::new())).unwrap();
                done.store(true, Ordering::SeqCst);
            });
            server.serve(|_w, x: u32, ctx: &mut ServerCtx<u32>| ctx.reply(x * 2)).unwrap();
        });
    }
}
