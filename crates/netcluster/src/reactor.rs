//! Readiness-driven parameter server: one thread, all connections.
//!
//! [`crate::NetServer`] spends a thread per connection; past a few dozen
//! workers the scheduler, the per-frame allocations and the serialized
//! reply encoding dominate the apply loop. `ReactorServer` keeps the
//! protocol and its liveness semantics identical but restructures the
//! transport:
//!
//! * **One reactor thread** owns the listener and every connection as
//!   nonblocking sockets, sweeping them for readiness (a small poll loop —
//!   no epoll binding, no extra threads, trivial teardown).
//! * **Pooled read buffers**: each connection parses frames in place out
//!   of a buffer borrowed from a [`BufferPool`], returned on every close
//!   path, so connection churn stops allocating once warm.
//! * **Pull coalescing**: within a sweep, control frames and oneways
//!   (gradient pushes) are applied first and blocking requests are
//!   answered second, at the post-apply server state. Replies carrying
//!   the same coalescing key (see `ServerCtx::reply_keyed`) are then all
//!   served from one cached payload encoding + CRC — the reply header is
//!   re-stamped per request (the checksum covers only the payload), so N
//!   concurrent pulls of one weights version cost one encode instead of N.
//!
//! Coalesced replies are *byte-identical* to per-request replies by
//! construction: same payload bytes, same CRC, only the echoed `seq`
//! differs — exactly as if each had been encoded fresh.
//!
//! Ordering contract: frames from one connection are processed in arrival
//! order, except that a blocking `Request` is answered after any oneways
//! that arrived in the same sweep (from any connection). A worker blocks
//! on its own request, so a request is always the last frame of its
//! connection's batch and per-connection FIFO is preserved; cross-
//! connection ordering was never guaranteed by any backend.
//!
//! Everything else — heartbeat reaping, hello timeout, reconnect
//! supersession, per-rank circuit breakers on codec failures, dead-rank
//! reply discards, frame-exact byte accounting, Goodbye termination — is
//! the same contract as `NetServer`, verified by running the existing
//! integration suites against this transport (it is the default).

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::config::NetConfig;
use crate::frame::{crc32, header_bytes, parse_header, FrameKind, HEADER_LEN};
use crate::pool::BufferPool;
use lcasgd_simcluster::{ClusterError, ServerCtx, TraceHook, TransportStats, WireMsg};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Phase label for a coalesced (cache-served) reply. Attributed to no
/// worker: the span represents work *saved* for the whole sweep, not time
/// inside any single worker's request. Wall-clock domain, like every
/// server-side span on the TCP backend.
pub const COALESCE_PHASE: &str = "coalesce";

/// Sleep when a sweep found no work; bounds reactor latency while keeping
/// the idle loop off the CPU.
const IDLE_SLEEP: Duration = Duration::from_micros(300);

/// Smallest read window; pool buffers grow geometrically beyond it.
const READ_CHUNK: usize = 4 * 1024;

/// Coalescing cache entries kept before wholesale clearing; keys are
/// version-unique so the cache self-invalidates, this only bounds memory.
const CACHE_CAP: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankState {
    Pending,
    Active,
    Finished,
    Dead,
}

/// One queued outbound frame: a per-request header plus a payload that
/// may be shared with other replies (coalescing) or the cache.
struct PendingWrite {
    header: [u8; HEADER_LEN],
    payload: Rc<Vec<u8>>,
    /// Bytes of header+payload already written.
    off: usize,
}

struct Conn {
    stream: TcpStream,
    rank: Option<usize>,
    last_seen: Instant,
    /// Pooled read buffer; `buf[..filled]` holds unparsed stream bytes.
    buf: Vec<u8>,
    filled: usize,
    wq: VecDeque<PendingWrite>,
}

struct CachedReply {
    payload: Rc<Vec<u8>>,
    crc: u32,
}

/// A blocking request parsed this sweep, answered after all oneways.
struct PendingReq<Req> {
    rank: usize,
    seq: u64,
    req: Req,
}

/// A bound-but-not-yet-serving reactor parameter server. Drop-in for
/// [`crate::NetServer`]: same constructor shape, same `serve` contract.
pub struct ReactorServer {
    listener: TcpListener,
    workers: usize,
    cfg: NetConfig,
    trace_hook: Option<Arc<dyn TraceHook>>,
}

impl ReactorServer {
    /// Binds the listener. Pass `127.0.0.1:0` to let the OS pick a port.
    pub fn bind(
        addr: impl ToSocketAddrs,
        workers: usize,
        cfg: NetConfig,
    ) -> io::Result<ReactorServer> {
        assert!(workers > 0, "need at least one worker");
        cfg.validate_server().map_err(|why| io::Error::new(io::ErrorKind::InvalidInput, why))?;
        Ok(ReactorServer { listener: TcpListener::bind(addr)?, workers, cfg, trace_hook: None })
    }

    /// Installs a span observer (`codec` spans for encode/decode time,
    /// [`COALESCE_PHASE`] spans for cache-served replies).
    pub fn set_trace_hook(&mut self, hook: Arc<dyn TraceHook>) {
        self.trace_hook = Some(hook);
    }

    /// The address workers should connect to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the reactor loop until every rank is finished or dead.
    pub fn serve<Req, Resp, S>(self, mut server_fn: S) -> Result<TransportStats, ClusterError>
    where
        Req: WireMsg,
        Resp: WireMsg,
        S: FnMut(usize, Req, &mut ServerCtx<Resp>),
    {
        let m = self.workers;
        let cfg = &self.cfg;
        let hook = self.trace_hook.clone();
        self.listener.set_nonblocking(true)?;

        let mut pool = BufferPool::new();
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_id = 0u64;
        let mut rank_conn: Vec<Option<u64>> = vec![None; m];
        let mut rank_breakers: Vec<CircuitBreaker> =
            (0..m).map(|_| CircuitBreaker::new(cfg.breaker.clone())).collect();
        let mut rank_state = vec![RankState::Pending; m];
        let mut awaiting: Vec<Option<u64>> = vec![None; m];
        let mut stats = TransportStats::default();
        let mut result: Result<(), ClusterError> = Ok(());
        let mut cache: HashMap<u64, CachedReply> = HashMap::new();
        let mut pending: Vec<PendingReq<Req>> = Vec::new();
        let started = Instant::now();

        'serve: loop {
            let mut activity = false;

            // -- accept everything the listener has queued ------------
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let mut buf = pool.get();
                        let cap = buf.capacity().max(READ_CHUNK);
                        buf.resize(cap, 0);
                        conns.insert(
                            next_id,
                            Conn {
                                stream,
                                rank: None,
                                last_seen: Instant::now(),
                                buf,
                                filled: 0,
                                wq: VecDeque::new(),
                            },
                        );
                        next_id += 1;
                        activity = true;
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }

            // -- phase A: read every connection, apply control frames
            //    and oneways, queue blocking requests -----------------
            let ids: Vec<u64> = conns.keys().copied().collect();
            for id in ids {
                let Some(conn) = conns.get_mut(&id) else { continue };

                let mut closed = false;
                loop {
                    if conn.filled == conn.buf.len() {
                        let grown = (conn.buf.len() * 2).max(READ_CHUNK);
                        conn.buf.resize(grown, 0);
                    }
                    match conn.stream.read(&mut conn.buf[conn.filled..]) {
                        Ok(0) => {
                            closed = true;
                            break;
                        }
                        Ok(n) => {
                            conn.filled += n;
                            activity = true;
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            closed = true;
                            break;
                        }
                    }
                }

                // Take the buffer out so frame payloads can be decoded
                // in place while handlers borrow the connection table.
                let mut lbuf = std::mem::take(&mut conn.buf);
                let lfilled = std::mem::replace(&mut conn.filled, 0);
                let mut conn_rank = conn.rank;
                let mut pos = 0usize;
                let mut poison = false;
                let mut parsed_any = false;

                while lfilled - pos >= HEADER_LEN {
                    let header = match parse_header(&lbuf[pos..pos + HEADER_LEN]) {
                        Ok(h) => h,
                        Err(_) => {
                            // An unparseable header means the stream can
                            // never resynchronize: drop the connection
                            // (the threaded server's reader thread exits
                            // here too). Not a breaker event — the
                            // breaker guards the payload codec, not the
                            // framing layer.
                            poison = true;
                            break;
                        }
                    };
                    let total = HEADER_LEN + header.payload_len;
                    if lfilled - pos < total {
                        break; // incomplete frame; wait for more bytes
                    }
                    let payload = &lbuf[pos + HEADER_LEN..pos + total];
                    if crc32(payload) != header.crc {
                        poison = true;
                        break;
                    }
                    pos += total;
                    parsed_any = true;

                    match header.kind {
                        FrameKind::Heartbeat => {}
                        FrameKind::Reply => {
                            // Workers never send replies.
                            poison = true;
                            break;
                        }
                        FrameKind::Hello => {
                            let hello =
                                crate::frame::Frame::new(header.kind, header.seq, payload.to_vec());
                            let (Ok(rank), Ok(codec)) = (hello.hello_rank(), hello.hello_codec())
                            else {
                                poison = true;
                                break;
                            };
                            if rank >= m || conn_rank.is_some() || codec != cfg.wire_codec {
                                poison = true;
                                break;
                            }
                            if !rank_breakers[rank].allow(Instant::now()) {
                                // Open breaker: refuse the redial. The
                                // rank is still unbound, so this only
                                // drops the socket.
                                poison = true;
                                break;
                            }
                            conn_rank = Some(rank);
                            // A reconnect supersedes the old socket.
                            if let Some(old) = rank_conn[rank] {
                                if old != id {
                                    close_conn(
                                        &mut conns,
                                        old,
                                        &mut pool,
                                        &mut rank_conn,
                                        &mut rank_state,
                                        &mut awaiting,
                                    );
                                }
                            }
                            rank_conn[rank] = Some(id);
                            if rank_state[rank] != RankState::Finished {
                                rank_state[rank] = RankState::Active;
                            }
                        }
                        FrameKind::Goodbye => {
                            if let Some(rank) = conn_rank {
                                rank_state[rank] = RankState::Finished;
                                awaiting[rank] = None;
                            }
                        }
                        FrameKind::Request | FrameKind::Oneway => {
                            let Some(rank) = conn_rank else {
                                // Traffic before Hello: rogue peer.
                                poison = true;
                                break;
                            };
                            let expects_reply = header.kind == FrameKind::Request;
                            stats.bytes_sent += total as u64;
                            if expects_reply {
                                stats.requests += 1;
                                awaiting[rank] = Some(header.seq);
                            } else {
                                stats.oneways += 1;
                            }
                            let t0 = Instant::now();
                            let req = match Req::decoded(payload) {
                                Ok(req) => req,
                                Err(_) => {
                                    // Framed correctly but fails the
                                    // codec: per-connection failure that
                                    // feeds the rank's breaker, exactly
                                    // like the threaded server.
                                    rank_breakers[rank].record_failure(Instant::now());
                                    poison = true;
                                    break;
                                }
                            };
                            if rank_breakers[rank].state(Instant::now()) != BreakerState::Closed {
                                rank_breakers[rank].record_success();
                            }
                            let decode = t0.elapsed().as_secs_f64();
                            stats.serialize_seconds += decode;
                            if let Some(h) = &hook {
                                h.wall_span(Some(rank), "codec", t0, decode);
                            }

                            if expects_reply {
                                pending.push(PendingReq { rank, seq: header.seq, req });
                            } else {
                                let mut ctx = ServerCtx::new(rank, false);
                                server_fn(rank, req, &mut ctx);
                                if let Err(e) = deliver_replies(
                                    ctx.take_keyed_replies(),
                                    m,
                                    cfg.pull_coalescing,
                                    &mut conns,
                                    &mut pool,
                                    &mut rank_conn,
                                    &mut rank_state,
                                    &mut awaiting,
                                    &mut cache,
                                    &mut stats,
                                    &hook,
                                ) {
                                    result = Err(e);
                                    break 'serve;
                                }
                            }
                        }
                    }
                }

                // Put the (compacted) buffer back, then apply whatever
                // fate the batch decided. Every close path runs through
                // close_conn, which returns the buffer to the pool.
                if let Some(conn) = conns.get_mut(&id) {
                    if pos > 0 {
                        lbuf.copy_within(pos..lfilled, 0);
                    }
                    conn.filled = lfilled - pos;
                    conn.buf = lbuf;
                    conn.rank = conn_rank;
                    if parsed_any {
                        conn.last_seen = Instant::now();
                    }
                    if poison || closed {
                        close_conn(
                            &mut conns,
                            id,
                            &mut pool,
                            &mut rank_conn,
                            &mut rank_state,
                            &mut awaiting,
                        );
                    }
                } else {
                    // The connection vanished while its frames were being
                    // handled; its pool slot was already settled by
                    // close_conn, so the taken buffer replaces the empty
                    // one that was returned there.
                    drop(lbuf);
                }
            }

            // -- phase B: answer this sweep's blocking requests at the
            //    post-apply server state. Same-key replies coalesce. ---
            for preq in pending.drain(..) {
                if rank_state[preq.rank] != RankState::Active
                    || awaiting[preq.rank] != Some(preq.seq)
                {
                    // The connection died or said Goodbye after queueing:
                    // the worker is gone, drop its request like the
                    // threaded server drops replies to dead ranks.
                    continue;
                }
                let mut ctx = ServerCtx::new(preq.rank, true);
                server_fn(preq.rank, preq.req, &mut ctx);
                if let Err(e) = deliver_replies(
                    ctx.take_keyed_replies(),
                    m,
                    cfg.pull_coalescing,
                    &mut conns,
                    &mut pool,
                    &mut rank_conn,
                    &mut rank_state,
                    &mut awaiting,
                    &mut cache,
                    &mut stats,
                    &hook,
                ) {
                    result = Err(e);
                    break 'serve;
                }
            }

            // -- flush write queues stalled on a full socket -----------
            let stalled: Vec<u64> =
                conns.iter().filter(|(_, c)| !c.wq.is_empty()).map(|(&id, _)| id).collect();
            for id in stalled {
                let Some(conn) = conns.get_mut(&id) else { continue };
                if try_flush(conn).is_err() {
                    close_conn(
                        &mut conns,
                        id,
                        &mut pool,
                        &mut rank_conn,
                        &mut rank_state,
                        &mut awaiting,
                    );
                } else {
                    activity = true;
                }
            }

            // -- liveness sweeps --------------------------------------
            let now = Instant::now();
            let stale: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| now.duration_since(c.last_seen) > cfg.heartbeat_timeout)
                .map(|(&id, _)| id)
                .collect();
            for id in stale {
                close_conn(
                    &mut conns,
                    id,
                    &mut pool,
                    &mut rank_conn,
                    &mut rank_state,
                    &mut awaiting,
                );
            }
            if started.elapsed() > cfg.hello_timeout {
                for state in rank_state.iter_mut() {
                    if *state == RankState::Pending {
                        *state = RankState::Dead;
                    }
                }
            }

            if rank_state.iter().all(|s| matches!(s, RankState::Finished | RankState::Dead)) {
                break 'serve;
            }

            if !activity {
                std::thread::sleep(IDLE_SLEEP);
            }
        }

        // Give queued replies a bounded chance to drain before teardown
        // (a worker may still be blocked reading its final reply).
        let deadline = Instant::now() + Duration::from_millis(500);
        while conns.values().any(|c| !c.wq.is_empty()) && Instant::now() < deadline {
            let stalled: Vec<u64> =
                conns.iter().filter(|(_, c)| !c.wq.is_empty()).map(|(&id, _)| id).collect();
            for id in stalled {
                let Some(conn) = conns.get_mut(&id) else { continue };
                if try_flush(conn).is_err() {
                    conn.wq.clear();
                }
            }
            std::thread::sleep(IDLE_SLEEP);
        }

        // Teardown: every surviving connection's buffer goes back to the
        // pool; the audit proves no close path leaked one.
        let ids: Vec<u64> = conns.keys().copied().collect();
        for id in ids {
            close_conn(&mut conns, id, &mut pool, &mut rank_conn, &mut rank_state, &mut awaiting);
        }
        debug_assert_eq!(pool.outstanding(), 0, "reactor leaked read buffers");

        result.map(|()| stats)
    }
}

/// Hard-closes a connection: shuts the socket, returns the read buffer to
/// the pool, and updates rank bookkeeping (an Active rank that loses its
/// live connection is Dead until it re-Hellos).
fn close_conn(
    conns: &mut HashMap<u64, Conn>,
    id: u64,
    pool: &mut BufferPool,
    rank_conn: &mut [Option<u64>],
    rank_state: &mut [RankState],
    awaiting: &mut [Option<u64>],
) {
    if let Some(conn) = conns.remove(&id) {
        let _ = conn.stream.shutdown(Shutdown::Both);
        pool.put(conn.buf);
        if let Some(rank) = conn.rank {
            if rank_conn[rank] == Some(id) {
                rank_conn[rank] = None;
                if rank_state[rank] == RankState::Active {
                    rank_state[rank] = RankState::Dead;
                    awaiting[rank] = None;
                }
            }
        }
    }
}

/// Writes as much of `conn`'s queue as the socket will take. `Ok` means
/// the socket is healthy (queue may still be nonempty); `Err` means the
/// peer is gone and the connection should be closed.
fn try_flush(conn: &mut Conn) -> io::Result<()> {
    while let Some(front) = conn.wq.front_mut() {
        while front.off < HEADER_LEN {
            match conn.stream.write(&front.header[front.off..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => front.off += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let total = HEADER_LEN + front.payload.len();
        while front.off < total {
            match conn.stream.write(&front.payload[front.off - HEADER_LEN..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => front.off += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        conn.wq.pop_front();
    }
    Ok(())
}

/// Encodes and queues one batch of replies. Same-key replies are served
/// from the coalescing cache: one payload encoding + CRC shared across
/// requests, with a fresh header stamped per `seq`.
#[allow(clippy::too_many_arguments)]
fn deliver_replies<Resp: WireMsg>(
    replies: Vec<(usize, Resp, Option<u64>)>,
    m: usize,
    coalescing: bool,
    conns: &mut HashMap<u64, Conn>,
    pool: &mut BufferPool,
    rank_conn: &mut [Option<u64>],
    rank_state: &mut [RankState],
    awaiting: &mut [Option<u64>],
    cache: &mut HashMap<u64, CachedReply>,
    stats: &mut TransportStats,
    hook: &Option<Arc<dyn TraceHook>>,
) -> Result<(), ClusterError> {
    for (target, resp, key) in replies {
        if target >= m {
            return Err(ClusterError::Protocol(format!(
                "reply to worker {target}, but the cluster has {m}"
            )));
        }
        if rank_state[target] == RankState::Dead {
            // Dropped worker: discard, like a real PS talking to a ghost.
            continue;
        }
        let Some(seq) = awaiting[target].take() else {
            return Err(ClusterError::Protocol(format!(
                "reply to worker {target}, which has no pending request"
            )));
        };

        let t0 = Instant::now();
        let (payload, crc) = match key.filter(|_| coalescing) {
            Some(k) => {
                if let Some(hit) = cache.get(&k) {
                    // Cache hit: byte-identical to a fresh encode (same
                    // payload, same CRC), no serialize time booked —
                    // that's the whole point. The span is attributed to
                    // no worker: it is sweep-level work, not part of any
                    // single request.
                    if let Some(h) = hook {
                        h.wall_span(None, COALESCE_PHASE, t0, t0.elapsed().as_secs_f64());
                    }
                    (Rc::clone(&hit.payload), hit.crc)
                } else {
                    let payload = Rc::new(resp.encoded());
                    let crc = crc32(&payload);
                    let encode = t0.elapsed().as_secs_f64();
                    stats.serialize_seconds += encode;
                    if let Some(h) = hook {
                        h.wall_span(Some(target), "codec", t0, encode);
                    }
                    if cache.len() >= CACHE_CAP {
                        cache.clear();
                    }
                    cache.insert(k, CachedReply { payload: Rc::clone(&payload), crc });
                    (payload, crc)
                }
            }
            None => {
                let payload = Rc::new(resp.encoded());
                let crc = crc32(&payload);
                let encode = t0.elapsed().as_secs_f64();
                stats.serialize_seconds += encode;
                if let Some(h) = hook {
                    h.wall_span(Some(target), "codec", t0, encode);
                }
                (payload, crc)
            }
        };

        let header = header_bytes(FrameKind::Reply, seq, payload.len(), crc)?;
        let wire = (HEADER_LEN + payload.len()) as u64;
        let cid = rank_conn[target];
        let queued = match cid.and_then(|cid| conns.get_mut(&cid)) {
            Some(conn) => {
                conn.wq.push_back(PendingWrite { header, payload, off: 0 });
                Some(try_flush(conn).is_ok())
            }
            None => None,
        };
        match queued {
            Some(true) => stats.bytes_received += wire,
            Some(false) => {
                // Write failure: the worker is gone; reap it and move on.
                close_conn(conns, cid.unwrap(), pool, rank_conn, rank_state, awaiting);
            }
            None => {
                // No live connection: likewise.
                rank_conn[target] = None;
                if rank_state[target] == RankState::Active {
                    rank_state[target] = RankState::Dead;
                    awaiting[target] = None;
                }
            }
        }
    }
    Ok(())
}
