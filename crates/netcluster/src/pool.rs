//! Reusable read-buffer pool for the reactor.
//!
//! Every reactor connection owns one growable byte buffer that incoming
//! stream data lands in and frames are parsed out of. Connections churn
//! (reconnects, reaps, crash-restart fault plans), but their buffers —
//! which grow to the largest frame the peer ever sent — should not: the
//! pool hands buffers out on accept and takes them back on close, so a
//! storm of reconnects settles into a steady state with zero allocation.
//!
//! The pool is deliberately single-threaded (the reactor owns it — no
//! locks) and audited: `outstanding()` counts buffers currently lent out,
//! and the reactor asserts it returns to zero at serve teardown. A
//! poisoned connection (bad frame, CRC failure, dead socket) returns its
//! buffer through exactly the same close path as a clean goodbye, so no
//! failure mode leaks.

/// Initial capacity of a fresh pool buffer: big enough for the protocol's
/// control frames and small requests without a grow.
const INITIAL_CAPACITY: usize = 4 * 1024;

/// Buffers kept in reserve; beyond this, returned buffers are dropped so
/// a one-off 1024-connection burst doesn't pin memory forever.
const MAX_FREE: usize = 64;

/// A pool of reusable read buffers. See the module docs.
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    outstanding: usize,
    reuses: u64,
    allocations: u64,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    pub fn new() -> Self {
        BufferPool { free: Vec::new(), outstanding: 0, reuses: 0, allocations: 0 }
    }

    /// Lends a cleared buffer out. Reuses a pooled one when available.
    pub fn get(&mut self) -> Vec<u8> {
        self.outstanding += 1;
        match self.free.pop() {
            Some(mut buf) => {
                self.reuses += 1;
                buf.clear();
                buf
            }
            None => {
                self.allocations += 1;
                Vec::with_capacity(INITIAL_CAPACITY)
            }
        }
    }

    /// Takes a buffer back. Must be called exactly once per [`get`], on
    /// every close path — clean or poisoned.
    ///
    /// [`get`]: BufferPool::get
    pub fn put(&mut self, buf: Vec<u8>) {
        debug_assert!(self.outstanding > 0, "pool returned more buffers than it lent");
        self.outstanding = self.outstanding.saturating_sub(1);
        if self.free.len() < MAX_FREE {
            self.free.push(buf);
        }
    }

    /// Buffers currently lent out. Zero once every connection is closed.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// How many `get`s were served from the free list.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// How many `get`s had to allocate.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Buffers sitting in the free list.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_returns_every_buffer_and_reuses_instead_of_allocating() {
        let mut pool = BufferPool::new();
        // Warm-up: 8 concurrent connections.
        let mut held: Vec<Vec<u8>> = (0..8).map(|_| pool.get()).collect();
        assert_eq!(pool.outstanding(), 8);
        assert_eq!(pool.allocations(), 8);
        for buf in held.drain(..) {
            pool.put(buf);
        }
        assert_eq!(pool.outstanding(), 0);

        // Churn: 100 sequential reconnects must never allocate again.
        for i in 0..100u8 {
            let mut buf = pool.get();
            buf.extend_from_slice(&[i; 128]);
            pool.put(buf);
        }
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.allocations(), 8);
        assert_eq!(pool.reuses(), 100);
    }

    #[test]
    fn reissued_buffers_come_back_empty_but_keep_their_capacity() {
        let mut pool = BufferPool::new();
        let mut buf = pool.get();
        buf.resize(1 << 16, 0xAB); // grown by a large frame
        pool.put(buf);
        let buf = pool.get();
        assert!(buf.is_empty(), "stale bytes must not leak between connections");
        assert!(buf.capacity() >= 1 << 16, "growth must be retained across reuse");
        pool.put(buf);
    }

    #[test]
    fn poisoned_connection_close_path_returns_the_in_flight_buffer() {
        // Models the reactor's poison path: a connection dies mid-frame
        // with bytes still in its buffer; close returns it regardless.
        let mut pool = BufferPool::new();
        let mut buf = pool.get();
        buf.extend_from_slice(&[0xFF; 13]); // half a header
        assert_eq!(pool.outstanding(), 1);
        pool.put(buf); // the poison/close path
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = BufferPool::new();
        let held: Vec<Vec<u8>> = (0..MAX_FREE + 40).map(|_| pool.get()).collect();
        for buf in held {
            pool.put(buf);
        }
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.idle(), MAX_FREE);
    }
}
