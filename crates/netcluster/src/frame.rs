//! Length-prefixed binary framing for the TCP parameter server.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! offset  size  field          notes
//!      0     4  magic          "LCNW", little-endian u32
//!      4     2  version        protocol version, currently 1
//!      6     1  kind           FrameKind discriminant
//!      7     1  flags          reserved, must be zero
//!      8     8  seq            sender sequence number; a Reply echoes
//!                              the seq of the Request it answers
//!     16     4  payload_len    bytes of payload following the header
//!     20     4  crc32          IEEE CRC-32 over the payload bytes
//!     24     …  payload        a WireMsg encoding (or rank for Hello)
//! ```
//!
//! All integers are little-endian, matching the [`WireMsg`] codec and the
//! checkpoint file format. The checksum covers only the payload: header
//! corruption is caught by the magic/version/kind/flags checks, payload
//! corruption by the CRC. A frame that fails any check is a
//! [`ClusterError::Protocol`]; socket-level failures map through
//! `From<std::io::Error>` (EOF/reset → `Disconnected`, deadline →
//! `Timeout`).

use lcasgd_simcluster::{ClusterError, WireCodec};
use std::io::{Read, Write};
use std::sync::OnceLock;

/// `b"LCNW"` interpreted as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"LCNW");
/// Current protocol version. Peers speaking a different version are
/// rejected with a protocol error rather than misparsed.
pub const VERSION: u16 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 24;
/// Upper bound on a single payload (256 MiB): a corrupt length field must
/// never trigger an unbounded allocation.
pub const MAX_PAYLOAD: u32 = 1 << 28;

/// What a frame means to the parameter-server protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// First frame on every connection: payload is the worker's rank
    /// (u32). Re-sent after a reconnect to re-bind the rank.
    Hello = 1,
    /// Blocking request; the server answers with a `Reply` echoing `seq`.
    Request = 2,
    /// Fire-and-forget message (gradient push); never answered.
    Oneway = 3,
    /// Server→worker answer to a `Request`.
    Reply = 4,
    /// Worker liveness beacon; empty payload. A server that sees no
    /// traffic from a connection within the heartbeat timeout drops it.
    Heartbeat = 5,
    /// Clean end-of-training handshake; a connection that closes without
    /// one is treated as a crashed worker.
    Goodbye = 6,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::Request,
            3 => FrameKind::Oneway,
            4 => FrameKind::Reply,
            5 => FrameKind::Heartbeat,
            6 => FrameKind::Goodbye,
            _ => return None,
        })
    }
}

/// One parsed wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: FrameKind,
    pub seq: u64,
    pub payload: Vec<u8>,
}

impl Frame {
    pub fn new(kind: FrameKind, seq: u64, payload: Vec<u8>) -> Frame {
        Frame { kind, seq, payload }
    }

    /// Builds the connection-opening rank announcement (seed form: the
    /// 4-byte rank, implying the [`WireCodec::F32`] codec).
    pub fn hello(rank: usize) -> Frame {
        Frame::new(FrameKind::Hello, 0, (rank as u32).to_le_bytes().to_vec())
    }

    /// Builds a `Hello` advertising a wire codec. `F32` emits the seed
    /// 4-byte form so a quantization-off cluster is byte-identical to the
    /// seed protocol; other codecs append a fifth byte with the codec id.
    pub fn hello_for(rank: usize, codec: WireCodec) -> Frame {
        let mut payload = (rank as u32).to_le_bytes().to_vec();
        if codec != WireCodec::F32 {
            payload.push(codec.id());
        }
        Frame::new(FrameKind::Hello, 0, payload)
    }

    /// Parses the rank out of a `Hello` payload (either form).
    pub fn hello_rank(&self) -> Result<usize, ClusterError> {
        if self.payload.len() != 4 && self.payload.len() != 5 {
            return Err(ClusterError::Protocol("malformed hello payload".into()));
        }
        let bytes: [u8; 4] = self.payload[..4].try_into().unwrap();
        Ok(u32::from_le_bytes(bytes) as usize)
    }

    /// Parses the advertised wire codec out of a `Hello` payload. The
    /// 4-byte seed form means `F32`; an unknown codec id is a protocol
    /// error.
    pub fn hello_codec(&self) -> Result<WireCodec, ClusterError> {
        match self.payload.len() {
            4 => Ok(WireCodec::F32),
            5 => WireCodec::from_id(self.payload[4]).ok_or_else(|| {
                ClusterError::Protocol(format!("unknown wire codec id {}", self.payload[4]))
            }),
            _ => Err(ClusterError::Protocol("malformed hello payload".into())),
        }
    }

    /// Total bytes this frame occupies on the wire.
    pub fn wire_len(&self) -> u64 {
        (HEADER_LEN + self.payload.len()) as u64
    }
}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// IEEE CRC-32 (the zlib/Ethernet polynomial, reflected).
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Builds one frame header for a payload whose CRC is already known.
/// This is how the reactor stamps a fresh `seq` onto a cached payload
/// encoding without rehashing it: the checksum covers only the payload,
/// so the cached CRC stays valid under any header.
pub fn header_bytes(
    kind: FrameKind,
    seq: u64,
    payload_len: usize,
    crc: u32,
) -> Result<[u8; HEADER_LEN], ClusterError> {
    if payload_len as u64 > MAX_PAYLOAD as u64 {
        return Err(ClusterError::Protocol(format!(
            "payload of {payload_len} bytes exceeds the {MAX_PAYLOAD}-byte frame limit"
        )));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6] = kind as u8;
    header[7] = 0; // flags
    header[8..16].copy_from_slice(&seq.to_le_bytes());
    header[16..20].copy_from_slice(&(payload_len as u32).to_le_bytes());
    header[20..24].copy_from_slice(&crc.to_le_bytes());
    Ok(header)
}

/// A validated frame header, parsed separately from its payload so a
/// nonblocking reader can know how many payload bytes to wait for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedHeader {
    pub kind: FrameKind,
    pub seq: u64,
    pub payload_len: usize,
    pub crc: u32,
}

/// Validates the first [`HEADER_LEN`] bytes of `bytes` as a frame header
/// (magic, version, kind, flags, length bound). The payload checksum is
/// verified later, once the payload has fully arrived.
pub fn parse_header(bytes: &[u8]) -> Result<ParsedHeader, ClusterError> {
    debug_assert!(bytes.len() >= HEADER_LEN);
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(ClusterError::Protocol(format!("bad frame magic {magic:#010x}")));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(ClusterError::Protocol(format!(
            "unsupported protocol version {version} (want {VERSION})"
        )));
    }
    let Some(kind) = FrameKind::from_u8(bytes[6]) else {
        return Err(ClusterError::Protocol(format!("unknown frame kind {}", bytes[6])));
    };
    if bytes[7] != 0 {
        return Err(ClusterError::Protocol(format!("nonzero reserved flags {:#04x}", bytes[7])));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(ClusterError::Protocol(format!(
            "declared payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte frame limit"
        )));
    }
    let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    Ok(ParsedHeader { kind, seq, payload_len: len as usize, crc })
}

/// Writes one frame. Returns the number of bytes put on the wire.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<u64, ClusterError> {
    let header = header_bytes(frame.kind, frame.seq, frame.payload.len(), crc32(&frame.payload))?;
    w.write_all(&header)?;
    w.write_all(&frame.payload)?;
    w.flush()?;
    Ok(frame.wire_len())
}

/// Reads one frame, validating magic, version, flags, kind, length bound
/// and checksum. Returns the frame and its on-wire size.
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, u64), ClusterError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let parsed = parse_header(&header)?;
    let mut payload = vec![0u8; parsed.payload_len];
    r.read_exact(&mut payload)?;
    let got_crc = crc32(&payload);
    if got_crc != parsed.crc {
        return Err(ClusterError::Protocol(format!(
            "payload checksum mismatch: header says {:#010x}, payload hashes to {got_crc:#010x}",
            parsed.crc
        )));
    }
    let frame = Frame { kind: parsed.kind, seq: parsed.seq, payload };
    let wire = frame.wire_len();
    Ok((frame, wire))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        let wrote = write_frame(&mut buf, frame).unwrap();
        assert_eq!(wrote as usize, buf.len());
        let (parsed, read) = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(read, wrote);
        parsed
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip() {
        for kind in [
            FrameKind::Hello,
            FrameKind::Request,
            FrameKind::Oneway,
            FrameKind::Reply,
            FrameKind::Heartbeat,
            FrameKind::Goodbye,
        ] {
            let frame = Frame::new(kind, 0xDEAD_BEEF_0BAD_F00D, vec![1, 2, 3, 255, 0]);
            assert_eq!(roundtrip(&frame), frame);
        }
        let empty = Frame::new(FrameKind::Heartbeat, 0, Vec::new());
        assert_eq!(roundtrip(&empty), empty);
    }

    #[test]
    fn hello_carries_rank() {
        let f = Frame::hello(17);
        assert_eq!(f.payload.len(), 4, "seed hello form is the bare rank");
        assert_eq!(f.hello_rank().unwrap(), 17);
        assert_eq!(f.hello_codec().unwrap(), WireCodec::F32);
        let bad = Frame::new(FrameKind::Hello, 0, vec![1, 2]);
        assert!(matches!(bad.hello_rank(), Err(ClusterError::Protocol(_))));
        assert!(matches!(bad.hello_codec(), Err(ClusterError::Protocol(_))));
    }

    #[test]
    fn hello_negotiates_the_wire_codec() {
        // F32 must stay byte-identical to the seed hello.
        assert_eq!(Frame::hello_for(9, WireCodec::F32), Frame::hello(9));
        for codec in [WireCodec::Bf16, WireCodec::Int8] {
            let f = Frame::hello_for(9, codec);
            assert_eq!(f.payload.len(), 5);
            assert_eq!(f.hello_rank().unwrap(), 9);
            assert_eq!(f.hello_codec().unwrap(), codec);
        }
        let unknown = Frame::new(FrameKind::Hello, 0, vec![9, 0, 0, 0, 0xEE]);
        assert_eq!(unknown.hello_rank().unwrap(), 9);
        assert!(matches!(unknown.hello_codec(), Err(ClusterError::Protocol(_))));
    }

    #[test]
    fn parsed_header_matches_the_streaming_reader() {
        let frame = Frame::new(FrameKind::Reply, 77, vec![3; 19]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let h = parse_header(&buf[..HEADER_LEN]).unwrap();
        assert_eq!(h.kind, FrameKind::Reply);
        assert_eq!(h.seq, 77);
        assert_eq!(h.payload_len, 19);
        assert_eq!(h.crc, crc32(&frame.payload));
        // header_bytes must reproduce the writer's header exactly.
        let rebuilt = header_bytes(h.kind, h.seq, h.payload_len, h.crc).unwrap();
        assert_eq!(&buf[..HEADER_LEN], &rebuilt);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::new(FrameKind::Request, 1, vec![9; 64])).unwrap();
        buf[HEADER_LEN + 10] ^= 0x40;
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, ClusterError::Protocol(ref why) if why.contains("checksum")));
    }

    #[test]
    fn bad_magic_version_kind_flags_are_rejected() {
        let mut ok = Vec::new();
        write_frame(&mut ok, &Frame::new(FrameKind::Oneway, 2, vec![7])).unwrap();

        let corrupt = |offset: usize, value: u8, expect: &str| {
            let mut buf = ok.clone();
            buf[offset] = value;
            let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
            match err {
                ClusterError::Protocol(why) => {
                    assert!(why.contains(expect), "{why:?} should mention {expect:?}")
                }
                other => panic!("expected protocol error, got {other:?}"),
            }
        };
        corrupt(0, b'X', "magic");
        corrupt(4, 99, "version");
        corrupt(6, 42, "kind");
        corrupt(7, 1, "flags");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::new(FrameKind::Request, 3, vec![1])).unwrap();
        buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, ClusterError::Protocol(ref why) if why.contains("limit")));
    }

    #[test]
    fn truncated_stream_is_a_disconnect() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::new(FrameKind::Reply, 4, vec![5; 32])).unwrap();
        // Cut inside the header and inside the payload.
        for cut in [HEADER_LEN / 2, HEADER_LEN + 8] {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert_eq!(err, ClusterError::Disconnected);
        }
    }

    #[test]
    fn oversized_payload_refuses_to_write() {
        // vec![0; n] is a lazily-mapped zero page allocation; write_frame
        // rejects on len() before touching the bytes.
        let frame = Frame::new(FrameKind::Request, 5, vec![0; (MAX_PAYLOAD as usize) + 1]);
        let mut sink = Vec::new();
        assert!(matches!(write_frame(&mut sink, &frame), Err(ClusterError::Protocol(_))));
    }
}
