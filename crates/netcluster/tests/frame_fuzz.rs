//! Fuzz-style robustness tests for the wire framing.
//!
//! The parameter server reads frames from arbitrary peers; a corrupted,
//! truncated, or hostile byte stream must surface as a recoverable
//! [`ClusterError`] — never a panic, never an unbounded allocation. These
//! properties back the server's per-connection recovery policy: a bad
//! stream costs one connection, not the run.

use lcasgd_netcluster::frame::{read_frame, write_frame, Frame, FrameKind, HEADER_LEN};
use proptest::prelude::*;
use std::io::Cursor;

fn encode(kind: FrameKind, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, &Frame::new(kind, seq, payload.to_vec())).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Flipping any single byte of a valid frame either parses (only
    /// possible where the header has checksum-free slack: the sequence
    /// number, or a kind byte mutated onto another valid kind) or is
    /// rejected with an error. It never panics.
    #[test]
    fn single_byte_flip_is_rejected_or_benign(
        payload in prop::collection::vec(any::<u8>(), 0..128),
        seq in any::<u64>(),
        offset_pick in any::<u32>(),
        mask in 1u8..=255,
    ) {
        let wire = encode(FrameKind::Oneway, seq, &payload);
        let offset = offset_pick as usize % wire.len();
        let mut mutated = wire.clone();
        mutated[offset] ^= mask;
        match read_frame(&mut Cursor::new(&mutated)) {
            Err(_) => {} // rejected: the common case
            Ok((frame, n)) => {
                // The only checksum-free header bytes are seq (8..16) and
                // the kind discriminant (6) when the flip lands on another
                // valid kind value.
                prop_assert!(
                    (8..16).contains(&offset) || offset == 6,
                    "flip at offset {offset} parsed but should have been caught"
                );
                prop_assert_eq!(n as usize, mutated.len());
                prop_assert_eq!(frame.payload, payload);
            }
        }
    }

    /// Any truncation of a valid frame is an error (header cuts and
    /// payload cuts alike), never a panic or a bogus parse.
    #[test]
    fn truncation_always_errors(
        payload in prop::collection::vec(any::<u8>(), 1..96),
        seq in any::<u64>(),
        cut_pick in any::<u32>(),
    ) {
        let wire = encode(FrameKind::Request, seq, &payload);
        let cut = cut_pick as usize % wire.len(); // strictly shorter
        prop_assert!(read_frame(&mut Cursor::new(&wire[..cut])).is_err());
    }

    /// Feeding arbitrary bytes to the frame reader never panics, and a
    /// successful parse never claims more bytes than were supplied.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..160)) {
        if let Ok((frame, n)) = read_frame(&mut Cursor::new(&bytes)) {
            prop_assert!(n as usize <= bytes.len());
            prop_assert_eq!(n as usize, HEADER_LEN + frame.payload.len());
        }
    }

    /// A declared payload length beyond the frame limit is rejected before
    /// any allocation, regardless of what the rest of the header says.
    #[test]
    fn oversized_declared_length_is_rejected(
        seq in any::<u64>(),
        extra in 1u32..=1024,
    ) {
        let mut wire = encode(FrameKind::Oneway, seq, &[1, 2, 3]);
        let huge = (lcasgd_netcluster::frame::MAX_PAYLOAD + extra).to_le_bytes();
        wire[16..20].copy_from_slice(&huge);
        prop_assert!(read_frame(&mut Cursor::new(&wire)).is_err());
    }
}
