//! Mini-batch iteration with seeded shuffling.

use crate::synth::Dataset;
use lcasgd_tensor::{Rng, Tensor};

/// Epoch-oriented batch iterator: reshuffles example order at the start of
/// each epoch with its own RNG stream, yielding `(inputs, labels)` batches.
/// The final short batch is kept (not dropped) so every example is seen.
pub struct BatchIter {
    order: Vec<usize>,
    pos: usize,
    batch: usize,
    rng: Rng,
    /// Total reshuffles performed (1 right after construction). Together
    /// with `pos` this pins the iterator's exact position for replay-based
    /// checkpoint restore — the RNG itself has no state export, but
    /// re-seeding and reshuffling the same number of times reproduces it.
    reshuffles: u64,
}

impl BatchIter {
    /// Iterator over `n` examples in batches of `batch`.
    pub fn new(n: usize, batch: usize, seed: u64) -> Self {
        Self::from_indices((0..n).collect(), batch, seed)
    }

    /// Iterator over an explicit example subset — the building block for
    /// partitioned-data training, where each worker owns a disjoint shard
    /// (the paper's stated future-work extension).
    pub fn from_indices(indices: Vec<usize>, batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        assert!(!indices.is_empty(), "empty example subset");
        let mut it = BatchIter {
            order: indices,
            pos: 0,
            batch,
            rng: Rng::seed_from_u64(seed),
            reshuffles: 0,
        };
        it.reshuffle();
        it
    }

    /// Number of examples this iterator covers.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the iterator covers no examples (cannot be constructed so;
    /// kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Splits `n` examples into `parts` contiguous shards of near-equal
    /// size. Contiguous (not round-robin) on purpose: the synthetic
    /// generators interleave classes with period `num_classes`, so a
    /// round-robin split with `parts` divisible by the class count would
    /// hand each worker a *single class* — the pathological non-IID case —
    /// while contiguous blocks stay class-balanced.
    pub fn partition(n: usize, parts: usize) -> Vec<Vec<usize>> {
        assert!(parts > 0);
        let base = n / parts;
        let extra = n % parts;
        let mut shards = Vec::with_capacity(parts);
        let mut start = 0;
        for p in 0..parts {
            let len = base + usize::from(p < extra);
            shards.push((start..start + len).collect());
            start += len;
        }
        shards
    }

    fn reshuffle(&mut self) {
        self.rng.shuffle(&mut self.order);
        self.pos = 0;
        self.reshuffles += 1;
    }

    /// The iterator's exact position as `(reshuffles, pos)` — enough to
    /// reproduce it via [`BatchIter::replay_to`] on a freshly constructed
    /// iterator with the same indices, batch size and seed.
    pub fn progress(&self) -> (u64, u64) {
        (self.reshuffles, self.pos as u64)
    }

    /// Fast-forwards a *freshly constructed* iterator to a position
    /// captured by [`BatchIter::progress`]: replays the missing reshuffles
    /// (each advancing the seeded RNG exactly as the original run did) and
    /// then seeks within the epoch. Panics if the iterator is already past
    /// the target shuffle count — replay only moves forward.
    pub fn replay_to(&mut self, reshuffles: u64, pos: u64) {
        assert!(
            self.reshuffles <= reshuffles,
            "cannot replay backwards: at shuffle {} of target {}",
            self.reshuffles,
            reshuffles
        );
        while self.reshuffles < reshuffles {
            self.reshuffle();
        }
        self.pos = (pos as usize).min(self.order.len());
    }

    /// Replaces the example subset this iterator draws from — the data-
    /// shard reassignment a training supervisor performs when it moves
    /// work off a straggler. The new subset is shuffled with the
    /// iterator's own RNG stream (counted as a reshuffle, so
    /// [`BatchIter::progress`] stays replayable) and iteration restarts at
    /// the head of the new order. Panics on an empty subset.
    pub fn set_indices(&mut self, indices: Vec<usize>) {
        assert!(!indices.is_empty(), "empty example subset");
        self.order = indices;
        self.reshuffle();
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.order.len().div_ceil(self.batch)
    }

    /// Index list of the next batch; reshuffles when the epoch is
    /// exhausted (so the stream is endless).
    pub fn next_indices(&mut self) -> &[usize] {
        if self.pos >= self.order.len() {
            self.reshuffle();
        }
        let end = (self.pos + self.batch).min(self.order.len());
        let out = &self.order[self.pos..end];
        self.pos = end;
        out
    }

    /// Next batch materialized from a dataset.
    pub fn next_batch(&mut self, data: &Dataset) -> (Tensor, Vec<usize>) {
        if self.pos >= self.order.len() {
            self.reshuffle();
        }
        let end = (self.pos + self.batch).min(self.order.len());
        let idx: Vec<usize> = self.order[self.pos..end].to_vec();
        self.pos = end;
        data.batch(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::blobs;

    #[test]
    fn covers_every_example_each_epoch() {
        let mut it = BatchIter::new(10, 3, 1);
        let mut seen = Vec::new();
        for _ in 0..it.batches_per_epoch() {
            seen.extend_from_slice(it.next_indices());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batches_per_epoch_rounds_up() {
        assert_eq!(BatchIter::new(10, 3, 1).batches_per_epoch(), 4);
        assert_eq!(BatchIter::new(9, 3, 1).batches_per_epoch(), 3);
    }

    #[test]
    fn reshuffles_between_epochs() {
        let mut it = BatchIter::new(64, 64, 2);
        let first: Vec<usize> = it.next_indices().to_vec();
        let second: Vec<usize> = it.next_indices().to_vec();
        assert_ne!(first, second, "astronomically unlikely identical shuffles");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = BatchIter::new(20, 7, 42);
        let mut b = BatchIter::new(20, 7, 42);
        for _ in 0..6 {
            assert_eq!(a.next_indices(), b.next_indices());
        }
    }

    #[test]
    fn partition_is_disjoint_and_complete() {
        let shards = BatchIter::partition(10, 3);
        assert_eq!(shards.len(), 3);
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // Contiguous blocks, remainder spread over the first shards.
        assert_eq!(shards[0], vec![0, 1, 2, 3]);
        assert_eq!(shards[2], vec![7, 8, 9]);
    }

    #[test]
    fn subset_iterator_stays_in_subset() {
        let mut it = BatchIter::from_indices(vec![2, 5, 7], 2, 1);
        assert_eq!(it.len(), 3);
        for _ in 0..10 {
            for &i in it.next_indices() {
                assert!([2, 5, 7].contains(&i));
            }
        }
    }

    #[test]
    fn replay_reproduces_the_batch_stream() {
        let mut original = BatchIter::new(17, 4, 99);
        for _ in 0..11 {
            original.next_indices();
        }
        let (reshuffles, pos) = original.progress();
        let mut restored = BatchIter::new(17, 4, 99);
        restored.replay_to(reshuffles, pos);
        assert_eq!(restored.progress(), (reshuffles, pos));
        for _ in 0..20 {
            assert_eq!(original.next_indices(), restored.next_indices());
        }
    }

    #[test]
    fn set_indices_switches_shard_and_keeps_counting_reshuffles() {
        let mut it = BatchIter::from_indices(vec![0, 1, 2, 3], 2, 9);
        it.next_indices();
        let (shuffles_before, _) = it.progress();
        it.set_indices(vec![10, 11, 12]);
        assert_eq!(it.len(), 3);
        let (shuffles_after, pos) = it.progress();
        assert_eq!(shuffles_after, shuffles_before + 1);
        assert_eq!(pos, 0);
        for _ in 0..8 {
            for &i in it.next_indices() {
                assert!([10, 11, 12].contains(&i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty example subset")]
    fn set_indices_rejects_empty() {
        BatchIter::new(4, 2, 1).set_indices(Vec::new());
    }

    #[test]
    fn next_batch_matches_dataset_rows() {
        let d = blobs(2, 4, 8, 0.2, 3);
        let mut it = BatchIter::new(d.len(), 5, 1);
        let (x, y) = it.next_batch(&d);
        assert_eq!(x.dims()[0], 5);
        assert_eq!(y.len(), 5);
    }
}
