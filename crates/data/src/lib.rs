//! # lcasgd-data
//!
//! Deterministic synthetic datasets standing in for CIFAR-10 and ImageNet
//! (neither is redistributable/feasible to download here; see DESIGN.md §1
//! for why the substitution preserves the behaviour under study).
//!
//! Class-conditional *structured* images: each class owns a set of spatial
//! frequency/orientation prototypes per channel; samples are prototypes
//! plus per-sample Gaussian noise and random phase shifts. The resulting
//! task (a) is genuinely learnable but not trivially separable, (b) has
//! meaningful per-channel statistics (so BatchNorm matters), and (c)
//! produces loss curves with the same qualitative phases as the paper's.

pub mod batch;
pub mod synth;

pub use batch::BatchIter;
pub use synth::{Dataset, SyntheticImageSpec};
