//! Synthetic image dataset generation.

use lcasgd_tensor::{Rng, Tensor};

/// An in-memory labelled dataset. Inputs are either NCHW images
/// (`[n, c, h, w]`) or flat feature rows (`[n, d]`).
pub struct Dataset {
    pub inputs: Tensor,
    pub labels: Vec<usize>,
    pub num_classes: usize,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Gathers a batch by example indices.
    pub fn batch(&self, idx: &[usize]) -> (Tensor, Vec<usize>) {
        let x = self.inputs.gather_rows(idx);
        let y = idx.iter().map(|&i| self.labels[i]).collect();
        (x, y)
    }
}

/// Generator settings for a synthetic image classification task.
#[derive(Clone, Debug)]
pub struct SyntheticImageSpec {
    pub num_classes: usize,
    pub channels: usize,
    pub height: usize,
    pub width: usize,
    pub train_per_class: usize,
    pub test_per_class: usize,
    /// Per-sample additive Gaussian noise (task difficulty knob).
    pub noise: f32,
    /// Number of pattern prototypes per class; higher = more intra-class
    /// variance (ImageNet-like).
    pub prototypes_per_class: usize,
    /// Fraction of *training* labels replaced by a uniform random class.
    /// Creates an irreducible generalization gap (real datasets' error
    /// floor) so algorithm differences are visible above 0%.
    pub label_noise: f32,
    pub seed: u64,
}

impl SyntheticImageSpec {
    /// CIFAR-10-like default: 10 classes, 3 channels. Resolution and
    /// sample counts are scaled by the experiment `Scale` knob upstream.
    pub fn cifar10_like(
        height: usize,
        width: usize,
        train_per_class: usize,
        test_per_class: usize,
    ) -> Self {
        SyntheticImageSpec {
            num_classes: 10,
            channels: 3,
            height,
            width,
            train_per_class,
            test_per_class,
            noise: 0.9,
            prototypes_per_class: 2,
            label_noise: 0.0,
            seed: 0xC1FA_0010,
        }
    }

    /// ImageNet-like: more classes, more intra-class variance, noisier —
    /// a harder task with a higher error floor, preserving the paper's
    /// CIFAR-vs-ImageNet contrast.
    pub fn imagenet_like(
        num_classes: usize,
        height: usize,
        width: usize,
        train_per_class: usize,
        test_per_class: usize,
    ) -> Self {
        SyntheticImageSpec {
            num_classes,
            channels: 3,
            height,
            width,
            train_per_class,
            test_per_class,
            noise: 1.3,
            prototypes_per_class: 4,
            label_noise: 0.0,
            seed: 0x1A6E_0050,
        }
    }

    /// Generates `(train, test)` datasets. Deterministic in the spec.
    pub fn generate(&self) -> (Dataset, Dataset) {
        let mut rng = Rng::seed_from_u64(self.seed);
        let protos = self.make_prototypes(&mut rng);
        let mut train_rng = rng.fork(1);
        let mut test_rng = rng.fork(2);
        let mut noise_rng = rng.fork(3);
        let mut train = self.sample_split(&protos, self.train_per_class, &mut train_rng);
        let test = self.sample_split(&protos, self.test_per_class, &mut test_rng);
        if self.label_noise > 0.0 {
            for l in &mut train.labels {
                if noise_rng.chance(self.label_noise as f64) {
                    *l = noise_rng.below(self.num_classes);
                }
            }
        }
        (train, test)
    }

    /// Class prototypes: per class, per prototype, per channel, a 2-D
    /// sinusoidal pattern with class-specific frequency and orientation.
    fn make_prototypes(&self, rng: &mut Rng) -> Vec<Vec<Tensor>> {
        let (h, w, c) = (self.height, self.width, self.channels);
        (0..self.num_classes)
            .map(|class| {
                (0..self.prototypes_per_class)
                    .map(|_| {
                        let mut img = Tensor::zeros(&[c, h, w]);
                        for ch in 0..c {
                            // Class- and channel-specific structure.
                            let fx =
                                0.5 + class as f64 * 0.37 + ch as f64 * 0.21 + rng.uniform() * 0.3;
                            let fy =
                                0.3 + class as f64 * 0.53 + ch as f64 * 0.11 + rng.uniform() * 0.3;
                            let phase = rng.uniform_range(0.0, std::f64::consts::TAU);
                            let amp = 0.8 + 0.4 * rng.uniform();
                            for y in 0..h {
                                for x in 0..w {
                                    let v = (fx * x as f64 * std::f64::consts::TAU / w as f64
                                        + fy * y as f64 * std::f64::consts::TAU / h as f64
                                        + phase)
                                        .sin()
                                        * amp;
                                    *img.at_mut(&[ch, y, x]) = v as f32;
                                }
                            }
                        }
                        img
                    })
                    .collect()
            })
            .collect()
    }

    fn sample_split(&self, protos: &[Vec<Tensor>], per_class: usize, rng: &mut Rng) -> Dataset {
        let n = per_class * self.num_classes;
        let (c, h, w) = (self.channels, self.height, self.width);
        let img_len = c * h * w;
        let mut inputs = Tensor::zeros(&[n, c, h, w]);
        let mut labels = Vec::with_capacity(n);
        // Interleave classes so any contiguous batch is class-balanced-ish.
        for i in 0..n {
            let class = i % self.num_classes;
            let proto = &protos[class][rng.below(protos[class].len())];
            let dst = &mut inputs.data_mut()[i * img_len..(i + 1) * img_len];
            for (d, &p) in dst.iter_mut().zip(proto.data()) {
                *d = p + (rng.normal() as f32) * self.noise;
            }
            labels.push(class);
        }
        Dataset { inputs, labels, num_classes: self.num_classes }
    }
}

/// Gaussian-blob feature dataset (`[n, dim]` rows) — the fast fixture for
/// unit and integration tests where convolutions would be wasteful.
pub fn blobs(num_classes: usize, dim: usize, per_class: usize, spread: f32, seed: u64) -> Dataset {
    let mut rng = Rng::seed_from_u64(seed);
    let centers: Vec<Tensor> =
        (0..num_classes).map(|_| Tensor::randn(&[dim], 2.0, &mut rng)).collect();
    sample_blobs(&centers, per_class, spread, &mut rng)
}

/// Train/test blob datasets drawn from the *same* class centers (what a
/// real train/test split looks like). `seed` fixes the centers and both
/// sample draws.
pub fn blobs_split(
    num_classes: usize,
    dim: usize,
    train_per_class: usize,
    test_per_class: usize,
    spread: f32,
    seed: u64,
) -> (Dataset, Dataset) {
    let mut rng = Rng::seed_from_u64(seed);
    let centers: Vec<Tensor> =
        (0..num_classes).map(|_| Tensor::randn(&[dim], 2.0, &mut rng)).collect();
    let mut train_rng = rng.fork(1);
    let mut test_rng = rng.fork(2);
    (
        sample_blobs(&centers, train_per_class, spread, &mut train_rng),
        sample_blobs(&centers, test_per_class, spread, &mut test_rng),
    )
}

fn sample_blobs(centers: &[Tensor], per_class: usize, spread: f32, rng: &mut Rng) -> Dataset {
    let num_classes = centers.len();
    let dim = centers[0].numel();
    let n = num_classes * per_class;
    let mut inputs = Tensor::zeros(&[n, dim]);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % num_classes;
        let dst = &mut inputs.data_mut()[i * dim..(i + 1) * dim];
        for (d, &c) in dst.iter_mut().zip(centers[class].data()) {
            *d = c + (rng.normal() as f32) * spread;
        }
        labels.push(class);
    }
    Dataset { inputs, labels, num_classes }
}

/// Two-arm spiral, a classic non-linear 2-D benchmark for tests that need
/// a task MLPs cannot solve linearly.
pub fn spiral(per_class: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = Rng::seed_from_u64(seed);
    let n = per_class * 2;
    let mut inputs = Tensor::zeros(&[n, 2]);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let t = (i / 2) as f64 / per_class as f64 * 3.0 * std::f64::consts::PI + 0.3;
        let sign = if class == 0 { 1.0 } else { -1.0 };
        let r = t * 0.3;
        inputs.data_mut()[i * 2] = (sign * r * t.cos() + rng.normal() * noise as f64) as f32;
        inputs.data_mut()[i * 2 + 1] = (sign * r * t.sin() + rng.normal() * noise as f64) as f32;
        labels.push(class);
    }
    Dataset { inputs, labels, num_classes: 2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let spec = SyntheticImageSpec::cifar10_like(8, 8, 4, 2);
        let (tr1, te1) = spec.generate();
        let (tr2, te2) = spec.generate();
        assert_eq!(tr1.inputs, tr2.inputs);
        assert_eq!(te1.inputs, te2.inputs);
        assert_eq!(tr1.labels, tr2.labels);
    }

    #[test]
    fn shapes_and_counts() {
        let spec = SyntheticImageSpec::cifar10_like(8, 8, 4, 2);
        let (train, test) = spec.generate();
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 20);
        assert_eq!(train.inputs.dims(), &[40, 3, 8, 8]);
        assert_eq!(train.num_classes, 10);
    }

    #[test]
    fn labels_are_balanced() {
        let spec = SyntheticImageSpec::cifar10_like(8, 8, 6, 3);
        let (train, _) = spec.generate();
        let mut counts = vec![0usize; 10];
        for &l in &train.labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 6), "{counts:?}");
    }

    #[test]
    fn train_and_test_differ() {
        let spec = SyntheticImageSpec::cifar10_like(8, 8, 4, 4);
        let (train, test) = spec.generate();
        assert_ne!(train.inputs.data()[..100], test.inputs.data()[..100]);
    }

    #[test]
    fn class_structure_is_learnable_signal() {
        // Same-class samples must correlate more than cross-class ones on
        // average (prototype structure survives the noise).
        let spec =
            SyntheticImageSpec { noise: 0.5, ..SyntheticImageSpec::cifar10_like(8, 8, 6, 2) };
        let (train, _) = spec.generate();
        let img_len = 3 * 8 * 8;
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb)
        };
        let data = train.inputs.data();
        let (mut same, mut diff) = (Vec::new(), Vec::new());
        for i in 0..train.len() {
            for j in (i + 1)..train.len() {
                let c = cos(
                    &data[i * img_len..(i + 1) * img_len],
                    &data[j * img_len..(j + 1) * img_len],
                );
                if train.labels[i] == train.labels[j] {
                    same.push(c);
                } else {
                    diff.push(c);
                }
            }
        }
        let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            avg(&same) > avg(&diff) + 0.05,
            "same-class similarity {} vs cross {}",
            avg(&same),
            avg(&diff)
        );
    }

    #[test]
    fn blobs_shapes() {
        let d = blobs(3, 5, 7, 0.3, 9);
        assert_eq!(d.len(), 21);
        assert_eq!(d.inputs.dims(), &[21, 5]);
    }

    #[test]
    fn spiral_two_classes() {
        let d = spiral(50, 0.01, 4);
        assert_eq!(d.len(), 100);
        assert_eq!(d.num_classes, 2);
        assert!(d.labels.iter().filter(|&&l| l == 0).count() == 50);
    }

    #[test]
    fn batch_gathers_correct_rows() {
        let d = blobs(2, 3, 4, 0.1, 5);
        let (x, y) = d.batch(&[0, 3, 5]);
        assert_eq!(x.dims(), &[3, 3]);
        assert_eq!(y, vec![d.labels[0], d.labels[3], d.labels[5]]);
    }
}
