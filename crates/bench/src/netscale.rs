//! Transport scale bench: updates/sec and p99 RTT of the netcluster
//! servers under 64–1024 simulated workers on loopback.
//!
//! The `net-scale` binary drives both server implementations — the
//! thread-per-connection [`lcasgd_netcluster::NetServer`] and the
//! readiness-driven [`lcasgd_netcluster::ReactorServer`] — with the same
//! synthetic parameter-server workload: every cycle a worker pushes a
//! compressed gradient (a small oneway, the post-quantization uplink
//! shape) and pulls the dense f32 weights back (a 32 KiB reply, the
//! downlink shape whose encode + CRC the reactor coalesces across
//! concurrent pulls). Workers
//! are *simulated*: a handful of driver threads multiplex hundreds of
//! nonblocking sockets, so the bench measures the server, not a thousand
//! driver threads fighting for the CPU.
//!
//! The committed `BENCH_net.json` is the perf baseline: CI re-measures in
//! `--smoke` mode and fails when the reactor's updates/sec at 256 workers
//! regresses more than [`GATE_TOLERANCE`] against it, mirroring the
//! kernel baseline gate.

use lcasgd_netcluster::frame::{self, Frame, FrameKind, HEADER_LEN};
use lcasgd_netcluster::{NetConfig, NetServer, ReactorServer, Transport};
use lcasgd_simcluster::backend::{wire, ServerCtx};
use lcasgd_simcluster::{ClusterError, WireCodec, WireMsg, WireReader};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Relative regression tolerance for the CI gate: fail when the measured
/// reactor updates/sec falls more than 20 % below the committed baseline.
pub const GATE_TOLERANCE: f64 = 0.20;

/// Schema tag written to (and required of) `BENCH_net.json`.
pub const SCHEMA: &str = "net_scale/v1";

/// Default output filename, written into the working directory (repo
/// root when invoked via `ci.sh` or the README quickstart).
pub const BASELINE_FILE: &str = "BENCH_net.json";

/// Dense f32 weights per pull reply (32 KiB on the wire): the downlink.
/// Dense on purpose — weights pulls are the bandwidth the paper's
/// protocol cannot compress away, and their encode + CRC is exactly the
/// per-request cost the reactor coalesces.
pub const WEIGHTS_LEN: usize = 8192;

/// Quantized levels per gradient push (256 B on the wire): the uplink
/// after int8/top-k compression has done its work.
pub const GRAD_LEN: usize = 256;

/// Driver threads multiplexing the simulated workers. Deliberately few:
/// the workers are nonblocking sockets, not threads.
const DRIVER_THREADS: usize = 4;

/// The worker/transport grid a full run measures.
pub const FULL_GRID: [usize; 3] = [64, 256, 1024];

/// The configuration the smoke gate re-measures.
pub const SMOKE_WORKERS: usize = 256;

// ------------------------------------------------------- wire messages

/// Uplink of the synthetic workload.
pub enum ScaleReq {
    /// Request the current weights (a blocking request).
    Pull,
    /// Push a quantized gradient (a oneway). The levels are opaque bytes
    /// with the int8 uplink's wire shape.
    Grad { levels: Vec<u8> },
}

/// Downlink: the dense weights snapshot and its version.
pub struct ScaleResp {
    pub flat: Vec<f32>,
    pub version: u64,
}

impl WireMsg for ScaleReq {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ScaleReq::Pull => wire::put_u8(buf, 0),
            ScaleReq::Grad { levels } => {
                wire::put_u8(buf, 1);
                wire::put_u64(buf, levels.len() as u64);
                buf.extend_from_slice(levels);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, ClusterError> {
        match r.u8()? {
            0 => Ok(ScaleReq::Pull),
            1 => {
                let n = r.len(1)?;
                let levels = (0..n).map(|_| r.u8()).collect::<Result<_, _>>()?;
                Ok(ScaleReq::Grad { levels })
            }
            tag => Err(ClusterError::Protocol(format!("unknown ScaleReq tag {tag}"))),
        }
    }
}

impl WireMsg for ScaleResp {
    fn encode(&self, buf: &mut Vec<u8>) {
        wire::put_vec_f32(buf, &self.flat);
        wire::put_u64(buf, self.version);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, ClusterError> {
        Ok(ScaleResp { flat: r.vec_f32()?, version: r.u64()? })
    }
}

// ------------------------------------------------------------ workload

fn bench_config(transport: Transport) -> NetConfig {
    NetConfig {
        // Generous liveness windows: at 1024 workers the connection storm
        // takes a while, and a reaped conn would corrupt the measurement.
        heartbeat_timeout: Duration::from_secs(30),
        hello_timeout: Duration::from_secs(60),
        transport,
        ..NetConfig::default()
    }
}

/// The server side of the workload: every `Grad` oneway bumps the
/// version (the cheapest possible apply, so the measurement isolates the
/// transport), every `Pull` answers with the full weights snapshot keyed
/// by version — the reactor encodes each version tick once and answers
/// the rest of the concurrent pulls from the cache.
fn server_fn() -> impl FnMut(usize, ScaleReq, &mut ServerCtx<ScaleResp>) {
    let weights = vec![0.125f32; WEIGHTS_LEN];
    let mut version = 0u64;
    move |_w, req, ctx| match req {
        ScaleReq::Grad { .. } => version += 1,
        ScaleReq::Pull => {
            ctx.reply_keyed(ScaleResp { flat: weights.clone(), version }, version);
        }
    }
}

// -------------------------------------------------------------- driver

/// Per-connection state machine: write the cycle bytes, read the reply,
/// repeat. `Hello` rides the first write; `Goodbye` replaces the cycle
/// once the stop flag is up.
struct Conn {
    stream: TcpStream,
    out: Vec<u8>,
    out_off: usize,
    inb: Vec<u8>,
    in_filled: usize,
    cycle_start: Instant,
    /// Reply already validated once (the first is decoded end to end).
    validated: bool,
    saying_goodbye: bool,
    done: bool,
}

enum Step {
    Progressed,
    Idle,
    /// A completed pull cycle, with its RTT.
    Cycle(Duration),
}

fn cycle_bytes() -> Vec<u8> {
    let mut out = Vec::new();
    let grad = ScaleReq::Grad { levels: vec![7u8; GRAD_LEN] }.encoded();
    out.extend_from_slice(
        &frame::header_bytes(FrameKind::Oneway, 0, grad.len(), frame::crc32(&grad))
            .expect("grad frame"),
    );
    out.extend_from_slice(&grad);
    let pull = ScaleReq::Pull.encoded();
    out.extend_from_slice(
        &frame::header_bytes(FrameKind::Request, 1, pull.len(), frame::crc32(&pull))
            .expect("pull frame"),
    );
    out.extend_from_slice(&pull);
    out
}

fn frame_to_bytes(f: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    frame::write_frame(&mut out, f).expect("in-memory frame write");
    out
}

impl Conn {
    fn connect(addr: SocketAddr, rank: usize, cycle: &[u8]) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let mut out = frame_to_bytes(&Frame::hello_for(rank, WireCodec::F32));
        out.extend_from_slice(cycle);
        Ok(Conn {
            stream,
            out,
            out_off: 0,
            inb: vec![0u8; HEADER_LEN],
            in_filled: 0,
            cycle_start: Instant::now(),
            validated: false,
            saying_goodbye: false,
            done: false,
        })
    }

    /// Advances the state machine by at most one IO completion.
    fn step(&mut self, cycle: &[u8], stopping: bool) -> std::io::Result<Step> {
        if self.done {
            return Ok(Step::Idle);
        }
        // Write side first: the cycle (or goodbye) must reach the server
        // before there is anything to read.
        if self.out_off < self.out.len() {
            match self.stream.write(&self.out[self.out_off..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "server hung up mid-frame",
                    ))
                }
                Ok(n) => {
                    self.out_off += n;
                    if self.out_off == self.out.len() && self.saying_goodbye {
                        self.done = true;
                    }
                    return Ok(Step::Progressed);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(Step::Idle),
                Err(e) => return Err(e),
            }
        }
        // Read side: header, then payload.
        match self.stream.read(&mut self.inb[self.in_filled..]) {
            Ok(0) => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed while a reply was due",
            )),
            Ok(n) => {
                self.in_filled += n;
                if self.in_filled == HEADER_LEN && self.inb.len() == HEADER_LEN {
                    let hdr = frame::parse_header(&self.inb)
                        .map_err(|e| std::io::Error::other(e.to_string()))?;
                    self.inb.resize(HEADER_LEN + hdr.payload_len as usize, 0);
                }
                if self.in_filled == self.inb.len() && self.inb.len() > HEADER_LEN {
                    // Full reply. Validate the first one end to end; after
                    // that trust the transport (CRC checks would bill the
                    // driver for work the real worker does off-path).
                    if !self.validated {
                        let hdr = frame::parse_header(&self.inb)
                            .map_err(|e| std::io::Error::other(e.to_string()))?;
                        let payload = &self.inb[HEADER_LEN..];
                        if frame::crc32(payload) != hdr.crc {
                            return Err(std::io::Error::other("reply CRC mismatch"));
                        }
                        let resp = ScaleResp::decoded(payload)
                            .map_err(|e| std::io::Error::other(e.to_string()))?;
                        if resp.flat.len() != WEIGHTS_LEN {
                            return Err(std::io::Error::other("reply has wrong weights length"));
                        }
                        self.validated = true;
                    }
                    let rtt = self.cycle_start.elapsed();
                    self.inb.truncate(HEADER_LEN);
                    self.in_filled = 0;
                    if stopping {
                        self.out = frame_to_bytes(&Frame::new(FrameKind::Goodbye, 0, Vec::new()));
                        self.saying_goodbye = true;
                    } else {
                        self.out.clear();
                        self.out.extend_from_slice(cycle);
                    }
                    self.out_off = 0;
                    self.cycle_start = Instant::now();
                    return Ok(Step::Cycle(rtt));
                }
                Ok(Step::Progressed)
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(Step::Idle),
            Err(e) => Err(e),
        }
    }
}

struct DriverReport {
    updates: u64,
    rtts_us: Vec<u64>,
}

fn drive(
    addr: SocketAddr,
    ranks: std::ops::Range<usize>,
    measuring: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
) -> DriverReport {
    let cycle = cycle_bytes();
    let mut conns: Vec<Conn> = ranks
        .map(|rank| Conn::connect(addr, rank, &cycle).expect("bench driver connect"))
        .collect();
    let mut report = DriverReport { updates: 0, rtts_us: Vec::new() };
    loop {
        let stopping = stop.load(Ordering::Relaxed);
        let mut progressed = false;
        let mut live = 0usize;
        for conn in &mut conns {
            if conn.done {
                continue;
            }
            live += 1;
            match conn.step(&cycle, stopping) {
                Ok(Step::Idle) => {}
                Ok(Step::Progressed) => progressed = true,
                Ok(Step::Cycle(rtt)) => {
                    progressed = true;
                    if measuring.load(Ordering::Relaxed) {
                        report.updates += 1;
                        report.rtts_us.push(rtt.as_micros() as u64);
                    }
                }
                Err(_) => conn.done = true,
            }
        }
        if live == 0 {
            break;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    report
}

// ---------------------------------------------------------- harnessing

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub transport: &'static str,
    pub workers: usize,
    pub updates_per_sec: f64,
    pub p99_rtt_us: f64,
}

pub fn transport_name(t: Transport) -> &'static str {
    match t {
        Transport::Reactor => "reactor",
        Transport::Threaded => "threaded",
    }
}

/// Runs one (transport, workers) cell: spin the server up, drive it with
/// multiplexed simulated workers, measure for `measure` after `warmup`.
pub fn run_one(transport: Transport, workers: usize, warmup: Duration, measure: Duration) -> Row {
    let cfg = bench_config(transport);
    let (addr, server) = match transport {
        Transport::Reactor => {
            let srv = ReactorServer::bind("127.0.0.1:0", workers, cfg).expect("bench bind");
            let addr = srv.local_addr().expect("bench addr");
            (addr, std::thread::spawn(move || srv.serve(server_fn()).map(|_| ())))
        }
        Transport::Threaded => {
            let srv = NetServer::bind("127.0.0.1:0", workers, cfg).expect("bench bind");
            let addr = srv.local_addr().expect("bench addr");
            (addr, std::thread::spawn(move || srv.serve(server_fn()).map(|_| ())))
        }
    };

    let measuring = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let per = workers.div_ceil(DRIVER_THREADS);
    let drivers: Vec<_> = (0..DRIVER_THREADS)
        .filter_map(|d| {
            let lo = d * per;
            let hi = ((d + 1) * per).min(workers);
            (lo < hi).then(|| {
                let (measuring, stop) = (measuring.clone(), stop.clone());
                std::thread::spawn(move || drive(addr, lo..hi, measuring, stop))
            })
        })
        .collect();

    std::thread::sleep(warmup);
    measuring.store(true, Ordering::Relaxed);
    let t0 = Instant::now();
    std::thread::sleep(measure);
    measuring.store(false, Ordering::Relaxed);
    let window = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);

    let mut updates = 0u64;
    let mut rtts: Vec<u64> = Vec::new();
    for d in drivers {
        let r = d.join().expect("bench driver panicked");
        updates += r.updates;
        rtts.extend(r.rtts_us);
    }
    server.join().expect("bench server panicked").expect("bench server errored");

    rtts.sort_unstable();
    let p99 = if rtts.is_empty() { 0.0 } else { rtts[(rtts.len() - 1) * 99 / 100] as f64 };
    Row {
        transport: transport_name(transport),
        workers,
        updates_per_sec: updates as f64 / window,
        p99_rtt_us: p99,
    }
}

// ------------------------------------------------------------ baseline

/// Serializes measured rows in the committed `BENCH_net.json` shape.
pub fn to_json(rows: &[Row], measure: Duration) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"measure_s\": {:.1},\n", measure.as_secs_f64()));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"transport\": \"{}\", \"workers\": {}, \"updates_per_sec\": {:.0}, \"p99_rtt_us\": {:.0}}}{}\n",
            r.transport,
            r.workers,
            r.updates_per_sec,
            r.p99_rtt_us,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn extract_string(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_number(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// A row parsed back from a committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    pub transport: String,
    pub workers: usize,
    pub updates_per_sec: f64,
}

/// Parses (and schema-validates) a `BENCH_net.json` document — the same
/// purpose-built scanner idiom as the kernel baseline, not a general
/// JSON parser.
pub fn parse_baseline(json: &str) -> Result<Vec<BaselineRow>, String> {
    match extract_string(json, "schema") {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unsupported baseline schema {s:?} (expected {SCHEMA:?})")),
        None => return Err("baseline file has no \"schema\" field".into()),
    }
    let rows_at =
        json.find("\"rows\"").ok_or_else(|| "baseline file has no \"rows\" array".to_string())?;
    let mut rows = Vec::new();
    let mut rest = &json[rows_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .map(|c| open + c)
            .ok_or_else(|| "unterminated row object".to_string())?;
        let obj = &rest[open..=close];
        let transport = extract_string(obj, "transport")
            .ok_or_else(|| format!("row missing transport: {obj}"))?;
        let workers = extract_number(obj, "workers")
            .ok_or_else(|| format!("row {transport} missing workers"))?
            as usize;
        let ups = extract_number(obj, "updates_per_sec")
            .ok_or_else(|| format!("row {transport}/{workers} missing updates_per_sec"))?;
        if !(ups.is_finite() && ups > 0.0) {
            return Err(format!("row {transport}/{workers} has invalid updates_per_sec {ups}"));
        }
        rows.push(BaselineRow { transport, workers, updates_per_sec: ups });
        rest = &rest[close + 1..];
    }
    if rows.is_empty() {
        return Err("baseline file has an empty rows array".into());
    }
    Ok(rows)
}

/// The CI gate: the measured reactor updates/sec at the smoke worker
/// count must stay within `tolerance` of the committed baseline row.
pub fn regression_gate(
    current: &Row,
    baseline: &[BaselineRow],
    tolerance: f64,
) -> Result<(), String> {
    let Some(base) =
        baseline.iter().find(|b| b.transport == current.transport && b.workers == current.workers)
    else {
        return Err(format!(
            "baseline has no {}/{} row to gate against",
            current.transport, current.workers
        ));
    };
    if current.updates_per_sec < base.updates_per_sec * (1.0 - tolerance) {
        return Err(format!(
            "net-scale perf regression (> {:.0}% under baseline): {}/{}: {:.0} updates/s vs \
             baseline {:.0} (-{:.0}%)",
            tolerance * 100.0,
            current.transport,
            current.workers,
            current.updates_per_sec,
            base.updates_per_sec,
            (1.0 - current.updates_per_sec / base.updates_per_sec) * 100.0
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_messages_roundtrip() {
        let grad = ScaleReq::Grad { levels: vec![1, 2, 3, 255] };
        match ScaleReq::decoded(&grad.encoded()).unwrap() {
            ScaleReq::Grad { levels } => assert_eq!(levels, vec![1, 2, 3, 255]),
            _ => panic!("variant changed"),
        }
        assert!(matches!(ScaleReq::decoded(&ScaleReq::Pull.encoded()), Ok(ScaleReq::Pull)));
        let resp = ScaleResp { flat: vec![0.5; 8], version: 42 };
        let back = ScaleResp::decoded(&resp.encoded()).unwrap();
        assert_eq!((back.flat, back.version), (vec![0.5; 8], 42));
    }

    #[test]
    fn baseline_json_roundtrips_through_the_scanner() {
        let rows = vec![
            Row { transport: "threaded", workers: 64, updates_per_sec: 1234.0, p99_rtt_us: 850.0 },
            Row { transport: "reactor", workers: 64, updates_per_sec: 9876.0, p99_rtt_us: 120.0 },
        ];
        let json = to_json(&rows, Duration::from_secs(2));
        let back = parse_baseline(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].transport, "reactor");
        assert_eq!(back[1].workers, 64);
        assert_eq!(back[1].updates_per_sec, 9876.0);
    }

    #[test]
    fn gate_trips_on_regression_and_missing_rows() {
        let baseline = vec![BaselineRow {
            transport: "reactor".into(),
            workers: 256,
            updates_per_sec: 1000.0,
        }];
        let ok =
            Row { transport: "reactor", workers: 256, updates_per_sec: 850.0, p99_rtt_us: 0.0 };
        regression_gate(&ok, &baseline, GATE_TOLERANCE).unwrap();
        let slow =
            Row { transport: "reactor", workers: 256, updates_per_sec: 700.0, p99_rtt_us: 0.0 };
        assert!(regression_gate(&slow, &baseline, GATE_TOLERANCE).is_err());
        let missing =
            Row { transport: "reactor", workers: 64, updates_per_sec: 9999.0, p99_rtt_us: 0.0 };
        assert!(regression_gate(&missing, &baseline, GATE_TOLERANCE).is_err());
    }

    #[test]
    fn invalid_baselines_are_rejected() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\": \"net_scale/v0\"}").is_err());
        let empty = format!("{{\"schema\": \"{SCHEMA}\", \"rows\": []}}");
        assert!(parse_baseline(&empty).is_err());
    }

    /// End-to-end micro-run of the harness itself: both transports serve
    /// a handful of simulated workers for a fraction of a second.
    #[test]
    fn harness_measures_both_transports() {
        for transport in [Transport::Reactor, Transport::Threaded] {
            let row = run_one(transport, 4, Duration::from_millis(50), Duration::from_millis(150));
            assert_eq!(row.workers, 4);
            assert!(row.updates_per_sec > 0.0, "{} measured no updates", transport_name(transport));
        }
    }
}
