//! Regenerates Table 1: final test error + degradation for every
//! algorithm × worker count × BN mode, on both benchmarks.
//!
//! Usage: `repro-table1 [tiny|small|paper] [cifar|imagenet|both]`

use lcasgd_bench::{scale_from_args, tables, Scenario, REPRO_SEED};

fn main() {
    let scale = scale_from_args();
    let which = std::env::args().nth(2).unwrap_or_else(|| "both".into());
    if which == "cifar" || which == "both" {
        print!("{}", tables::table1(&Scenario::cifar(scale), REPRO_SEED));
        println!();
    }
    if which == "imagenet" || which == "both" {
        print!("{}", tables::table1(&Scenario::imagenet(scale), REPRO_SEED));
    }
}
