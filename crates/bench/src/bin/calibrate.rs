//! Scratch calibration binary: timing and qualitative-shape checks used
//! while tuning the experiment presets (kept as a diagnostic tool).
//!
//! Usage: `calibrate [tiny|small]`

use lcasgd_bench::Scenario;
use lcasgd_core::algorithms::Algorithm;
use lcasgd_core::config::Scale;
use lcasgd_core::trainer::run_experiment;
use std::time::Instant;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        _ => Scale::Tiny,
    };
    let s = Scenario::cifar(scale);
    println!(
        "cifar scenario: train {} test {} dims {:?}",
        s.train.len(),
        s.test.len(),
        &s.train.inputs.dims()[1..]
    );
    let build = |rng: &mut lcasgd_tensor::Rng| s.build_model(rng);
    {
        let mut rng = lcasgd_tensor::Rng::seed_from_u64(0);
        let net = s.build_model(&mut rng);
        println!("model params: {}", net.num_params());
    }

    for algo in
        [Algorithm::Sgd, Algorithm::Ssgd, Algorithm::Asgd, Algorithm::DcAsgd, Algorithm::LcAsgd]
    {
        for m in [4usize, 16] {
            if algo == Algorithm::Sgd && m != 4 {
                continue;
            }
            let cfg = s.config(algo, m, 1);
            let t0 = Instant::now();
            let r = run_experiment(&cfg, &build, &s.train, &s.test);
            let el = t0.elapsed().as_secs_f64();
            println!(
                "{:8} M={:2}  final_test {:5.2}%  best {:5.2}%  mean_staleness {:5.2}  vtime {:7.1}s  cpu {:5.1}s  iters {}",
                algo.to_string(),
                m,
                r.final_test_error() * 100.0,
                r.best_test_error() * 100.0,
                r.mean_staleness(),
                r.total_time,
                el,
                r.iterations
            );
        }
    }
}
