//! Probe: does a straggler-prone cluster (the paper's "high and volatile"
//! delay regime) make staleness reliably costly, and does LC-ASGD recover
//! it? Used to pick the default experiment cluster (kept as a tuning
//! tool).
//!
//! Usage: `probe-stragglers [prob] [factor]`

use lcasgd_bench::Scenario;
use lcasgd_core::algorithms::Algorithm;
use lcasgd_core::config::Scale;
use lcasgd_core::trainer::run_experiment;
use lcasgd_simcluster::ClusterSpec;
use lcasgd_tensor::Rng;

fn main() {
    let prob: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let factor: f64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let s = Scenario::cifar(Scale::Small);
    let build = |rng: &mut Rng| s.build_model(rng);

    println!("straggler prob {prob} factor {factor}");
    for (algo, m) in [
        (Algorithm::Asgd, 4),
        (Algorithm::Asgd, 16),
        (Algorithm::DcAsgd, 16),
        (Algorithm::LcAsgd, 16),
    ] {
        let mut errs = Vec::new();
        let mut stal = 0.0;
        for seed in [1u64, 2, 3] {
            let mut cfg = s.config(algo, m, seed);
            let mut cluster = ClusterSpec::with_stragglers(m, seed);
            for w in &mut cluster.workers {
                w.straggle_prob = prob;
                w.straggle_factor = factor;
            }
            cfg.cluster = cluster;
            let r = run_experiment(&cfg, &build, &s.train, &s.test);
            errs.push(r.final_test_error() * 100.0);
            stal = r.mean_staleness();
        }
        let mean = errs.iter().sum::<f32>() / errs.len() as f32;
        println!(
            "{:8} M={m:<2} errs {:?} mean {mean:5.2}% staleness {stal:5.1}",
            algo.to_string(),
            errs.iter().map(|e| format!("{e:.2}")).collect::<Vec<_>>()
        );
    }
}
