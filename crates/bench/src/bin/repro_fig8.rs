//! Regenerates Figure 8: the step predictor's forecasts against the
//! actual per-iteration staleness (LC-ASGD, 16 workers, ImageNet-like).
//!
//! Usage: `repro-fig8 [tiny|small|paper]`

use lcasgd_bench::{figures, scale_from_args, Scenario, REPRO_SEED};

fn main() {
    let scenario = Scenario::imagenet(scale_from_args());
    let (_, fig8) = figures::fig7_8(&scenario, 16, REPRO_SEED);
    print!("{fig8}");
}
