//! Regenerates Figure 7: the loss predictor's forecasts against the
//! actual loss series (LC-ASGD, 16 workers, ImageNet-like).
//!
//! Usage: `repro-fig7 [tiny|small|paper]`

use lcasgd_bench::{figures, scale_from_args, Scenario, REPRO_SEED};

fn main() {
    let scenario = Scenario::imagenet(scale_from_args());
    let (fig7, _) = figures::fig7_8(&scenario, 16, REPRO_SEED);
    print!("{fig7}");
}
