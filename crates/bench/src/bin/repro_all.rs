//! Regenerates every figure and table in one pass (the source of
//! EXPERIMENTS.md's measured numbers).
//!
//! Usage: `repro-all [tiny|small|paper]`

use lcasgd_bench::{figures, scale_from_args, tables, Scenario, REPRO_SEED};
use std::time::Instant;

fn main() {
    let scale = scale_from_args();
    let t0 = Instant::now();
    let cifar = Scenario::cifar(scale);
    let imagenet = Scenario::imagenet(scale);

    println!("# LC-ASGD reproduction — full experiment sweep ({scale:?} scale)\n");

    print!("{}", figures::fig2(&cifar, REPRO_SEED).render_by_epoch());
    println!();
    for m in [4usize, 8, 16] {
        let set = figures::panel(&cifar, m, true, REPRO_SEED);
        print!("{}", set.render_by_epoch());
        print!("{}", set.render_by_time());
        println!();
    }
    for m in [4usize, 8, 16] {
        let set = figures::panel(&imagenet, m, false, REPRO_SEED);
        print!("{}", set.render_by_epoch());
        print!("{}", set.render_by_time());
        println!();
    }
    let (fig7, fig8) = figures::fig7_8(&imagenet, 16, REPRO_SEED);
    print!("{fig7}\n{fig8}\n");

    print!("{}", tables::table1(&cifar, REPRO_SEED));
    println!();
    print!("{}", tables::table1(&imagenet, REPRO_SEED));
    println!();
    print!("{}", tables::table2_3(&cifar, REPRO_SEED));
    println!();
    print!("{}", tables::table2_3(&imagenet, REPRO_SEED));

    eprintln!("\ntotal sweep time: {:.1}s", t0.elapsed().as_secs_f64());
}
