//! Regenerates Table 2: LC-ASGD predictor overhead per training iteration
//! on the CIFAR-10-like benchmark, M ∈ {4, 8, 16}.
//!
//! Usage: `repro-table2 [tiny|small|paper]`

use lcasgd_bench::{scale_from_args, tables, Scenario, REPRO_SEED};

fn main() {
    let scenario = Scenario::cifar(scale_from_args());
    print!("{}", tables::table2_3(&scenario, REPRO_SEED));
}
