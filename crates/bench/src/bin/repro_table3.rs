//! Regenerates Table 3: LC-ASGD predictor overhead per training iteration
//! on the ImageNet-like benchmark, M ∈ {4, 8, 16}.
//!
//! Usage: `repro-table3 [tiny|small|paper]`

use lcasgd_bench::{scale_from_args, tables, Scenario, REPRO_SEED};

fn main() {
    let scenario = Scenario::imagenet(scale_from_args());
    print!("{}", tables::table2_3(&scenario, REPRO_SEED));
}
