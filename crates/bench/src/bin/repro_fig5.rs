//! Regenerates Figure 5: train/test error vs epochs for the four
//! distributed algorithms × M ∈ {4, 8, 16} (ImageNet-like, Async-BN).
//!
//! Usage: `repro-fig5 [tiny|small|paper]`

use lcasgd_bench::{figures, scale_from_args, Scenario, REPRO_SEED};

fn main() {
    let scenario = Scenario::imagenet(scale_from_args());
    for m in [4usize, 8, 16] {
        let set = figures::panel(&scenario, m, false, REPRO_SEED);
        print!("{}", set.render_by_epoch());
        println!();
    }
}
