//! Regenerates Figure 2: DC-ASGD test error vs epochs for M ∈ {4, 8, 16}
//! on the CIFAR-10-like benchmark, with the sequential-SGD reference.
//!
//! Usage: `repro-fig2 [tiny|small|paper]`

use lcasgd_bench::{figures, scale_from_args, Scenario, REPRO_SEED};

fn main() {
    let scenario = Scenario::cifar(scale_from_args());
    let set = figures::fig2(&scenario, REPRO_SEED);
    print!("{}", set.render_by_epoch());
}
