//! `net-scale` — measures the netcluster transports under 64–1024
//! simulated workers and maintains `BENCH_net.json`.
//!
//! * `net-scale` — full run: measures the {threaded, reactor} × {64,
//!   256, 1024} grid on loopback, prints the table, and (re)writes
//!   `BENCH_net.json` in the working directory. Run from the repo root
//!   to refresh the committed baseline.
//! * `net-scale --smoke` — CI mode: quick re-measurement of the reactor
//!   at 256 workers, validates the committed baseline's schema, and
//!   exits nonzero if updates/sec regressed more than 20 % against it.
//!   When no baseline file exists the gate is skipped (first run on a
//!   new checkout).

use lcasgd_bench::netscale::{
    parse_baseline, regression_gate, run_one, to_json, Row, BASELINE_FILE, FULL_GRID,
    GATE_TOLERANCE, SMOKE_WORKERS,
};
use lcasgd_netcluster::Transport;
use std::time::Duration;

fn print_table(rows: &[Row]) {
    println!("{:<10} {:>8} {:>14} {:>12}", "transport", "workers", "updates/sec", "p99 rtt us");
    for r in rows {
        println!(
            "{:<10} {:>8} {:>14.0} {:>12.0}",
            r.transport, r.workers, r.updates_per_sec, r.p99_rtt_us
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (warmup, measure) = if smoke {
        (Duration::from_millis(300), Duration::from_millis(1000))
    } else {
        (Duration::from_millis(500), Duration::from_millis(2000))
    };

    if smoke {
        eprintln!(
            "net-scale: smoke mode (reactor @ {SMOKE_WORKERS} workers, {:.1}s window)...",
            measure.as_secs_f64()
        );
        let row = run_one(Transport::Reactor, SMOKE_WORKERS, warmup, measure);
        print_table(std::slice::from_ref(&row));
        match std::fs::read_to_string(BASELINE_FILE) {
            Ok(json) => {
                let baseline = match parse_baseline(&json) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("net-scale: committed {BASELINE_FILE} is invalid: {e}");
                        std::process::exit(1);
                    }
                };
                if let Err(e) = regression_gate(&row, &baseline, GATE_TOLERANCE) {
                    eprintln!("net-scale: {e}");
                    std::process::exit(1);
                }
                println!(
                    "net-scale --smoke: schema ok, reactor @ {SMOKE_WORKERS} within {:.0}% of baseline",
                    GATE_TOLERANCE * 100.0
                );
            }
            Err(_) => {
                println!("net-scale --smoke: no {BASELINE_FILE} found; regression gate skipped");
            }
        }
        return;
    }

    let mut rows = Vec::new();
    for &workers in &FULL_GRID {
        // At 1024 workers the thread-per-connection server's first
        // cycles take whole seconds (a thousand threads on few cores):
        // stretch the windows so the slow transport completes enough
        // cycles to measure at all.
        let (warmup, measure) = if workers >= 1024 {
            (Duration::from_secs(4), Duration::from_secs(6))
        } else {
            (warmup, measure)
        };
        for transport in [Transport::Threaded, Transport::Reactor] {
            eprintln!(
                "net-scale: measuring {} @ {workers} workers...",
                lcasgd_bench::netscale::transport_name(transport)
            );
            rows.push(run_one(transport, workers, warmup, measure));
        }
    }
    print_table(&rows);
    for &workers in &FULL_GRID {
        let find = |t: &str| rows.iter().find(|r| r.transport == t && r.workers == workers);
        if let (Some(th), Some(re)) = (find("threaded"), find("reactor")) {
            println!(
                "reactor speedup @ {workers}: {:.2}x",
                re.updates_per_sec / th.updates_per_sec.max(1e-9)
            );
        }
    }

    let json = to_json(&rows, measure);
    // Validate what we are about to write with the same parser CI uses.
    if let Err(e) = parse_baseline(&json) {
        eprintln!("net-scale: generated document failed self-validation: {e}");
        std::process::exit(1);
    }
    std::fs::write(BASELINE_FILE, &json).unwrap_or_else(|e| {
        eprintln!("net-scale: cannot write {BASELINE_FILE}: {e}");
        std::process::exit(1);
    });
    println!("wrote {BASELINE_FILE}");
}
