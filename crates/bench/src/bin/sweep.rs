//! Hyper-parameter sweep probe used to position the Small-scale presets
//! in the regime where the paper's qualitative contrasts are visible
//! (kept as a tuning tool).
//!
//! Usage: `sweep`

use lcasgd_core::algorithms::Algorithm;
use lcasgd_core::config::{ExperimentConfig, Scale};
use lcasgd_core::trainer::run_experiment;
use lcasgd_data::SyntheticImageSpec;
use lcasgd_nn::resnet::ResNetConfig;
use lcasgd_nn::LrSchedule;
use lcasgd_tensor::Rng;
use std::time::Instant;

fn main() {
    let epochs = 14;
    for (noise, label_noise) in [(1.2f32, 0.08f32), (1.5, 0.08)] {
        let spec = SyntheticImageSpec {
            noise,
            label_noise,
            ..SyntheticImageSpec::cifar10_like(10, 10, 96, 32)
        };
        let (train, test) = spec.generate();
        let resnet = ResNetConfig::tiny(3, 10);
        let build = |rng: &mut Rng| resnet.build(rng);
        for lr_mult in [1.0f32, 2.0, 4.0] {
            for (algo, m) in [
                (Algorithm::Sgd, 1),
                (Algorithm::Asgd, 4),
                (Algorithm::Asgd, 16),
                (Algorithm::DcAsgd, 16),
                (Algorithm::LcAsgd, 16),
            ] {
                let mut cfg = ExperimentConfig::new(algo, m, Scale::Small, 1);
                cfg.epochs = epochs;
                cfg.batch_size = 16;
                cfg.lr = LrSchedule::paper_step(0.3 * 16.0 / 128.0 * lr_mult, epochs);
                cfg.max_eval_train = 256;
                let t0 = Instant::now();
                let r = run_experiment(&cfg, &build, &train, &test);
                println!(
                    "noise {noise:.1}/{label_noise:.2} lr×{lr_mult:<3} {:8} M={m:<2} test {:5.1}% train {:5.1}% cpu {:4.1}s",
                    algo.to_string(),
                    r.final_test_error() * 100.0,
                    r.epochs.last().unwrap().train_error * 100.0,
                    t0.elapsed().as_secs_f64()
                );
            }
            println!();
        }
    }
}
