//! Regenerates Figure 3: train/test error vs epochs for all five
//! algorithms × M ∈ {4, 8, 16} (CIFAR-10-like, Async-BN).
//!
//! Usage: `repro-fig3 [tiny|small|paper]`

use lcasgd_bench::{figures, scale_from_args, Scenario, REPRO_SEED};

fn main() {
    let scenario = Scenario::cifar(scale_from_args());
    for m in [4usize, 8, 16] {
        let set = figures::panel(&scenario, m, true, REPRO_SEED);
        print!("{}", set.render_by_epoch());
        println!();
    }
}
