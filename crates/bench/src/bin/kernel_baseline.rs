//! `kernel-baseline` — measures the hot tensor kernels (seed copies vs the
//! packed/fused implementations) and maintains `BENCH_kernels.json`.
//!
//! * `kernel-baseline` — full run: measures with a generous sample count,
//!   prints the table, and (re)writes `BENCH_kernels.json` in the working
//!   directory. Run from the repo root to refresh the committed baseline.
//! * `kernel-baseline --smoke` — CI mode: quick re-measurement, validates
//!   the committed baseline's schema, and exits nonzero if any kernel's
//!   optimized time regressed more than 20 % against it. When no baseline
//!   file exists the gate is skipped (first run on a new checkout).

use lcasgd_bench::kernels::{
    measure_all, parse_baseline, regression_gate, to_json, BASELINE_FILE, GATE_TOLERANCE,
};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let samples = if smoke { 3 } else { 11 };

    eprintln!(
        "kernel-baseline: measuring {} mode ({} samples per kernel, min-of-samples)...",
        if smoke { "smoke" } else { "full" },
        samples
    );
    let reports = measure_all(samples);

    println!(
        "{:<18} {:<24} {:>10} {:>10} {:>9}",
        "kernel", "shape", "seed ms", "opt ms", "speedup"
    );
    for r in &reports {
        println!(
            "{:<18} {:<24} {:>10.4} {:>10.4} {:>8.2}x",
            r.name,
            r.shape,
            r.seed_ms,
            r.opt_ms,
            r.speedup()
        );
    }

    if smoke {
        match std::fs::read_to_string(BASELINE_FILE) {
            Ok(json) => {
                let baseline = match parse_baseline(&json) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("kernel-baseline: committed {BASELINE_FILE} is invalid: {e}");
                        std::process::exit(1);
                    }
                };
                if let Err(e) = regression_gate(&reports, &baseline, GATE_TOLERANCE) {
                    eprintln!("kernel-baseline: {e}");
                    std::process::exit(1);
                }
                println!(
                    "kernel-baseline --smoke: schema ok, {} kernels within {:.0}% of baseline",
                    baseline.len(),
                    GATE_TOLERANCE * 100.0
                );
            }
            Err(_) => {
                println!(
                    "kernel-baseline --smoke: no {BASELINE_FILE} found; regression gate skipped"
                );
            }
        }
    } else {
        let json = to_json(&reports, samples);
        // Validate what we are about to write with the same parser CI uses.
        if let Err(e) = parse_baseline(&json) {
            eprintln!("kernel-baseline: generated document failed self-validation: {e}");
            std::process::exit(1);
        }
        std::fs::write(BASELINE_FILE, &json).unwrap_or_else(|e| {
            eprintln!("kernel-baseline: cannot write {BASELINE_FILE}: {e}");
            std::process::exit(1);
        });
        println!("wrote {BASELINE_FILE}");
    }
}
