//! Table runners: regenerate the paper's Tables 1–3.

use crate::render::{pct, table};
use crate::scenario::{Scenario, ScenarioKind};
use lcasgd_core::algorithms::Algorithm;
use lcasgd_core::bnmode::BnMode;
use lcasgd_core::metrics::RunResult;
use lcasgd_core::trainer::run_experiment;
use lcasgd_tensor::Rng;

/// Table 1 for one dataset: final test error and degradation for
/// `{SGD} ∪ {SSGD, ASGD, DC-ASGD, LC-ASGD} × {4, 8, 16} × {BN, Async-BN}`.
///
/// The degradation baseline matches the paper: sequential SGD on CIFAR-10;
/// SSGD with 4 workers on ImageNet (where sequential training is skipped).
pub fn table1(scenario: &Scenario, seed: u64) -> String {
    let build = |rng: &mut Rng| scenario.build_model(rng);
    let run = |algo: Algorithm, m: usize, bn: BnMode| -> RunResult {
        let mut cfg = scenario.config(algo, m, seed);
        cfg.bn_mode = bn;
        run_experiment(&cfg, &build, &scenario.train, &scenario.test)
    };

    let include_sgd = scenario.kind == ScenarioKind::Cifar;
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut baseline: [Option<f32>; 2] = [None, None];

    if include_sgd {
        let mut row = vec!["1".to_string(), "SGD".to_string()];
        for (i, bn) in [BnMode::Regular, BnMode::Async].iter().enumerate() {
            let r = run(Algorithm::Sgd, 1, *bn);
            baseline[i] = Some(r.final_test_error());
            row.push(pct(r.final_test_error()));
            row.push("baseline".into());
        }
        rows.push(row);
    }

    for m in [4usize, 8, 16] {
        for algo in Algorithm::DISTRIBUTED {
            let mut row = vec![m.to_string(), algo.to_string()];
            for (i, bn) in [BnMode::Regular, BnMode::Async].iter().enumerate() {
                let r = run(algo, m, *bn);
                let err = r.final_test_error();
                // ImageNet's baseline is SSGD at M=4 (the first row run).
                if !include_sgd && m == 4 && algo == Algorithm::Ssgd {
                    baseline[i] = Some(err);
                }
                row.push(pct(err));
                match baseline[i] {
                    Some(b) if (err - b).abs() > 1e-9 => {
                        row.push(format!("{:+.2}", (err - b) / b * 100.0))
                    }
                    Some(_) => row.push("baseline".into()),
                    None => row.push("-".into()),
                }
            }
            rows.push(row);
        }
    }

    table(
        &format!("Table 1 ({}): final test error (%) and degradation (%)", scenario.name()),
        &["M", "Algorithm", "BN err", "BN deg", "Async-BN err", "Async-BN deg"],
        &rows,
    )
}

/// Tables 2–3: LC-ASGD predictor overhead per training iteration for
/// M ∈ {4, 8, 16}. The predictor columns are *measured* wall-clock CPU
/// milliseconds; the "Total Training" column is *virtual* milliseconds
/// from the cost model (the run's clock domain — see
/// [`RunResult::clock`]). The cost model is calibrated so a virtual
/// iteration stands in for a real one, which is what makes the overhead
/// ratio meaningful; the clock domains are named here so the mix is a
/// choice, not an accident.
pub fn table2_3(scenario: &Scenario, seed: u64) -> String {
    let build = |rng: &mut Rng| scenario.build_model(rng);
    let mut rows = Vec::new();
    for m in [4usize, 8, 16] {
        let cfg = scenario.config(Algorithm::LcAsgd, m, seed);
        let r = run_experiment(&cfg, &build, &scenario.train, &scenario.test);
        let o = r.overhead.as_ref().expect("LC-ASGD reports overhead");
        let loss_ms = o.avg_loss_pred_ms();
        let step_ms = o.avg_step_pred_ms();
        // The paper's "Total Training" column is the per-worker iteration
        // latency. `avg_iteration_ms` is server *throughput* (M workers in
        // parallel), so multiply back by M; this includes queueing behind
        // the serialized predictor work, as the paper's measurement does.
        let total_ms = r.avg_iteration_ms() * m as f64;
        rows.push(vec![
            m.to_string(),
            format!("{loss_ms:.2}"),
            format!("{step_ms:.2}"),
            format!("{total_ms:.2}"),
            format!("{:.2}", (loss_ms + step_ms) / total_ms * 100.0),
        ]);
    }
    let id = if scenario.kind == ScenarioKind::Cifar {
        "Table 2 (CIFAR-10)"
    } else {
        "Table 3 (ImageNet)"
    };
    table(
        &format!("{id}: average per-iteration predictor time"),
        &[
            "Workers",
            "Loss Pred. (ms)",
            "Step Pred. (ms)",
            "Total Training (virtual ms)",
            "Overhead (%)",
        ],
        &rows,
    )
}
