//! Plain-text renderers: aligned series tables and ASCII sparkline plots
//! for terminal inspection of the regenerated figures.

/// Renders named series sharing an x-axis as an aligned text table.
/// Series may have differing lengths; missing cells print blank.
pub fn series_table(title: &str, x_label: &str, xs: &[f64], series: &[(&str, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!("{x_label:>10}"));
    for (name, _) in series {
        out.push_str(&format!(" {name:>12}"));
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:>10.2}"));
        for (_, ys) in series {
            match ys.get(i) {
                Some(y) => out.push_str(&format!(" {y:>12.4}")),
                None => out.push_str(&format!(" {:>12}", "")),
            }
        }
        out.push('\n');
    }
    out
}

/// A single-row ASCII sparkline (8 levels) for quick curve inspection.
pub fn sparkline(ys: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if ys.is_empty() {
        return String::new();
    }
    let min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    ys.iter()
        .map(|y| {
            let t = ((y - min) / span * 7.0).round().clamp(0.0, 7.0) as usize;
            LEVELS[t]
        })
        .collect()
}

/// Renders a generic table with a header row and string cells.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    for (h, w) in header.iter().zip(&widths) {
        out.push_str(&format!("{h:>w$} ", w = w + 2));
    }
    out.push('\n');
    for row in rows {
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!("{cell:>w$} ", w = w + 2));
        }
        out.push('\n');
    }
    out
}

/// Formats an error rate as a percentage with two decimals (Table 1 style).
pub fn pct(err: f32) -> String {
    format!("{:.2}", err * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_table_aligns_and_handles_ragged() {
        let out = series_table(
            "t",
            "epoch",
            &[1.0, 2.0, 3.0],
            &[("a", vec![0.1, 0.2, 0.3]), ("b", vec![0.5])],
        );
        assert!(out.contains("== t =="));
        assert_eq!(out.lines().count(), 5);
        assert!(out.contains("0.5000"));
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn table_pads_cells() {
        let out = table("x", &["col", "wide_column"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("wide_column"));
    }

    #[test]
    fn pct_formats_like_table1() {
        assert_eq!(pct(0.0515), "5.15");
        assert_eq!(pct(0.2486), "24.86");
    }
}
