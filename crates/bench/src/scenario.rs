//! Experiment scenarios: dataset + model + configuration bundles matching
//! the paper's two benchmarks.

use lcasgd_core::algorithms::Algorithm;
use lcasgd_core::config::{ExperimentConfig, Scale};
use lcasgd_data::{Dataset, SyntheticImageSpec};
use lcasgd_nn::resnet::ResNetConfig;
use lcasgd_nn::Network;
use lcasgd_tensor::Rng;

/// Which paper benchmark a scenario models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// ResNet-18 on CIFAR-10 (paper §5.1).
    Cifar,
    /// ResNet-50(v2) on ImageNet (paper §5.2).
    ImageNet,
}

/// A fully materialized experiment scenario.
pub struct Scenario {
    pub kind: ScenarioKind,
    pub scale: Scale,
    pub train: Dataset,
    pub test: Dataset,
    resnet: ResNetConfig,
}

impl Scenario {
    /// The CIFAR-10-like scenario at the given scale.
    pub fn cifar(scale: Scale) -> Self {
        let hw = scale.cifar_hw();
        let spec = SyntheticImageSpec {
            // Pattern noise + 8% label noise give the task a realistic
            // error floor (CIFAR-10's ~5%) so algorithm differences are
            // visible above 0% — see the sweep tool for the calibration.
            noise: 1.2,
            label_noise: 0.08,
            ..SyntheticImageSpec::cifar10_like(
                hw,
                hw,
                scale.cifar_train_per_class(),
                scale.cifar_test_per_class(),
            )
        };
        let (train, test) = spec.generate();
        let resnet = match scale {
            Scale::Tiny => ResNetConfig::tiny(3, 10),
            Scale::Small => ResNetConfig::tiny(3, 10),
            Scale::Paper => ResNetConfig::resnet18_cifar(10),
        };
        Scenario { kind: ScenarioKind::Cifar, scale, train, test, resnet }
    }

    /// The ImageNet-like scenario: more classes, higher intra-class
    /// variance, deeper model — a harder task with a higher error floor.
    pub fn imagenet(scale: Scale) -> Self {
        let hw = scale.imagenet_hw();
        let (classes, train_pc, test_pc) = match scale {
            Scale::Tiny => (12, 16, 6),
            Scale::Small => (16, 60, 16),
            Scale::Paper => (1000, 1300, 50),
        };
        let spec = SyntheticImageSpec {
            // Harder than the CIFAR-like task: ImageNet's error floor is
            // an order of magnitude higher (paper Table 1: ~24% vs ~5%).
            noise: 1.6,
            label_noise: 0.12,
            ..SyntheticImageSpec::imagenet_like(classes, hw, hw, train_pc, test_pc)
        };
        let (train, test) = spec.generate();
        let resnet = match scale {
            // The paper's CIFAR/ImageNet contrast is carried by dataset
            // difficulty at the reduced scales; the single-core budget
            // rules out the deeper preset below Paper scale.
            Scale::Tiny | Scale::Small => ResNetConfig::tiny(3, classes),
            Scale::Paper => ResNetConfig::resnet50_like(classes),
        };
        Scenario { kind: ScenarioKind::ImageNet, scale, train, test, resnet }
    }

    /// Builds the scenario's network (deterministic in the RNG).
    pub fn build_model(&self, rng: &mut Rng) -> Network {
        self.resnet.build(rng)
    }

    /// Experiment configuration for an algorithm/worker-count pair,
    /// with the scenario's epochs, LR schedule and iteration costs.
    pub fn config(&self, algorithm: Algorithm, workers: usize, seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(algorithm, workers, self.scale, seed);
        if self.kind == ScenarioKind::ImageNet {
            cfg = cfg.imagenet(self.scale);
        }
        cfg
    }

    /// Display name ("CIFAR-10" / "ImageNet") matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self.kind {
            ScenarioKind::Cifar => "CIFAR-10",
            ScenarioKind::ImageNet => "ImageNet",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar_tiny_materializes() {
        let s = Scenario::cifar(Scale::Tiny);
        assert_eq!(s.train.num_classes, 10);
        assert_eq!(s.train.inputs.dims()[1], 3);
        let mut rng = Rng::seed_from_u64(1);
        let net = s.build_model(&mut rng);
        assert!(net.num_params() > 0);
    }

    #[test]
    fn imagenet_config_uses_imagenet_costs() {
        let s = Scenario::imagenet(Scale::Tiny);
        let cfg = s.config(Algorithm::Asgd, 4, 0);
        assert!((cfg.cost.iteration() - 0.183).abs() < 1e-9);
        assert_eq!(cfg.epochs, Scale::Tiny.imagenet_epochs());
    }

    #[test]
    fn model_build_is_deterministic() {
        let s = Scenario::cifar(Scale::Tiny);
        let a = s.build_model(&mut Rng::seed_from_u64(5));
        let b = s.build_model(&mut Rng::seed_from_u64(5));
        assert_eq!(a.flat_params(), b.flat_params());
    }
}
