//! # lcasgd-bench
//!
//! The benchmark harness: experiment scenarios (synthetic CIFAR-10-like
//! and ImageNet-like workloads with matching ResNet presets), runners for
//! every figure and table of the paper, and plain-text renderers.
//!
//! Each paper artifact has both a criterion bench target (`benches/`) and
//! a standalone `repro-*` binary (`src/bin/`) that prints the regenerated
//! rows/series. `EXPERIMENTS.md` at the workspace root records the
//! paper-vs-measured comparison produced by these binaries.

pub mod figures;
pub mod kernels;
pub mod netscale;
pub mod render;
pub mod scenario;
pub mod tables;

pub use scenario::{Scenario, ScenarioKind};

use lcasgd_core::config::Scale;

/// Parses the scale argument shared by all `repro-*` binaries:
/// `tiny` (default for smoke runs), `small` (the documented EXPERIMENTS.md
/// setting), or `paper` (full-size models/epochs; hours of CPU).
pub fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        Some("paper") => Scale::Paper,
        _ => Scale::Tiny,
    }
}

/// The seed every repro binary uses, so printed numbers are reproducible.
pub const REPRO_SEED: u64 = 2020;

/// Seconds-long experiment helpers for the criterion bench targets: the
/// Tiny scenario with a reduced epoch budget, cached datasets, and knobs
/// for the ablations. The full-length regenerations live in the
/// `repro-*` binaries; the benches measure the *cost* of each pipeline.
pub mod quick {
    use crate::Scenario;
    use lcasgd_core::algorithms::Algorithm;
    use lcasgd_core::bnmode::BnMode;
    use lcasgd_core::compensation::CompensationMode;
    use lcasgd_core::config::Scale;
    use lcasgd_core::metrics::RunResult;
    use lcasgd_core::trainer::run_experiment;
    use lcasgd_tensor::Rng;
    use std::sync::OnceLock;

    fn cifar() -> &'static Scenario {
        static S: OnceLock<Scenario> = OnceLock::new();
        S.get_or_init(|| Scenario::cifar(Scale::Tiny))
    }

    fn imagenet() -> &'static Scenario {
        static S: OnceLock<Scenario> = OnceLock::new();
        S.get_or_init(|| Scenario::imagenet(Scale::Tiny))
    }

    fn run(
        scenario: &Scenario,
        algo: Algorithm,
        m: usize,
        epochs: usize,
        bn: BnMode,
        comp: CompensationMode,
    ) -> RunResult {
        let mut cfg = scenario.config(algo, m, crate::REPRO_SEED);
        cfg.epochs = epochs;
        cfg.bn_mode = bn;
        cfg.compensation = comp;
        cfg.max_eval_train = 128;
        let build = |rng: &mut Rng| scenario.build_model(rng);
        run_experiment(&cfg, &build, &scenario.train, &scenario.test)
    }

    /// Short CIFAR-like run (2 epochs).
    pub fn cifar_run(algo: Algorithm, m: usize) -> RunResult {
        run(cifar(), algo, m, 2, BnMode::Async, CompensationMode::Relative)
    }

    /// Short CIFAR-like run with explicit BN mode.
    pub fn cifar_run_bn(algo: Algorithm, m: usize, bn: BnMode) -> RunResult {
        run(cifar(), algo, m, 2, bn, CompensationMode::Relative)
    }

    /// Short LC-ASGD CIFAR run with an explicit compensation mode.
    pub fn cifar_run_comp(m: usize, comp: CompensationMode) -> RunResult {
        run(cifar(), Algorithm::LcAsgd, m, 2, BnMode::Async, comp)
    }

    /// Short ImageNet-like run (1 epoch; the model is larger).
    pub fn imagenet_run(algo: Algorithm, m: usize) -> RunResult {
        run(imagenet(), algo, m, 1, BnMode::Async, CompensationMode::Relative)
    }

    /// Short ASGD CIFAR run with gradient compression on the push.
    pub fn cifar_run_compressed(
        m: usize,
        compression: lcasgd_core::comm::Compression,
    ) -> RunResult {
        let scenario = cifar();
        let mut cfg = scenario.config(Algorithm::Asgd, m, crate::REPRO_SEED);
        cfg.epochs = 2;
        cfg.max_eval_train = 128;
        cfg.compression = compression;
        let build = |rng: &mut Rng| scenario.build_model(rng);
        run_experiment(&cfg, &build, &scenario.train, &scenario.test)
    }
}
