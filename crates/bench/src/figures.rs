//! Figure runners: regenerate each figure of the paper's evaluation as
//! plain-text series (one column per curve).

use crate::render::{series_table, sparkline};
use crate::scenario::Scenario;
use lcasgd_core::algorithms::Algorithm;
use lcasgd_core::metrics::RunResult;
use lcasgd_core::trainer::run_experiment;
use lcasgd_tensor::Rng;

/// A set of runs sharing a panel (same M, same dataset).
pub struct CurveSet {
    pub title: String,
    pub runs: Vec<RunResult>,
}

impl CurveSet {
    /// Renders train+test error against epochs (Figures 2, 3 and 5).
    pub fn render_by_epoch(&self) -> String {
        let xs: Vec<f64> = self.longest_epochs().iter().map(|&e| e as f64).collect();
        let mut series: Vec<(String, Vec<f64>)> = Vec::new();
        for r in &self.runs {
            series.push((
                format!("{} train", short(&r.label)),
                r.epochs.iter().map(|e| e.train_error as f64).collect(),
            ));
            series.push((
                format!("{} test", short(&r.label)),
                r.epochs.iter().map(|e| e.test_error as f64).collect(),
            ));
        }
        let named: Vec<(&str, Vec<f64>)> =
            series.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        let mut out = series_table(&format!("{} (by epoch)", self.title), "epoch", &xs, &named);
        out.push('\n');
        for r in &self.runs {
            let ys: Vec<f64> = r.epochs.iter().map(|e| e.test_error as f64).collect();
            out.push_str(&format!("{:>10} test {}\n", short(&r.label), sparkline(&ys)));
        }
        out
    }

    /// Renders error against elapsed seconds (Figures 4 and 6) — each
    /// curve carries its own time axis, so rows print per run. The axis is
    /// labelled with the runs' clock domain: the co-simulated drivers
    /// report *virtual* seconds, real backends wall seconds
    /// ([`RunResult::clock`]).
    pub fn render_by_time(&self) -> String {
        let clock = self.runs.first().map(|r| r.clock).unwrap_or_default();
        let mut out = format!("== {} (by {clock}-clock seconds) ==\n", self.title);
        // Convergence-speed crossover: seconds to reach 2× the panel's
        // best final error — the quantity Figure 4/6 plots answer.
        let best_final =
            self.runs.iter().map(|r| r.final_test_error()).fold(f32::INFINITY, f32::min);
        let threshold = (best_final * 2.0).max(best_final + 0.01);
        for r in &self.runs {
            let reach = r
                .time_to_error(threshold)
                .map(|t| format!("{t:.1}s"))
                .unwrap_or_else(|| "never".into());
            out.push_str(&format!(
                "{:>10}: total {:>8.1}s  ({} updates, {:.1} ms/update, reaches {:.1}% err at {})\n",
                short(&r.label),
                r.total_time,
                r.iterations,
                r.avg_iteration_ms(),
                threshold * 100.0,
                reach
            ));
        }
        for r in &self.runs {
            let xs: Vec<f64> = r.epochs.iter().map(|e| e.time).collect();
            let train: Vec<f64> = r.epochs.iter().map(|e| e.train_error as f64).collect();
            let test: Vec<f64> = r.epochs.iter().map(|e| e.test_error as f64).collect();
            out.push_str(&series_table(
                &format!("{} vs time", short(&r.label)),
                &format!("{}-s", r.clock),
                &xs,
                &[("train_err", train), ("test_err", test)],
            ));
        }
        out
    }

    fn longest_epochs(&self) -> Vec<usize> {
        let n = self.runs.iter().map(|r| r.epochs.len()).max().unwrap_or(0);
        (1..=n).collect()
    }
}

fn short(label: &str) -> String {
    label.split(' ').next().unwrap_or(label).to_string()
}

/// Figure 2: DC-ASGD's test error rises with the worker count
/// (ResNet-18 / CIFAR-10), against the sequential-SGD reference.
pub fn fig2(scenario: &Scenario, seed: u64) -> CurveSet {
    let build = |rng: &mut Rng| scenario.build_model(rng);
    let mut runs = Vec::new();
    let cfg = scenario.config(Algorithm::Sgd, 1, seed);
    runs.push(run_experiment(&cfg, &build, &scenario.train, &scenario.test));
    for m in [4usize, 8, 16] {
        let cfg = scenario.config(Algorithm::DcAsgd, m, seed);
        let mut r = run_experiment(&cfg, &build, &scenario.train, &scenario.test);
        r.label = format!("DC-ASGD-{m}");
        runs.push(r);
    }
    CurveSet { title: format!("Figure 2: DC-ASGD degradation on {}", scenario.name()), runs }
}

/// One panel of Figures 3–4 (CIFAR) or 5–6 (ImageNet): every algorithm at
/// a fixed worker count. `include_sgd` adds the sequential reference
/// (present in Figure 3, absent in Figure 5).
pub fn panel(scenario: &Scenario, workers: usize, include_sgd: bool, seed: u64) -> CurveSet {
    let build = |rng: &mut Rng| scenario.build_model(rng);
    let mut runs = Vec::new();
    if include_sgd {
        let cfg = scenario.config(Algorithm::Sgd, 1, seed);
        runs.push(run_experiment(&cfg, &build, &scenario.train, &scenario.test));
    }
    for algo in Algorithm::DISTRIBUTED {
        let cfg = scenario.config(algo, workers, seed);
        runs.push(run_experiment(&cfg, &build, &scenario.train, &scenario.test));
    }
    CurveSet { title: format!("{} with Async-BN, M = {workers}", scenario.name()), runs }
}

/// Figures 7–8: the predictor traces from one LC-ASGD run with `workers`
/// workers. Returns `(loss-predictor table, step-predictor table)`.
pub fn fig7_8(scenario: &Scenario, workers: usize, seed: u64) -> (String, String) {
    let build = |rng: &mut Rng| scenario.build_model(rng);
    let mut cfg = scenario.config(Algorithm::LcAsgd, workers, seed);
    cfg.record_traces = true;
    let r = run_experiment(&cfg, &build, &scenario.train, &scenario.test);
    let t = r.trace.expect("traces were requested");

    // Figure 7 shows a window of ~80 iterations once the predictor has
    // warmed up.
    let window = 80usize;
    let start = t.actual_loss.len().saturating_sub(window);
    let xs: Vec<f64> = (start..t.actual_loss.len()).map(|i| i as f64).collect();
    let actual: Vec<f64> = t.actual_loss[start..].iter().map(|&v| v as f64).collect();
    let pred: Vec<f64> = t.predicted_loss[start..].iter().map(|&v| v as f64).collect();
    let mut fig7 = series_table(
        &format!("Figure 7: loss predictor, {} workers, {}", workers, scenario.name()),
        "iteration",
        &xs,
        &[("Loss", actual), ("Loss Predictor", pred)],
    );
    fig7.push_str(&format!("one-step MAE over full run: {:.4}\n", t.loss_mae()));

    let start = t.actual_step.len().saturating_sub(window);
    let xs: Vec<f64> = (start..t.actual_step.len()).map(|i| i as f64).collect();
    let actual: Vec<f64> = t.actual_step[start..].iter().map(|&v| v as f64).collect();
    let pred: Vec<f64> = t.predicted_step[start..].iter().map(|&v| v as f64).collect();
    let mut fig8 = series_table(
        &format!("Figure 8: step predictor, {} workers, {}", workers, scenario.name()),
        "iteration",
        &xs,
        &[("Actual k", actual), ("Step Predictor", pred)],
    );
    fig8.push_str(&format!("step MAE over full run: {:.3}\n", t.step_mae()));
    (fig7, fig8)
}
