//! Kernel perf baseline: seed kernels vs the packed/fused kernels.
//!
//! The `kernel-baseline` binary times the hot tensor kernels twice — once
//! with byte-faithful copies of the *seed* implementations (the pre-packing
//! row-kernel matmul and the materializing im2col conv, preserved in
//! [`seed`]) and once through the shipping `lcasgd-tensor` entry points —
//! and emits `BENCH_kernels.json`. The committed copy of that file is the
//! perf baseline: CI re-measures in `--smoke` mode and fails when any
//! kernel's optimized time regresses more than [`GATE_TOLERANCE`] against
//! it. All timings are min-of-samples (the minimum is the only estimator
//! whose noise is one-sided under scheduler interference).

use lcasgd_tensor::ops::conv::{conv2d, conv2d_dw, im2col, Conv2dSpec};
use lcasgd_tensor::{Rng, Tensor};
use std::time::Instant;

/// Relative regression tolerance for the CI gate: fail when the measured
/// optimized time exceeds the committed baseline by more than 20 %.
pub const GATE_TOLERANCE: f64 = 0.20;

/// Schema tag written to (and required of) `BENCH_kernels.json`.
pub const SCHEMA: &str = "kernel_baseline/v1";

/// Default output filename, written into the working directory (repo root
/// when invoked via `ci.sh` or the README quickstart).
pub const BASELINE_FILE: &str = "BENCH_kernels.json";

/// Byte-faithful copies of the seed kernels (commit `dfb689d`), kept here
/// so the harness always measures the same "before" no matter how the
/// library evolves. Do not modernize these.
pub mod seed {
    use super::*;
    use rayon::prelude::*;

    const PAR_ROWS: usize = 8;
    const PAR_FLOPS: usize = 1 << 18;

    fn matmul_rows(out_rows: &mut [f32], a_rows: &[f32], b: &[f32], k: usize, n: usize) {
        for (out_row, a_row) in out_rows.chunks_exact_mut(n).zip(a_rows.chunks_exact(k)) {
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..kk * n + n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    }

    /// The seed `Tensor::matmul`: i-k-j row kernel, rayon bands over rows.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        let ad = a.data();
        let bd = b.data();
        let flops = m * n * k;
        if m >= PAR_ROWS && flops >= PAR_FLOPS {
            let band = (m / rayon::current_num_threads().max(1)).max(1);
            out.data_mut()
                .par_chunks_mut(band * n)
                .zip(ad.par_chunks(band * k))
                .for_each(|(out_band, a_band)| matmul_rows(out_band, a_band, bd, k, n));
        } else {
            matmul_rows(out.data_mut(), ad, bd, k, n);
        }
        out
    }

    /// The seed `Tensor::matmul_tn`: serial k-major accumulation.
    pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
        let (k, m) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let ad = a.data();
        let bd = b.data();
        let mut out = Tensor::zeros(&[m, n]);
        let od = out.data_mut();
        for kk in 0..k {
            let a_row = &ad[kk * m..kk * m + m];
            let b_row = &bd[kk * n..kk * n + n];
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let o = &mut od[i * n..i * n + n];
                for (ov, &bv) in o.iter_mut().zip(b_row) {
                    *ov += aki * bv;
                }
            }
        }
        out
    }

    /// The seed `Tensor::matmul_nt`: serial per-output dot products.
    pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[0];
        let ad = a.data();
        let bd = b.data();
        let mut out = Tensor::zeros(&[m, n]);
        for (i, out_row) in out.data_mut().chunks_mut(n).enumerate() {
            let a_row = &ad[i * k..i * k + k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &bd[j * k..j * k + k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
        out
    }

    /// The seed `conv2d`: materialized im2col, `cols × Wᵀ`, then an NCHW
    /// reorder scatter.
    pub fn conv2d(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Tensor {
        let dims = input.dims();
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let (oh, ow) = spec.out_hw(h, w);
        let cols = im2col(input, spec);
        let wmat = weight.reshaped(&[spec.out_channels, spec.patch_len()]);
        let prod = matmul_nt(&cols, &wmat);
        let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
        let pd = prod.data();
        let hw = oh * ow;
        out.data_mut().chunks_mut(spec.out_channels * hw).enumerate().for_each(|(img, dst)| {
            for p in 0..hw {
                let row =
                    &pd[(img * hw + p) * spec.out_channels..(img * hw + p + 1) * spec.out_channels];
                for (co, &v) in row.iter().enumerate() {
                    dst[co * hw + p] = v;
                }
            }
        });
        out
    }

    /// The seed conv weight gradient: pixel-row reorder of dY, then
    /// `dYᵀ × cols` against the materialized im2col matrix (what
    /// `Conv2dBack` did before the fused `conv2d_dw`).
    pub fn conv2d_dw(dy: &Tensor, input: &Tensor, spec: &Conv2dSpec) -> Tensor {
        let d = dy.dims();
        let (n, cout, hw) = (d[0], d[1], d[2] * d[3]);
        let mut dy_rows = Tensor::zeros(&[n * hw, cout]);
        let src = dy.data();
        let dst = dy_rows.data_mut();
        for img in 0..n {
            let base = img * cout * hw;
            for ch in 0..cout {
                for p in 0..hw {
                    dst[(img * hw + p) * cout + ch] = src[base + ch * hw + p];
                }
            }
        }
        let cols = im2col(input, spec);
        matmul_tn(&dy_rows, &cols).reshape(&[
            spec.out_channels,
            spec.in_channels,
            spec.kernel,
            spec.kernel,
        ])
    }

    /// The seed EMA update: two full passes (`scale_inplace` then
    /// `add_assign_scaled`).
    pub fn ema(dst: &mut Tensor, src: &Tensor, momentum: f32) {
        dst.scale_inplace(1.0 - momentum);
        dst.add_assign_scaled(src, momentum);
    }
}

/// One kernel's before/after measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    pub name: String,
    pub shape: String,
    pub seed_ms: f64,
    pub opt_ms: f64,
}

impl KernelReport {
    pub fn speedup(&self) -> f64 {
        if self.opt_ms > 0.0 {
            self.seed_ms / self.opt_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Minimum wall-clock over `samples` runs (after one warmup), in ms.
fn time_min_ms<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

fn randn(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    Tensor::randn(dims, 1.0, &mut rng)
}

/// Measures every tracked kernel, seed vs optimized. Each pair is also
/// cross-checked for agreement (≤1e-3 absolute on unit-normal data) so the
/// harness cannot quietly benchmark two kernels computing different things.
pub fn measure_all(samples: usize) -> Vec<KernelReport> {
    let mut reports = Vec::new();
    let mut push = |name: &str, shape: String, seed_ms: f64, opt_ms: f64| {
        reports.push(KernelReport { name: name.into(), shape, seed_ms, opt_ms });
    };

    // Square GEMM at the paper's hidden sizes (acceptance target: >= 2x).
    {
        let (m, n, k) = (256, 256, 256);
        let a = randn(&[m, k], 1);
        let b = randn(&[k, n], 2);
        assert!(max_abs_diff(&seed::matmul(&a, &b), &a.matmul(&b)) < 1e-3, "matmul mismatch");
        let seed_ms = time_min_ms(samples, || seed::matmul(&a, &b));
        let opt_ms = time_min_ms(samples, || a.matmul(&b));
        push("matmul", format!("{m}x{n}x{k}"), seed_ms, opt_ms);
    }
    // Transposed variants (linear-layer backward products).
    {
        let (m, n, k) = (256, 256, 256);
        let at = randn(&[k, m], 3);
        let b = randn(&[k, n], 4);
        assert!(max_abs_diff(&seed::matmul_tn(&at, &b), &at.matmul_tn(&b)) < 1e-3, "tn mismatch");
        let seed_ms = time_min_ms(samples, || seed::matmul_tn(&at, &b));
        let opt_ms = time_min_ms(samples, || at.matmul_tn(&b));
        push("matmul_tn", format!("{m}x{n}x{k}"), seed_ms, opt_ms);
    }
    {
        let (m, n, k) = (256, 256, 256);
        let a = randn(&[m, k], 5);
        let bt = randn(&[n, k], 6);
        assert!(max_abs_diff(&seed::matmul_nt(&a, &bt), &a.matmul_nt(&bt)) < 1e-3, "nt mismatch");
        let seed_ms = time_min_ms(samples, || seed::matmul_nt(&a, &bt));
        let opt_ms = time_min_ms(samples, || a.matmul_nt(&bt));
        push("matmul_nt", format!("{m}x{n}x{k}"), seed_ms, opt_ms);
    }
    // ResNet-18 CIFAR body conv: 3x3, 64->64 channels, 32x32 maps
    // (acceptance target: >= 1.5x).
    {
        let spec =
            Conv2dSpec { in_channels: 64, out_channels: 64, kernel: 3, stride: 1, padding: 1 };
        let x = randn(&[4, 64, 32, 32], 7);
        let w = randn(&[64, 64, 3, 3], 8);
        assert!(
            max_abs_diff(&seed::conv2d(&x, &w, &spec), &conv2d(&x, &w, &spec)) < 1e-2,
            "conv3x3 mismatch"
        );
        let seed_ms = time_min_ms(samples, || seed::conv2d(&x, &w, &spec));
        let opt_ms = time_min_ms(samples, || conv2d(&x, &w, &spec));
        push("conv3x3", "n4_c64-64_32x32_s1p1".into(), seed_ms, opt_ms);
    }
    // ResNet downsample-style 1x1 conv.
    {
        let spec =
            Conv2dSpec { in_channels: 64, out_channels: 128, kernel: 1, stride: 1, padding: 0 };
        let x = randn(&[4, 64, 16, 16], 9);
        let w = randn(&[128, 64, 1, 1], 10);
        assert!(
            max_abs_diff(&seed::conv2d(&x, &w, &spec), &conv2d(&x, &w, &spec)) < 1e-2,
            "conv1x1 mismatch"
        );
        let seed_ms = time_min_ms(samples, || seed::conv2d(&x, &w, &spec));
        let opt_ms = time_min_ms(samples, || conv2d(&x, &w, &spec));
        push("conv1x1", "n4_c64-128_16x16_s1p0".into(), seed_ms, opt_ms);
    }
    // Conv weight gradient at the 3x3 CIFAR shape.
    {
        let spec =
            Conv2dSpec { in_channels: 64, out_channels: 64, kernel: 3, stride: 1, padding: 1 };
        let x = randn(&[4, 64, 32, 32], 11);
        let dy = randn(&[4, 64, 32, 32], 12);
        assert!(
            max_abs_diff(&seed::conv2d_dw(&dy, &x, &spec), &conv2d_dw(&dy, &x, &spec)) < 2e-1,
            "conv_dw mismatch"
        );
        let seed_ms = time_min_ms(samples, || seed::conv2d_dw(&dy, &x, &spec));
        let opt_ms = time_min_ms(samples, || conv2d_dw(&dy, &x, &spec));
        push("conv3x3_dw", "n4_c64-64_32x32_s1p1".into(), seed_ms, opt_ms);
    }
    // The LSTM predictor's gate product must stay on the cheap serial
    // path: this row documents that small matmuls did not regress.
    {
        let (m, n, k) = (1, 512, 128);
        let a = randn(&[m, k], 13);
        let b = randn(&[k, n], 14);
        let seed_ms = time_min_ms(samples * 50, || seed::matmul(&a, &b));
        let opt_ms = time_min_ms(samples * 50, || a.matmul(&b));
        push("predictor_matmul", format!("{m}x{n}x{k}"), seed_ms, opt_ms);
    }
    // Fused EMA vs the two-pass seed update (BN running stats).
    {
        let len = 1 << 18;
        let src = randn(&[len], 15);
        let base = randn(&[len], 16);
        let seed_ms = time_min_ms(samples, || {
            let mut d = base.clone();
            seed::ema(&mut d, &src, 0.1);
            d
        });
        let opt_ms = time_min_ms(samples, || {
            let mut d = base.clone();
            d.scale_add_inplace(0.9, &src, 0.1);
            d
        });
        push("fused_ema", format!("{len}"), seed_ms, opt_ms);
    }
    reports
}

/// Renders the report list as the `BENCH_kernels.json` document.
pub fn to_json(reports: &[KernelReport], samples: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"shape\": \"{}\", \"seed_ms\": {:.4}, \"opt_ms\": {:.4}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.shape,
            r.seed_ms,
            r.opt_ms,
            r.speedup(),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// A `(name, shape, opt_ms)` row parsed back from a committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    pub name: String,
    pub shape: String,
    pub opt_ms: f64,
}

fn extract_string(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_number(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses (and schema-validates) a `BENCH_kernels.json` document. This is
/// a purpose-built scanner for the exact shape [`to_json`] emits, not a
/// general JSON parser — the workspace has no serde and does not want one.
pub fn parse_baseline(json: &str) -> Result<Vec<BaselineEntry>, String> {
    match extract_string(json, "schema") {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unsupported baseline schema {s:?} (expected {SCHEMA:?})")),
        None => return Err("baseline file has no \"schema\" field".into()),
    }
    let kernels_at = json
        .find("\"kernels\"")
        .ok_or_else(|| "baseline file has no \"kernels\" array".to_string())?;
    let mut entries = Vec::new();
    let mut rest = &json[kernels_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .map(|c| open + c)
            .ok_or_else(|| "unterminated kernel object".to_string())?;
        let obj = &rest[open..=close];
        let name = extract_string(obj, "name")
            .ok_or_else(|| format!("kernel object missing name: {obj}"))?;
        let shape =
            extract_string(obj, "shape").ok_or_else(|| format!("kernel {name} missing shape"))?;
        let opt_ms =
            extract_number(obj, "opt_ms").ok_or_else(|| format!("kernel {name} missing opt_ms"))?;
        if !(opt_ms.is_finite() && opt_ms >= 0.0) {
            return Err(format!("kernel {name} has invalid opt_ms {opt_ms}"));
        }
        entries.push(BaselineEntry { name, shape, opt_ms });
        rest = &rest[close + 1..];
    }
    if entries.is_empty() {
        return Err("baseline file has an empty kernels array".into());
    }
    Ok(entries)
}

/// Compares a fresh measurement against the committed baseline: an error
/// names every kernel whose optimized time regressed beyond `tolerance`
/// (relative). Kernels present on only one side are ignored (new kernels
/// are allowed; removed ones no longer gate).
pub fn regression_gate(
    current: &[KernelReport],
    baseline: &[BaselineEntry],
    tolerance: f64,
) -> Result<(), String> {
    let mut failures = Vec::new();
    for b in baseline {
        if let Some(c) = current.iter().find(|c| c.name == b.name && c.shape == b.shape) {
            if c.opt_ms > b.opt_ms * (1.0 + tolerance) {
                failures.push(format!(
                    "{} [{}]: {:.4} ms vs baseline {:.4} ms (+{:.0}%)",
                    b.name,
                    b.shape,
                    c.opt_ms,
                    b.opt_ms,
                    (c.opt_ms / b.opt_ms - 1.0) * 100.0
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "kernel perf regression (> {:.0}% over baseline):\n  {}",
            tolerance * 100.0,
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reports() -> Vec<KernelReport> {
        vec![
            KernelReport {
                name: "matmul".into(),
                shape: "8x8x8".into(),
                seed_ms: 2.0,
                opt_ms: 0.5,
            },
            KernelReport {
                name: "conv3x3".into(),
                shape: "tiny".into(),
                seed_ms: 3.0,
                opt_ms: 2.0,
            },
        ]
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let reports = sample_reports();
        let json = to_json(&reports, 5);
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "matmul");
        assert_eq!(parsed[0].shape, "8x8x8");
        assert!((parsed[0].opt_ms - 0.5).abs() < 1e-9);
        assert!((parsed[1].opt_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parser_rejects_wrong_schema() {
        let bad = to_json(&sample_reports(), 3).replace(SCHEMA, "kernel_baseline/v0");
        assert!(parse_baseline(&bad).unwrap_err().contains("unsupported baseline schema"));
        assert!(parse_baseline("{}").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = parse_baseline(&to_json(&sample_reports(), 3)).unwrap();
        let mut current = sample_reports();
        current[0].opt_ms = 0.55; // +10% — within the 20% gate
        assert!(regression_gate(&current, &baseline, GATE_TOLERANCE).is_ok());
        current[0].opt_ms = 0.65; // +30% — must fail and name the kernel
        let err = regression_gate(&current, &baseline, GATE_TOLERANCE).unwrap_err();
        assert!(err.contains("matmul"), "{err}");
    }

    #[test]
    fn gate_ignores_unmatched_kernels() {
        let baseline = parse_baseline(&to_json(&sample_reports(), 3)).unwrap();
        let current = vec![KernelReport {
            name: "brand_new".into(),
            shape: "1x1".into(),
            seed_ms: 1.0,
            opt_ms: 100.0,
        }];
        assert!(regression_gate(&current, &baseline, GATE_TOLERANCE).is_ok());
    }

    #[test]
    fn seed_kernels_agree_with_optimized_on_small_shapes() {
        let a = randn(&[9, 17], 100);
        let b = randn(&[17, 13], 101);
        assert!(max_abs_diff(&seed::matmul(&a, &b), &a.matmul(&b)) < 1e-4);
        let spec = Conv2dSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 2, padding: 1 };
        let x = randn(&[2, 2, 7, 7], 102);
        let w = randn(&[3, 2, 3, 3], 103);
        assert!(max_abs_diff(&seed::conv2d(&x, &w, &spec), &conv2d(&x, &w, &spec)) < 1e-4);
        let dy = randn(&[2, 3, 4, 4], 104);
        assert!(max_abs_diff(&seed::conv2d_dw(&dy, &x, &spec), &conv2d_dw(&dy, &x, &spec)) < 1e-4);
    }
}
