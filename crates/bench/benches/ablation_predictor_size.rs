//! Ablation: predictor complexity vs cost (paper §5.4 — "there is a
//! trade-off between the complexity and the accuracy when designing the
//! prediction model"). Sweeps the LSTM hidden width of both predictors.

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_core::predictor::{LossPredictor, StepPredictor};
use lcasgd_tensor::Rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Accuracy side of the trade-off, printed once: one-step tracking
    // error of a decaying loss after 300 online steps, per hidden width.
    for hidden in [16usize, 32, 64, 128] {
        let mut rng = Rng::seed_from_u64(11);
        let mut p = LossPredictor::with_hidden(hidden, &mut rng);
        let mut err = 0.0f32;
        let mut count = 0;
        for i in 0..300 {
            let actual = 2.0 * (-(i as f32) / 150.0).exp() + 0.5;
            if i >= 200 {
                if let Some(f) = p.pending_forecast() {
                    err += (f - actual).abs();
                    count += 1;
                }
            }
            p.observe_and_predict(actual, 4);
        }
        println!(
            "ablation_predictor_size: hidden {hidden:>3} late one-step MAE {:.4} ({:.3} ms/call)",
            err / count as f32,
            p.elapsed_ms / 300.0
        );
    }

    let mut g = c.benchmark_group("predictor_size");
    for hidden in [16usize, 64, 128] {
        g.bench_function(format!("loss_pred_h{hidden}_k8"), |b| {
            let mut rng = Rng::seed_from_u64(12);
            let mut p = LossPredictor::with_hidden(hidden, &mut rng);
            let mut loss = 2.0f32;
            b.iter(|| {
                loss *= 0.999;
                black_box(p.observe_and_predict(loss, 8).l_delay)
            });
        });
        g.bench_function(format!("step_pred_h{hidden}"), |b| {
            let mut rng = Rng::seed_from_u64(13);
            let mut p = StepPredictor::with_hidden(8, hidden, &mut rng);
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                black_box(p.observe_and_predict(i % 8, 7.0, 0.002, 0.03))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
