//! Table 3 bench: LC-ASGD predictor overhead relative to an ImageNet-like
//! training iteration — the measured quantities behind `repro-table3`.

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_bench::quick;
use lcasgd_core::algorithms::Algorithm;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for m in [4usize, 8, 16] {
        let r = quick::imagenet_run(Algorithm::LcAsgd, m);
        let o = r.overhead.expect("LC reports overhead");
        println!(
            "table3: M={m} measured loss-pred {:.3} ms, step-pred {:.3} ms per iteration",
            o.avg_loss_pred_ms(),
            o.avg_step_pred_ms()
        );
    }
    let mut g = c.benchmark_group("table3_lc_pipeline");
    g.sample_size(10);
    g.bench_function("lc_asgd_m8_imagenet", |b| {
        b.iter(|| black_box(quick::imagenet_run(Algorithm::LcAsgd, 8).iterations));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
