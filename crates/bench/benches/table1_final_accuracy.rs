//! Table 1 bench: cost of one table cell (a full short training run) per
//! algorithm and BN mode. `repro-table1` prints the accuracy grid.

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_bench::quick;
use lcasgd_core::algorithms::Algorithm;
use lcasgd_core::bnmode::BnMode;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_cells");
    g.sample_size(10);
    for bn in [BnMode::Regular, BnMode::Async] {
        for algo in [Algorithm::Ssgd, Algorithm::LcAsgd] {
            g.bench_function(format!("{}_{}", algo.name(), bn.name()), |b| {
                b.iter(|| black_box(quick::cifar_run_bn(algo, 8, bn).final_test_error()));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
