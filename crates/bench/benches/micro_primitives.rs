//! Microbenchmarks of the computational primitives every experiment rests
//! on: matmul, convolution (forward + backward), BatchNorm, LSTM steps
//! and a full tiny-ResNet training iteration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lcasgd_autograd::Graph;
use lcasgd_nn::lstm::Lstm;
use lcasgd_nn::resnet::ResNetConfig;
use lcasgd_tensor::ops::conv::{conv2d, Conv2dSpec};
use lcasgd_tensor::{Rng, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    let mut rng = Rng::seed_from_u64(1);
    for &n in &[16usize, 64, 128] {
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        g.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv2d");
    let mut rng = Rng::seed_from_u64(2);
    let spec = Conv2dSpec { in_channels: 8, out_channels: 16, kernel: 3, stride: 1, padding: 1 };
    let x = Tensor::randn(&[16, 8, 10, 10], 1.0, &mut rng);
    let w = Tensor::randn(&[16, 8, 3, 3], 0.2, &mut rng);
    g.bench_function("forward_16x8x10x10", |bench| {
        bench.iter(|| black_box(conv2d(&x, &w, &spec)));
    });
    g.bench_function("forward_backward_autograd", |bench| {
        bench.iter(|| {
            let mut graph = Graph::new();
            let xv = graph.leaf(x.clone());
            let wv = graph.leaf(w.clone());
            let y = graph.conv2d(xv, wv, spec);
            let s = graph.mean(y);
            graph.backward(s);
            black_box(graph.grad(wv).map(|t| t.norm()))
        });
    });
    g.finish();
}

fn bench_lstm(c: &mut Criterion) {
    let mut g = c.benchmark_group("lstm");
    let mut rng = Rng::seed_from_u64(3);
    for &hidden in &[64usize, 128] {
        let lstm = Lstm::new(3, hidden, 2, 1, &mut rng);
        let state = lstm.zero_state();
        let x = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[1, 3]);
        g.bench_function(format!("predict_h{hidden}"), |bench| {
            bench.iter(|| black_box(lstm.predict(&x, &state)));
        });
        let target = Tensor::from_vec(vec![0.5], &[1, 1]);
        g.bench_function(format!("train_step_h{hidden}"), |bench| {
            bench.iter_batched(
                || Lstm::new(3, hidden, 2, 1, &mut Rng::seed_from_u64(4)),
                |mut l| black_box(l.train_step(&x, &target, &state, 0.02).0),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_resnet_iteration(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(5);
    let mut net = ResNetConfig::tiny(3, 10).build(&mut rng);
    let x = Tensor::randn(&[16, 3, 8, 8], 1.0, &mut rng);
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();
    c.bench_function("tiny_resnet_train_iteration", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let (logits, ctx) = net.forward(&mut g, x.clone(), true);
            let loss = g.softmax_cross_entropy(logits, &labels);
            g.backward(loss);
            let grads = net.flat_grads(&mut g, &ctx);
            net.axpy_params(&grads, -1e-4);
            black_box(g.value(loss).item())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv, bench_lstm, bench_resnet_iteration
}
criterion_main!(benches);
