//! Figure 6 bench: ImageNet-like wall-clock scaling of LC-ASGD with the
//! worker count (`repro-fig6` prints the full curves).

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_bench::quick;
use lcasgd_core::algorithms::Algorithm;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for m in [4usize, 8, 16] {
        let r = quick::imagenet_run(Algorithm::LcAsgd, m);
        println!(
            "fig6: LC-ASGD M={m} virtual total {:.1}s for {} updates",
            r.total_time, r.iterations
        );
    }
    let mut g = c.benchmark_group("fig6_imagenet_walltime");
    g.sample_size(10);
    for m in [4usize, 16] {
        g.bench_function(format!("lc_asgd_m{m}"), |b| {
            b.iter(|| black_box(quick::imagenet_run(Algorithm::LcAsgd, m).total_time));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
