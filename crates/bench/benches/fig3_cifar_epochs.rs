//! Figure 3 bench: per-algorithm cost of the CIFAR-like training pipeline
//! (epoch-denominated learning curves; `repro-fig3` prints the series).

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_bench::quick;
use lcasgd_core::algorithms::Algorithm;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_cifar");
    g.sample_size(10);
    for algo in Algorithm::ALL {
        let m = if algo == Algorithm::Sgd { 1 } else { 8 };
        g.bench_function(algo.name(), |b| {
            b.iter(|| black_box(quick::cifar_run(algo, m).final_test_error()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
