//! Ablation: Async-BN vs regular BN on the server (paper §5.3). Prints
//! each mode's short-run accuracy and times the pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_bench::quick;
use lcasgd_core::algorithms::Algorithm;
use lcasgd_core::bnmode::BnMode;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for bn in [BnMode::Regular, BnMode::Async] {
        for m in [4usize, 16] {
            let r = quick::cifar_run_bn(Algorithm::LcAsgd, m, bn);
            println!(
                "ablation_async_bn: {:8} M={m:<2} short-run test error {:.2}%",
                bn.name(),
                r.final_test_error() * 100.0
            );
        }
    }
    let mut g = c.benchmark_group("ablation_async_bn");
    g.sample_size(10);
    for bn in [BnMode::Regular, BnMode::Async] {
        g.bench_function(bn.name(), |b| {
            b.iter(|| black_box(quick::cifar_run_bn(Algorithm::LcAsgd, 8, bn).final_test_error()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
