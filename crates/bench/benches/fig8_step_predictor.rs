//! Figure 8 bench: the step predictor's per-arrival cost (online train +
//! one-step forecast) at the paper's hidden size, as the worker count
//! grows. `repro-fig8` prints the forecast-vs-actual series.

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_core::predictor::StepPredictor;
use lcasgd_tensor::Rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_step_predictor");
    for m in [4usize, 8, 16] {
        g.bench_function(format!("observe_and_predict_m{m}"), |b| {
            let mut rng = Rng::seed_from_u64(8);
            let mut p = StepPredictor::new(m, &mut rng);
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                black_box(p.observe_and_predict(i % m, (m - 1) as f32, 0.002, 0.03))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
