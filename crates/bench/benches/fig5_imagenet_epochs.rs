//! Figure 5 bench: per-algorithm cost of the ImageNet-like pipeline
//! (`repro-fig5` prints the series).

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_bench::quick;
use lcasgd_core::algorithms::Algorithm;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_imagenet");
    g.sample_size(10);
    for algo in Algorithm::DISTRIBUTED {
        g.bench_function(algo.name(), |b| {
            b.iter(|| black_box(quick::imagenet_run(algo, 8).final_test_error()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
