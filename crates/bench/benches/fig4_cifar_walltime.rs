//! Figure 4 bench: simulated wall-clock throughput — virtual seconds per
//! applied update for each algorithm (the quantity Figure 4's x-axis is
//! built from; `repro-fig4` prints the full curves).

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_bench::quick;
use lcasgd_core::algorithms::Algorithm;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Report the virtual time per update once (stdout), then time the
    // simulation pipeline itself.
    for algo in Algorithm::DISTRIBUTED {
        let r = quick::cifar_run(algo, 8);
        println!(
            "fig4: {} M=8 virtual {:.1} ms/update over {} updates",
            algo,
            r.avg_iteration_ms(),
            r.iterations
        );
    }
    let mut g = c.benchmark_group("fig4_walltime_pipeline");
    g.sample_size(10);
    for m in [4usize, 16] {
        g.bench_function(format!("asgd_m{m}"), |b| {
            b.iter(|| black_box(quick::cifar_run(Algorithm::Asgd, m).total_time));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
