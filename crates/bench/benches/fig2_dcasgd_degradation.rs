//! Figure 2 bench: cost of a short DC-ASGD training run as the worker
//! count grows (the experiment whose full-length series `repro-fig2`
//! regenerates).

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_bench::quick;
use lcasgd_core::algorithms::Algorithm;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_dcasgd");
    g.sample_size(10);
    for m in [4usize, 8, 16] {
        g.bench_function(format!("dc_asgd_m{m}"), |b| {
            b.iter(|| black_box(quick::cifar_run(Algorithm::DcAsgd, m).final_test_error()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
