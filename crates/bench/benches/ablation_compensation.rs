//! Ablation: the three readings of Formula 5 (DESIGN.md §1). Prints each
//! mode's short-run accuracy and times the pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_bench::quick;
use lcasgd_core::compensation::CompensationMode;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for comp in [CompensationMode::Relative, CompensationMode::Literal, CompensationMode::Off] {
        let r = quick::cifar_run_comp(16, comp);
        println!(
            "ablation_compensation: {:8} M=16 short-run test error {:.2}%",
            comp.name(),
            r.final_test_error() * 100.0
        );
    }
    let mut g = c.benchmark_group("ablation_compensation");
    g.sample_size(10);
    for comp in [CompensationMode::Relative, CompensationMode::Off] {
        g.bench_function(comp.name(), |b| {
            b.iter(|| black_box(quick::cifar_run_comp(16, comp).final_test_error()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
