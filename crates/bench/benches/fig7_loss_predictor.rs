//! Figure 7 bench: the loss predictor's per-arrival cost (online train +
//! k-step rollout) at the paper's hidden size and rollout horizons.
//! `repro-fig7` prints the forecast-vs-actual series.

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_core::predictor::LossPredictor;
use lcasgd_tensor::Rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_loss_predictor");
    for k in [4usize, 8, 16] {
        g.bench_function(format!("observe_and_predict_k{k}"), |b| {
            let mut rng = Rng::seed_from_u64(7);
            let mut p = LossPredictor::new(&mut rng);
            let mut loss = 2.3f32;
            b.iter(|| {
                loss *= 0.999;
                black_box(p.observe_and_predict(loss, k).l_delay)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
