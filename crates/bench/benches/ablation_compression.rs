//! Ablation: gradient compression on the worker→server push (related-work
//! extension: QSGD/TernGrad/ECQ-SGD-style schemes with error feedback).
//! Prints accuracy + compression ratio per scheme, and times the
//! compression kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use lcasgd_bench::quick;
use lcasgd_core::comm::Compression;
use lcasgd_tensor::{Rng, Tensor};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for scheme in [
        Compression::None,
        Compression::TopK { k_frac: 0.1 },
        Compression::Uniform { bits: 8 },
        Compression::Uniform { bits: 4 },
    ] {
        let r = quick::cifar_run_compressed(8, scheme);
        println!(
            "ablation_compression: {scheme:?} short-run test error {:.2}%  (ratio ~{:.1}x)",
            r.final_test_error() * 100.0,
            scheme.ratio(20_000)
        );
    }

    let mut rng = Rng::seed_from_u64(21);
    let grads = Tensor::randn(&[20_000], 0.01, &mut rng).into_vec();
    let mut g = c.benchmark_group("compression_kernels");
    for (name, scheme) in [
        ("topk_10pct", Compression::TopK { k_frac: 0.1 }),
        ("uniform_8bit", Compression::Uniform { bits: 8 }),
    ] {
        g.bench_function(name, |b| {
            let mut residual = vec![0.0f32; grads.len()];
            b.iter(|| black_box(scheme.compress(&grads, Some(&mut residual)).wire_bytes()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
