//! # lcasgd-nn
//!
//! Stateful neural-network modules on top of `lcasgd-autograd`:
//!
//! * [`layer`] — `Linear`, `Conv2d`, `BatchNorm`, pooling, residual blocks,
//!   all composed through the [`layer::Layer`] enum;
//! * [`network`] — [`network::Network`]: an ordered layer stack with
//!   parameter visitors, flat (de)serialization of weights, and gradient
//!   extraction — the unit the parameter server ships to workers;
//! * [`lstm`] — the multi-layer LSTM used by LC-ASGD's loss & step
//!   predictors, with one-step online training;
//! * [`resnet`] / [`mlp`] — model builders (paper-faithful `resnet18_cifar`
//!   plus scaled presets);
//! * [`optimizer`] — SGD with momentum and the paper's step LR schedule;
//! * [`metrics`] — error-rate helpers.

pub mod checkpoint;
pub mod layer;
pub mod lstm;
pub mod metrics;
pub mod mlp;
pub mod network;
pub mod optimizer;
pub mod resnet;

pub use layer::{BatchNorm, Conv2d, ForwardCtx, Layer, Linear};
pub use lstm::Lstm;
pub use network::Network;
pub use optimizer::{LrSchedule, Sgd};
