//! Multi-layer LSTM with an affine head — the architecture of both LC-ASGD
//! predictors ("two LSTM layers in the front of the network and a linear
//! layer at the end", paper §4.3–4.4).
//!
//! The predictors are trained *online*, one `(input, label)` pair at a
//! time (truncated BPTT of length 1): the recurrent state is carried
//! across steps as plain tensors (detached), and each [`Lstm::train_step`]
//! builds a one-step graph, backpropagates an MSE loss, and applies a
//! clipped SGD update.

use crate::layer::Linear;
use lcasgd_autograd::{Graph, Var};
use lcasgd_tensor::{init, Rng, Tensor};

/// One LSTM layer's weights, packed as `W: [4h, in+h]`, `b: [4h]` with the
/// gate order `i, f, g, o`.
pub struct LstmCell {
    pub weight: Tensor,
    pub bias: Tensor,
    hidden: usize,
}

impl LstmCell {
    fn new(input: usize, hidden: usize, rng: &mut Rng) -> Self {
        let mut bias = Tensor::zeros(&[4 * hidden]);
        // Forget-gate bias of 1: the standard trick so a fresh LSTM starts
        // by remembering rather than forgetting.
        for v in &mut bias.data_mut()[hidden..2 * hidden] {
            *v = 1.0;
        }
        LstmCell {
            weight: init::xavier_uniform(
                &[4 * hidden, input + hidden],
                input + hidden,
                4 * hidden,
                rng,
            ),
            bias,
            hidden,
        }
    }

    /// One recurrence step. `x: [1, in]`, `h`/`c`: `[1, hidden]` graph vars.
    /// Returns `(h', c')` vars.
    fn step(&self, g: &mut Graph, x: Var, h: Var, c: Var, params: &mut Vec<Var>) -> (Var, Var) {
        let w = g.leaf(self.weight.clone());
        let b = g.leaf(self.bias.clone());
        params.push(w);
        params.push(b);
        let xh = g.concat_cols(x, h);
        let gates = g.linear(xh, w, b); // [1, 4h]
        let hsz = self.hidden;
        let i_pre = g.slice_cols(gates, 0, hsz);
        let f_pre = g.slice_cols(gates, hsz, hsz);
        let g_pre = g.slice_cols(gates, 2 * hsz, hsz);
        let o_pre = g.slice_cols(gates, 3 * hsz, hsz);
        let i = g.sigmoid(i_pre);
        let f = g.sigmoid(f_pre);
        let cand = g.tanh(g_pre);
        let o = g.sigmoid(o_pre);
        let fc = g.mul(f, c);
        let ig = g.mul(i, cand);
        let c_new = g.add(fc, ig);
        let c_act = g.tanh(c_new);
        let h_new = g.mul(o, c_act);
        (h_new, c_new)
    }
}

/// Recurrent state: one `(h, c)` pair per layer, batch 1.
#[derive(Clone, Debug)]
pub struct LstmState {
    pub layers: Vec<(Tensor, Tensor)>,
}

impl LstmState {
    /// All-zero initial state.
    pub fn zeros(hidden: usize, num_layers: usize) -> Self {
        LstmState {
            layers: (0..num_layers)
                .map(|_| (Tensor::zeros(&[1, hidden]), Tensor::zeros(&[1, hidden])))
                .collect(),
        }
    }
}

/// Stacked LSTM + linear head, batch size 1.
pub struct Lstm {
    cells: Vec<LstmCell>,
    head: Linear,
    input_dim: usize,
    hidden: usize,
    /// Gradient-norm clip applied in [`train_step`](Self::train_step);
    /// online training on raw loss series occasionally sees spikes.
    pub grad_clip: f32,
}

impl Lstm {
    /// `input_dim -> [hidden × num_layers] -> out_dim`.
    pub fn new(
        input_dim: usize,
        hidden: usize,
        num_layers: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(num_layers >= 1);
        let mut cells = Vec::with_capacity(num_layers);
        cells.push(LstmCell::new(input_dim, hidden, rng));
        for _ in 1..num_layers {
            cells.push(LstmCell::new(hidden, hidden, rng));
        }
        Lstm {
            cells,
            head: Linear::new_xavier(hidden, out_dim, rng),
            input_dim,
            hidden,
            grad_clip: 5.0,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden width (the paper uses 64 for the loss predictor, 128 for the
    /// step predictor).
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Fresh zero state.
    pub fn zero_state(&self) -> LstmState {
        LstmState::zeros(self.hidden, self.cells.len())
    }

    /// Builds the one-step graph. Returns the output var, the new state
    /// vars per layer, and pushes parameter vars in a fixed order.
    fn build_step(
        &self,
        g: &mut Graph,
        x: Var,
        state: &LstmState,
        params: &mut Vec<Var>,
    ) -> (Var, Vec<(Var, Var)>) {
        let mut cur = x;
        let mut new_state = Vec::with_capacity(self.cells.len());
        for (cell, (h, c)) in self.cells.iter().zip(&state.layers) {
            let hv = g.leaf(h.clone());
            let cv = g.leaf(c.clone());
            let (h2, c2) = cell.step(g, cur, hv, cv, params);
            new_state.push((h2, c2));
            cur = h2;
        }
        let out = self.head.forward_raw(g, cur, params);
        (out, new_state)
    }

    /// Forward-only step: consumes `x: [1, input_dim]`, returns the output
    /// `[1, out_dim]` and the advanced state.
    pub fn predict(&self, x: &Tensor, state: &LstmState) -> (Tensor, LstmState) {
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let mut params = Vec::new();
        let (out, new_state) = self.build_step(&mut g, xv, state, &mut params);
        let state = LstmState {
            layers: new_state
                .iter()
                .map(|&(h, c)| (g.value(h).clone(), g.value(c).clone()))
                .collect(),
        };
        (g.value(out).clone(), state)
    }

    /// One online training step: forward from `state` on `x`, MSE against
    /// `target: [1, out_dim]`, backward, clipped SGD update with rate `lr`.
    /// Returns the loss and the advanced (detached) state.
    pub fn train_step(
        &mut self,
        x: &Tensor,
        target: &Tensor,
        state: &LstmState,
        lr: f32,
    ) -> (f32, LstmState) {
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let mut params = Vec::new();
        let (out, new_state) = self.build_step(&mut g, xv, state, &mut params);
        let loss = g.mse(out, target.clone());
        g.backward(loss);
        let loss_val = g.value(loss).item();

        // Collect gradients in registration order and apply a global-norm
        // clipped SGD step.
        let grads: Vec<Option<Tensor>> = params.iter().map(|&p| g.take_grad(p)).collect();
        let total_sq: f64 = grads
            .iter()
            .flatten()
            .map(|t| t.data().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>())
            .sum();
        let norm = total_sq.sqrt() as f32;
        let scale = if norm > self.grad_clip { self.grad_clip / norm } else { 1.0 };

        let mut it = grads.into_iter();
        self.visit_params_mut(&mut |t| {
            if let Some(Some(grad)) = it.next() {
                t.add_assign_scaled(&grad, -lr * scale);
            }
        });

        let state = LstmState {
            layers: new_state
                .iter()
                .map(|&(h, c)| (g.value(h).clone(), g.value(c).clone()))
                .collect(),
        };
        (loss_val, state)
    }

    /// Rolls the model forward `k` steps feeding each prediction back as
    /// the next input (requires `out_dim == input_dim`, true for the loss
    /// predictor). Returns the `k` predicted outputs. The entry state is
    /// not mutated.
    pub fn rollout(&self, x0: &Tensor, state: &LstmState, k: usize) -> Vec<Tensor> {
        let mut out = Vec::with_capacity(k);
        let mut x = x0.clone();
        let mut st = state.clone();
        for _ in 0..k {
            let (y, next) = self.predict(&x, &st);
            st = next;
            x = y.clone();
            out.push(y);
        }
        out
    }

    /// Visits parameters in the same order `build_step` registers them:
    /// per-cell (weight, bias), then head (weight, bias).
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(&mut Tensor)) {
        for cell in &mut self.cells {
            f(&mut cell.weight);
            f(&mut cell.bias);
        }
        f(&mut self.head.weight);
        f(&mut self.head.bias);
    }

    /// Read-only parameter visit in the same fixed order as
    /// [`Lstm::visit_params_mut`].
    pub fn visit_params(&self, f: &mut impl FnMut(&Tensor)) {
        for cell in &self.cells {
            f(&cell.weight);
            f(&cell.bias);
        }
        f(&self.head.weight);
        f(&self.head.bias);
    }

    /// All parameters flattened in visit order — the predictor half of a
    /// full training checkpoint.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit_params(&mut |t| out.extend_from_slice(t.data()));
        out
    }

    /// Installs a flat parameter vector captured by
    /// [`Lstm::flat_params`] from an identically shaped model. Panics on a
    /// length mismatch (an architecture incompatibility, not a recoverable
    /// condition).
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_params(), "flat parameter length mismatch");
        let mut off = 0;
        self.visit_params_mut(&mut |t| {
            let n = t.numel();
            t.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
    }

    /// Total parameter count (for overhead accounting).
    pub fn num_params(&self) -> usize {
        let mut n = 0;
        for cell in &self.cells {
            n += cell.weight.numel() + cell.bias.numel();
        }
        n + self.head.weight.numel() + self.head.bias.numel()
    }
}

impl Linear {
    /// Forward used outside the `Layer` enum (no `ForwardCtx`), registering
    /// params into a caller-provided list.
    pub fn forward_raw(&self, g: &mut Graph, x: Var, params: &mut Vec<Var>) -> Var {
        let w = g.leaf(self.weight.clone());
        let b = g.leaf(self.bias.clone());
        params.push(w);
        params.push(b);
        g.linear(x, w, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_state_advance() {
        let mut rng = Rng::seed_from_u64(111);
        let lstm = Lstm::new(3, 8, 2, 1, &mut rng);
        let st = lstm.zero_state();
        let x = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[1, 3]);
        let (y, st2) = lstm.predict(&x, &st);
        assert_eq!(y.dims(), &[1, 1]);
        assert_eq!(st2.layers.len(), 2);
        assert_eq!(st2.layers[0].0.dims(), &[1, 8]);
        // State must actually change.
        assert_ne!(st2.layers[0].0.data(), st.layers[0].0.data());
    }

    #[test]
    fn prediction_is_deterministic() {
        let mut rng = Rng::seed_from_u64(112);
        let lstm = Lstm::new(1, 4, 2, 1, &mut rng);
        let st = lstm.zero_state();
        let x = Tensor::from_vec(vec![0.5], &[1, 1]);
        let (a, _) = lstm.predict(&x, &st);
        let (b, _) = lstm.predict(&x, &st);
        assert_eq!(a, b);
    }

    #[test]
    fn online_training_learns_constant_series() {
        // Feeding a constant series, the predictor should converge to
        // predicting that constant.
        let mut rng = Rng::seed_from_u64(113);
        let mut lstm = Lstm::new(1, 8, 2, 1, &mut rng);
        let mut st = lstm.zero_state();
        let x = Tensor::from_vec(vec![0.7], &[1, 1]);
        let target = Tensor::from_vec(vec![0.7], &[1, 1]);
        let mut last = f32::INFINITY;
        for i in 0..400 {
            let (loss, next) = lstm.train_step(&x, &target, &st, 0.05);
            st = next;
            if i >= 399 {
                last = loss;
            }
        }
        assert!(last < 1e-3, "final loss {last}");
    }

    #[test]
    fn online_training_tracks_slowly_decaying_series() {
        // A geometric decay mimics a loss curve; after online training the
        // one-step-ahead prediction error should be small.
        let mut rng = Rng::seed_from_u64(114);
        let mut lstm = Lstm::new(1, 16, 2, 1, &mut rng);
        let mut st = lstm.zero_state();
        let series: Vec<f32> = (0..300).map(|i| 2.0 * (0.99f32).powi(i) + 0.5).collect();
        let mut errs = Vec::new();
        for w in series.windows(2) {
            let x = Tensor::from_vec(vec![w[0]], &[1, 1]);
            let t = Tensor::from_vec(vec![w[1]], &[1, 1]);
            let (loss, next) = lstm.train_step(&x, &t, &st, 0.02);
            st = next;
            errs.push(loss);
        }
        let late: f32 = errs[250..].iter().sum::<f32>() / 49.0;
        assert!(late < 5e-3, "late avg one-step MSE {late}");
    }

    #[test]
    fn rollout_does_not_mutate_entry_state() {
        let mut rng = Rng::seed_from_u64(115);
        let lstm = Lstm::new(1, 4, 1, 1, &mut rng);
        let st = lstm.zero_state();
        let x = Tensor::from_vec(vec![1.0], &[1, 1]);
        let k = 5;
        let preds = lstm.rollout(&x, &st, k);
        assert_eq!(preds.len(), k);
        // Same call again gives identical results (state untouched).
        let preds2 = lstm.rollout(&x, &st, k);
        for (a, b) in preds.iter().zip(&preds2) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn grad_clip_bounds_update() {
        let mut rng = Rng::seed_from_u64(116);
        let mut lstm = Lstm::new(1, 4, 1, 1, &mut rng);
        lstm.grad_clip = 1e-6; // essentially freeze
        let st = lstm.zero_state();
        let before: Vec<f32> = {
            let mut v = Vec::new();
            lstm.visit_params_mut(&mut |t| v.extend_from_slice(t.data()));
            v
        };
        let x = Tensor::from_vec(vec![10.0], &[1, 1]);
        let t = Tensor::from_vec(vec![-10.0], &[1, 1]);
        let _ = lstm.train_step(&x, &t, &st, 1.0);
        let mut after = Vec::new();
        lstm.visit_params_mut(&mut |t| after.extend_from_slice(t.data()));
        let delta: f32 = before.iter().zip(&after).map(|(a, b)| (a - b).abs()).sum();
        assert!(delta < 1e-4, "clip failed, total delta {delta}");
    }
}

#[cfg(test)]
mod sensitivity_tests {
    use super::*;

    #[test]
    fn output_depends_on_input() {
        let mut rng = Rng::seed_from_u64(301);
        let lstm = Lstm::new(2, 8, 2, 1, &mut rng);
        let st = lstm.zero_state();
        let (a, _) = lstm.predict(&Tensor::from_vec(vec![0.1, 0.0], &[1, 2]), &st);
        let (b, _) = lstm.predict(&Tensor::from_vec(vec![0.9, 0.5], &[1, 2]), &st);
        assert_ne!(a, b, "LSTM must react to its input");
    }

    #[test]
    fn output_depends_on_state_history() {
        // Same input, different histories → different outputs (memory).
        let mut rng = Rng::seed_from_u64(302);
        let lstm = Lstm::new(1, 8, 1, 1, &mut rng);
        let x = Tensor::from_vec(vec![0.3], &[1, 1]);
        let fresh = lstm.zero_state();
        let (_, warmed) = lstm.predict(&Tensor::from_vec(vec![5.0], &[1, 1]), &fresh);
        let (from_fresh, _) = lstm.predict(&x, &fresh);
        let (from_warmed, _) = lstm.predict(&x, &warmed);
        assert_ne!(from_fresh, from_warmed);
    }

    #[test]
    fn num_params_matches_visit() {
        let mut rng = Rng::seed_from_u64(303);
        let mut lstm = Lstm::new(3, 16, 2, 1, &mut rng);
        let mut visited = 0;
        lstm.visit_params_mut(&mut |t| visited += t.numel());
        assert_eq!(visited, lstm.num_params());
        // 2×LSTM + head = 5 weight/bias pairs... (per-cell W/b + head W/b)
        let mut count = 0;
        lstm.visit_params_mut(&mut |_| count += 1);
        assert_eq!(count, 2 * 2 + 2);
    }
}
