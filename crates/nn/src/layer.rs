//! Layers and the `Layer` composition enum.
//!
//! Layers are plain state holders; the forward pass threads an autograd
//! [`Graph`] plus a [`ForwardCtx`] that records (a) the tape `Var` of every
//! parameter, in visitation order, so gradients can be pulled out after
//! `backward`, and (b) the batch statistics of every BatchNorm layer, in
//! layer order — the payload a worker reports to the parameter server for
//! Async-BN.

use lcasgd_autograd::ops::norm::BnBatchStats;
use lcasgd_autograd::{Graph, Var};
use lcasgd_tensor::ops::conv::Conv2dSpec;
use lcasgd_tensor::{init, Rng, Tensor};

/// Per-forward bookkeeping.
pub struct ForwardCtx {
    /// Training mode: BatchNorm normalizes with batch statistics and
    /// records them; inference mode uses running statistics.
    pub train: bool,
    /// Tape handle of each parameter, in [`Layer::visit_params`] order.
    pub param_vars: Vec<Var>,
    /// Batch statistics of each BatchNorm layer, in layer order
    /// (training mode only).
    pub bn_stats: Vec<BnBatchStats>,
}

impl ForwardCtx {
    /// Fresh context in the given mode.
    pub fn new(train: bool) -> Self {
        ForwardCtx { train, param_vars: Vec::new(), bn_stats: Vec::new() }
    }
}

/// Fully connected layer `y = x·Wᵀ + b` with `W: [out, in]`.
pub struct Linear {
    pub weight: Tensor,
    pub bias: Tensor,
}

impl Linear {
    /// He-initialized linear layer (suitable for ReLU networks).
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: init::he_normal(&[out_features, in_features], in_features, rng),
            bias: Tensor::zeros(&[out_features]),
        }
    }

    /// Xavier-initialized linear layer (suitable near sigmoids/tanh, e.g.
    /// the LSTM output heads).
    pub fn new_xavier(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: init::xavier_uniform(
                &[out_features, in_features],
                in_features,
                out_features,
                rng,
            ),
            bias: Tensor::zeros(&[out_features]),
        }
    }

    /// Builds the forward node, registering parameters on the context.
    pub fn forward(&self, g: &mut Graph, x: Var, ctx: &mut ForwardCtx) -> Var {
        let w = g.leaf(self.weight.clone());
        let b = g.leaf(self.bias.clone());
        ctx.param_vars.push(w);
        ctx.param_vars.push(b);
        g.linear(x, w, b)
    }
}

/// Bias-free 2-D convolution (ResNet style: BatchNorm supplies the shift).
pub struct Conv2d {
    pub weight: Tensor,
    pub spec: Conv2dSpec,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new(spec: Conv2dSpec, rng: &mut Rng) -> Self {
        let fan_in = spec.in_channels * spec.kernel * spec.kernel;
        Conv2d {
            weight: init::he_normal(
                &[spec.out_channels, spec.in_channels, spec.kernel, spec.kernel],
                fan_in,
                rng,
            ),
            spec,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: Var, ctx: &mut ForwardCtx) -> Var {
        let w = g.leaf(self.weight.clone());
        ctx.param_vars.push(w);
        g.conv2d(x, w, self.spec)
    }
}

/// Batch normalization over channels (rank-4 input) or features (rank-2).
///
/// `running_mean` / `running_var` are *state*, not parameters: in regular
/// BN they are EMA-updated locally; under the paper's Async-BN the
/// parameter server owns them (Formulas 6–7) and pushes them into the
/// model before evaluation — hence they are public and settable.
pub struct BatchNorm {
    pub gamma: Tensor,
    pub beta: Tensor,
    pub running_mean: Tensor,
    pub running_var: Tensor,
    pub eps: f32,
}

impl BatchNorm {
    /// Identity-initialized BN over `features` channels.
    pub fn new(features: usize) -> Self {
        BatchNorm {
            gamma: Tensor::ones(&[features]),
            beta: Tensor::zeros(&[features]),
            running_mean: Tensor::zeros(&[features]),
            running_var: Tensor::ones(&[features]),
            eps: 1e-5,
        }
    }

    /// Number of channels.
    pub fn features(&self) -> usize {
        self.gamma.dims()[0]
    }

    pub fn forward(&self, g: &mut Graph, x: Var, ctx: &mut ForwardCtx) -> Var {
        let gamma = g.leaf(self.gamma.clone());
        let beta = g.leaf(self.beta.clone());
        ctx.param_vars.push(gamma);
        ctx.param_vars.push(beta);
        if ctx.train {
            let rank = g.value(x).shape().rank();
            let (y, stats) = if rank == 4 {
                g.batch_norm2d(x, gamma, beta, self.eps)
            } else {
                g.batch_norm1d(x, gamma, beta, self.eps)
            };
            ctx.bn_stats.push(stats);
            y
        } else {
            g.batch_norm_inference(x, gamma, beta, &self.running_mean, &self.running_var, self.eps)
        }
    }
}

/// Pre-activation residual block: `x + f(x)` where
/// `f = BN-ReLU-Conv — BN-ReLU-Conv`, with an optional 1×1 strided
/// projection on the skip path when the shape changes.
pub struct ResidualBlock {
    pub bn1: BatchNorm,
    pub conv1: Conv2d,
    pub bn2: BatchNorm,
    pub conv2: Conv2d,
    /// 1×1 projection for stride/width changes; `None` for identity skips.
    pub downsample: Option<Conv2d>,
}

impl ResidualBlock {
    /// A block mapping `in_ch -> out_ch` with the given stride on its
    /// first convolution.
    pub fn new(in_ch: usize, out_ch: usize, stride: usize, rng: &mut Rng) -> Self {
        let conv1 = Conv2d::new(
            Conv2dSpec { in_channels: in_ch, out_channels: out_ch, kernel: 3, stride, padding: 1 },
            rng,
        );
        let conv2 = Conv2d::new(
            Conv2dSpec {
                in_channels: out_ch,
                out_channels: out_ch,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            rng,
        );
        let downsample = if stride != 1 || in_ch != out_ch {
            Some(Conv2d::new(
                Conv2dSpec {
                    in_channels: in_ch,
                    out_channels: out_ch,
                    kernel: 1,
                    stride,
                    padding: 0,
                },
                rng,
            ))
        } else {
            None
        };
        ResidualBlock {
            bn1: BatchNorm::new(in_ch),
            conv1,
            bn2: BatchNorm::new(out_ch),
            conv2,
            downsample,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: Var, ctx: &mut ForwardCtx) -> Var {
        let pre = self.bn1.forward(g, x, ctx);
        let pre = g.relu(pre);
        let h = self.conv1.forward(g, pre, ctx);
        let h = self.bn2.forward(g, h, ctx);
        let h = g.relu(h);
        let h = self.conv2.forward(g, h, ctx);
        // Pre-activation (v2) convention: when projecting, project the
        // *pre-activated* input.
        let skip = match &self.downsample {
            Some(proj) => proj.forward(g, pre, ctx),
            None => x,
        };
        g.add(h, skip)
    }
}

/// Pre-activation bottleneck block (ResNet-50-family):
/// `BN-ReLU-Conv1×1(c/4) — BN-ReLU-Conv3×3(c/4, stride) — BN-ReLU-Conv1×1(c)`
/// plus the identity / 1×1-projection skip. Four× cheaper than a basic
/// block at equal width, which is how the 50-layer networks stay
/// tractable.
pub struct BottleneckBlock {
    pub bn1: BatchNorm,
    pub conv1: Conv2d,
    pub bn2: BatchNorm,
    pub conv2: Conv2d,
    pub bn3: BatchNorm,
    pub conv3: Conv2d,
    pub downsample: Option<Conv2d>,
}

impl BottleneckBlock {
    /// A bottleneck mapping `in_ch -> out_ch` with the given stride on the
    /// 3×3 convolution. The internal width is `out_ch / 4` (floored, min 1).
    pub fn new(in_ch: usize, out_ch: usize, stride: usize, rng: &mut Rng) -> Self {
        let mid = (out_ch / 4).max(1);
        let conv1 = Conv2d::new(
            Conv2dSpec { in_channels: in_ch, out_channels: mid, kernel: 1, stride: 1, padding: 0 },
            rng,
        );
        let conv2 = Conv2d::new(
            Conv2dSpec { in_channels: mid, out_channels: mid, kernel: 3, stride, padding: 1 },
            rng,
        );
        let conv3 = Conv2d::new(
            Conv2dSpec { in_channels: mid, out_channels: out_ch, kernel: 1, stride: 1, padding: 0 },
            rng,
        );
        let downsample = if stride != 1 || in_ch != out_ch {
            Some(Conv2d::new(
                Conv2dSpec {
                    in_channels: in_ch,
                    out_channels: out_ch,
                    kernel: 1,
                    stride,
                    padding: 0,
                },
                rng,
            ))
        } else {
            None
        };
        BottleneckBlock {
            bn1: BatchNorm::new(in_ch),
            conv1,
            bn2: BatchNorm::new(mid),
            conv2,
            bn3: BatchNorm::new(mid),
            conv3,
            downsample,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: Var, ctx: &mut ForwardCtx) -> Var {
        let pre = self.bn1.forward(g, x, ctx);
        let pre = g.relu(pre);
        let h = self.conv1.forward(g, pre, ctx);
        let h = self.bn2.forward(g, h, ctx);
        let h = g.relu(h);
        let h = self.conv2.forward(g, h, ctx);
        let h = self.bn3.forward(g, h, ctx);
        let h = g.relu(h);
        let h = self.conv3.forward(g, h, ctx);
        let skip = match &self.downsample {
            Some(proj) => proj.forward(g, pre, ctx),
            None => x,
        };
        g.add(h, skip)
    }
}

/// A network layer. Composition is a tree: residual blocks nest layers.
pub enum Layer {
    Linear(Linear),
    Conv(Conv2d),
    BatchNorm(BatchNorm),
    Relu,
    MaxPool {
        k: usize,
        stride: usize,
    },
    GlobalAvgPool,
    /// Flattens `[n, c, h, w]` to `[n, c·h·w]`.
    Flatten,
    /// Boxed (as is `Bottleneck`): whole conv/BN stacks live inside these
    /// block variants, making them an order of magnitude larger than the
    /// plain layers.
    Residual(Box<ResidualBlock>),
    Bottleneck(Box<BottleneckBlock>),
}

impl Layer {
    /// Builds the forward node(s) for this layer.
    pub fn forward(&self, g: &mut Graph, x: Var, ctx: &mut ForwardCtx) -> Var {
        match self {
            Layer::Linear(l) => l.forward(g, x, ctx),
            Layer::Conv(c) => c.forward(g, x, ctx),
            Layer::BatchNorm(b) => b.forward(g, x, ctx),
            Layer::Relu => g.relu(x),
            Layer::MaxPool { k, stride } => g.max_pool2d(x, *k, *stride),
            Layer::GlobalAvgPool => g.global_avg_pool(x),
            Layer::Flatten => {
                let d = g.value(x).dims().to_vec();
                let rest: usize = d[1..].iter().product();
                g.reshape(x, &[d[0], rest])
            }
            Layer::Residual(r) => r.forward(g, x, ctx),
            Layer::Bottleneck(b) => b.forward(g, x, ctx),
        }
    }

    /// Visits every parameter tensor, depth-first, in forward order.
    pub fn visit_params(&self, f: &mut impl FnMut(&Tensor)) {
        match self {
            Layer::Linear(l) => {
                f(&l.weight);
                f(&l.bias);
            }
            Layer::Conv(c) => f(&c.weight),
            Layer::BatchNorm(b) => {
                f(&b.gamma);
                f(&b.beta);
            }
            Layer::Residual(r) => {
                // Must match ResidualBlock::forward's registration order:
                // bn1, conv1, bn2, conv2, downsample.
                f(&r.bn1.gamma);
                f(&r.bn1.beta);
                f(&r.conv1.weight);
                f(&r.bn2.gamma);
                f(&r.bn2.beta);
                f(&r.conv2.weight);
                if let Some(d) = &r.downsample {
                    f(&d.weight);
                }
            }
            Layer::Bottleneck(b) => {
                // Mirror of BottleneckBlock::forward's registration order.
                f(&b.bn1.gamma);
                f(&b.bn1.beta);
                f(&b.conv1.weight);
                f(&b.bn2.gamma);
                f(&b.bn2.beta);
                f(&b.conv2.weight);
                f(&b.bn3.gamma);
                f(&b.bn3.beta);
                f(&b.conv3.weight);
                if let Some(d) = &b.downsample {
                    f(&d.weight);
                }
            }
            _ => {}
        }
    }

    /// Mutable variant of [`visit_params`](Self::visit_params); identical
    /// order.
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(&mut Tensor)) {
        match self {
            Layer::Linear(l) => {
                f(&mut l.weight);
                f(&mut l.bias);
            }
            Layer::Conv(c) => f(&mut c.weight),
            Layer::BatchNorm(b) => {
                f(&mut b.gamma);
                f(&mut b.beta);
            }
            Layer::Residual(r) => {
                f(&mut r.bn1.gamma);
                f(&mut r.bn1.beta);
                f(&mut r.conv1.weight);
                f(&mut r.bn2.gamma);
                f(&mut r.bn2.beta);
                f(&mut r.conv2.weight);
                if let Some(d) = &mut r.downsample {
                    f(&mut d.weight);
                }
            }
            Layer::Bottleneck(b) => {
                f(&mut b.bn1.gamma);
                f(&mut b.bn1.beta);
                f(&mut b.conv1.weight);
                f(&mut b.bn2.gamma);
                f(&mut b.bn2.beta);
                f(&mut b.conv2.weight);
                f(&mut b.bn3.gamma);
                f(&mut b.bn3.beta);
                f(&mut b.conv3.weight);
                if let Some(d) = &mut b.downsample {
                    f(&mut d.weight);
                }
            }
            _ => {}
        }
    }

    /// Visits every BatchNorm layer in forward order — the order in which
    /// `ForwardCtx::bn_stats` entries are recorded.
    pub fn visit_bn_mut(&mut self, f: &mut impl FnMut(&mut BatchNorm)) {
        match self {
            Layer::BatchNorm(b) => f(b),
            Layer::Residual(r) => {
                f(&mut r.bn1);
                f(&mut r.bn2);
            }
            Layer::Bottleneck(b) => {
                f(&mut b.bn1);
                f(&mut b.bn2);
                f(&mut b.bn3);
            }
            _ => {}
        }
    }

    /// Immutable BN visitor, same order as [`visit_bn_mut`](Self::visit_bn_mut).
    pub fn visit_bn(&self, f: &mut impl FnMut(&BatchNorm)) {
        match self {
            Layer::BatchNorm(b) => f(b),
            Layer::Residual(r) => {
                f(&r.bn1);
                f(&r.bn2);
            }
            Layer::Bottleneck(b) => {
                f(&b.bn1);
                f(&b.bn2);
                f(&b.bn3);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_shape_and_param_registration() {
        let mut rng = Rng::seed_from_u64(91);
        let l = Linear::new(4, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[2, 4]));
        let mut ctx = ForwardCtx::new(true);
        let y = l.forward(&mut g, x, &mut ctx);
        assert_eq!(g.value(y).dims(), &[2, 3]);
        assert_eq!(ctx.param_vars.len(), 2);
    }

    #[test]
    fn bn_train_records_stats_eval_does_not() {
        let mut rng = Rng::seed_from_u64(92);
        let b = BatchNorm::new(3);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[8, 3], 1.0, &mut rng));
        let mut ctx = ForwardCtx::new(true);
        b.forward(&mut g, x, &mut ctx);
        assert_eq!(ctx.bn_stats.len(), 1);

        let mut ctx2 = ForwardCtx::new(false);
        let mut g2 = Graph::new();
        let x2 = g2.leaf(Tensor::randn(&[8, 3], 1.0, &mut rng));
        b.forward(&mut g2, x2, &mut ctx2);
        assert!(ctx2.bn_stats.is_empty());
    }

    #[test]
    fn residual_identity_skip_when_shapes_match() {
        let mut rng = Rng::seed_from_u64(93);
        let r = ResidualBlock::new(4, 4, 1, &mut rng);
        assert!(r.downsample.is_none());
        let r2 = ResidualBlock::new(4, 8, 2, &mut rng);
        assert!(r2.downsample.is_some());
    }

    #[test]
    fn residual_forward_shapes() {
        let mut rng = Rng::seed_from_u64(94);
        let r = ResidualBlock::new(3, 6, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng));
        let mut ctx = ForwardCtx::new(true);
        let y = Layer::Residual(Box::new(r)).forward(&mut g, x, &mut ctx);
        assert_eq!(g.value(y).dims(), &[2, 6, 4, 4]);
        // Two BN layers recorded stats.
        assert_eq!(ctx.bn_stats.len(), 2);
    }

    #[test]
    fn param_visit_order_matches_forward_registration() {
        let mut rng = Rng::seed_from_u64(95);
        let layer = Layer::Residual(Box::new(ResidualBlock::new(3, 6, 2, &mut rng)));
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[1, 3, 4, 4], 1.0, &mut rng));
        let mut ctx = ForwardCtx::new(true);
        layer.forward(&mut g, x, &mut ctx);
        let mut visited = Vec::new();
        layer.visit_params(&mut |t| visited.push(t.dims().to_vec()));
        let from_vars: Vec<Vec<usize>> =
            ctx.param_vars.iter().map(|&v| g.value(v).dims().to_vec()).collect();
        assert_eq!(visited, from_vars, "visitor order must mirror forward registration");
    }

    #[test]
    fn flatten_shape() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[2, 3, 4, 4]));
        let mut ctx = ForwardCtx::new(true);
        let y = Layer::Flatten.forward(&mut g, x, &mut ctx);
        assert_eq!(g.value(y).dims(), &[2, 48]);
    }
}
