//! `Network`: an ordered stack of layers with flat-weight serialization.
//!
//! The parameter server holds the canonical weights as a flat `Vec<f32>`;
//! workers deserialize into their local `Network`, train, and ship flat
//! gradients back. Flattening order is the parameter-visitor order, which
//! is defined to mirror forward registration order (asserted by tests).

use crate::layer::{ForwardCtx, Layer};
use lcasgd_autograd::ops::norm::BnBatchStats;
use lcasgd_autograd::{Graph, Var};
use lcasgd_tensor::Tensor;

/// Snapshot of every BatchNorm layer's running statistics, in BN-visitor
/// order. This is the state Async-BN centralizes on the parameter server.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BnState {
    pub means: Vec<Tensor>,
    pub vars: Vec<Tensor>,
}

/// A feed-forward network (possibly containing residual blocks).
pub struct Network {
    pub layers: Vec<Layer>,
}

impl Network {
    /// Wraps a layer stack.
    pub fn new(layers: Vec<Layer>) -> Self {
        Network { layers }
    }

    /// Forward pass over a batch; returns the logits node and the forward
    /// context (parameter vars + BN batch stats).
    pub fn forward(&self, g: &mut Graph, input: Tensor, train: bool) -> (Var, ForwardCtx) {
        let mut ctx = ForwardCtx::new(train);
        let mut x = g.leaf(input);
        for layer in &self.layers {
            x = layer.forward(g, x, &mut ctx);
        }
        (x, ctx)
    }

    /// Total number of parameter scalars.
    pub fn num_params(&self) -> usize {
        let mut n = 0;
        for l in &self.layers {
            l.visit_params(&mut |t| n += t.numel());
        }
        n
    }

    /// Serializes all parameters into one flat buffer (visitor order).
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            l.visit_params(&mut |t| out.extend_from_slice(t.data()));
        }
        out
    }

    /// Loads parameters from a flat buffer produced by [`flat_params`]
    /// on an identically shaped network.
    ///
    /// [`flat_params`]: Self::flat_params
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        let mut off = 0;
        for l in &mut self.layers {
            l.visit_params_mut(&mut |t| {
                let n = t.numel();
                t.data_mut().copy_from_slice(&flat[off..off + n]);
                off += n;
            });
        }
        assert_eq!(off, flat.len(), "flat parameter length mismatch");
    }

    /// Extracts the gradient of every parameter after `g.backward(...)`,
    /// flattened in the same order as [`flat_params`](Self::flat_params).
    /// Parameters unreached by backward get zero gradients.
    pub fn flat_grads(&self, g: &mut Graph, ctx: &ForwardCtx) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for &v in &ctx.param_vars {
            match g.take_grad(v) {
                Some(t) => out.extend_from_slice(t.data()),
                None => out.extend(std::iter::repeat_n(0.0, g.value(v).numel())),
            }
        }
        out
    }

    /// Applies `params += alpha · grads` over the flat representation.
    pub fn axpy_params(&mut self, grads: &[f32], alpha: f32) {
        let mut off = 0;
        for l in &mut self.layers {
            l.visit_params_mut(&mut |t| {
                let n = t.numel();
                for (p, &g) in t.data_mut().iter_mut().zip(&grads[off..off + n]) {
                    *p += alpha * g;
                }
                off += n;
            });
        }
        assert_eq!(off, grads.len(), "flat gradient length mismatch");
    }

    /// Snapshot of all BN running statistics (BN-visitor order).
    pub fn bn_state(&self) -> BnState {
        let mut s = BnState::default();
        for l in &self.layers {
            l.visit_bn(&mut |b| {
                s.means.push(b.running_mean.clone());
                s.vars.push(b.running_var.clone());
            });
        }
        s
    }

    /// Installs BN running statistics (e.g. the server's Async-BN
    /// accumulators) into the model.
    pub fn set_bn_state(&mut self, state: &BnState) {
        let mut i = 0;
        for l in &mut self.layers {
            l.visit_bn_mut(&mut |b| {
                b.running_mean = state.means[i].clone();
                b.running_var = state.vars[i].clone();
                i += 1;
            });
        }
        assert_eq!(i, state.means.len(), "BN state layer-count mismatch");
    }

    /// Number of BatchNorm layers.
    pub fn num_bn_layers(&self) -> usize {
        let mut n = 0;
        for l in &self.layers {
            l.visit_bn(&mut |_| n += 1);
        }
        n
    }

    /// Locally EMA-updates running BN statistics from a forward pass's
    /// batch stats: `running = (1−m)·running + m·batch`. This is *regular*
    /// BN behaviour (each worker updates its own copy).
    pub fn update_bn_running(&mut self, stats: &[BnBatchStats], momentum: f32) {
        let mut i = 0;
        for l in &mut self.layers {
            l.visit_bn_mut(&mut |b| {
                let s = &stats[i];
                b.running_mean.scale_add_inplace(1.0 - momentum, &s.mean, momentum);
                b.running_var.scale_add_inplace(1.0 - momentum, &s.var, momentum);
                i += 1;
            });
        }
        assert_eq!(i, stats.len(), "BN stats layer-count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{BatchNorm, Linear, ResidualBlock};
    use lcasgd_tensor::Rng;

    fn tiny_net(rng: &mut Rng) -> Network {
        Network::new(vec![
            Layer::Linear(Linear::new(4, 8, rng)),
            Layer::BatchNorm(BatchNorm::new(8)),
            Layer::Relu,
            Layer::Linear(Linear::new(8, 3, rng)),
        ])
    }

    #[test]
    fn flat_params_roundtrip() {
        let mut rng = Rng::seed_from_u64(101);
        let net = tiny_net(&mut rng);
        let flat = net.flat_params();
        assert_eq!(flat.len(), net.num_params());
        let mut net2 = tiny_net(&mut rng); // different random weights
        assert_ne!(net2.flat_params(), flat);
        net2.set_flat_params(&flat);
        assert_eq!(net2.flat_params(), flat);
    }

    #[test]
    fn forward_backward_produces_full_grads() {
        let mut rng = Rng::seed_from_u64(102);
        let net = tiny_net(&mut rng);
        let mut g = Graph::new();
        let x = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let (logits, ctx) = net.forward(&mut g, x, true);
        let loss = g.softmax_cross_entropy(logits, &[0, 1, 2, 0, 1, 2]);
        g.backward(loss);
        let grads = net.flat_grads(&mut g, &ctx);
        assert_eq!(grads.len(), net.num_params());
        assert!(grads.iter().any(|&v| v != 0.0), "gradients should be nonzero");
    }

    #[test]
    fn axpy_moves_params() {
        let mut rng = Rng::seed_from_u64(103);
        let mut net = tiny_net(&mut rng);
        let before = net.flat_params();
        let grads = vec![1.0; net.num_params()];
        net.axpy_params(&grads, -0.1);
        let after = net.flat_params();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - 0.1 - a).abs() < 1e-6);
        }
    }

    #[test]
    fn bn_state_roundtrip_and_count() {
        let mut rng = Rng::seed_from_u64(104);
        let mut net = Network::new(vec![
            Layer::Conv(crate::layer::Conv2d::new(
                lcasgd_tensor::ops::conv::Conv2dSpec {
                    in_channels: 3,
                    out_channels: 4,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                &mut rng,
            )),
            Layer::Residual(Box::new(ResidualBlock::new(4, 4, 1, &mut rng))),
            Layer::GlobalAvgPool,
            Layer::Linear(Linear::new(4, 2, &mut rng)),
        ]);
        assert_eq!(net.num_bn_layers(), 2);
        let mut state = net.bn_state();
        state.means[0] = Tensor::full(&[4], 7.0);
        net.set_bn_state(&state);
        assert_eq!(net.bn_state().means[0].data(), &[7.0; 4]);
    }

    #[test]
    fn bn_running_ema_update() {
        let mut rng = Rng::seed_from_u64(105);
        let mut net = tiny_net(&mut rng);
        let stats =
            vec![BnBatchStats { mean: Tensor::full(&[8], 10.0), var: Tensor::full(&[8], 4.0) }];
        net.update_bn_running(&stats, 0.5);
        let st = net.bn_state();
        assert_eq!(st.means[0].data(), &[5.0; 8]); // (1-0.5)*0 + 0.5*10
        assert_eq!(st.vars[0].data(), &[2.5; 8]); // (1-0.5)*1 + 0.5*4
    }

    #[test]
    fn eval_mode_uses_running_stats_deterministically() {
        let mut rng = Rng::seed_from_u64(106);
        let net = tiny_net(&mut rng);
        let x = Tensor::randn(&[5, 4], 1.0, &mut rng);
        let mut g1 = Graph::new();
        let (y1, _) = net.forward(&mut g1, x.clone(), false);
        let mut g2 = Graph::new();
        let (y2, _) = net.forward(&mut g2, x, false);
        assert_eq!(g1.value(y1), g2.value(y2));
    }
}
