//! ResNet builders: the paper-faithful CIFAR ResNet-18 plus scaled-down
//! presets used by the in-session experiments.
//!
//! The architecture follows the pre-activation (v2) layout the paper's
//! ImageNet experiments use ("ResNet-50(V2)"): a stem convolution, stages
//! of residual blocks (stride 2 between stages), a final BN+ReLU, global
//! average pooling, and a linear classifier.

use crate::layer::{BatchNorm, BottleneckBlock, Conv2d, Layer, Linear, ResidualBlock};
use crate::network::Network;
use lcasgd_tensor::ops::conv::Conv2dSpec;
use lcasgd_tensor::Rng;

/// Which residual block family a network uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// Two 3×3 convolutions (ResNet-18/34 family).
    Basic,
    /// 1×1 → 3×3 → 1×1 with a 4× width bottleneck (ResNet-50+ family,
    /// the paper's ImageNet network).
    Bottleneck,
}

/// Architecture description for the ResNet family.
#[derive(Clone, Debug)]
pub struct ResNetConfig {
    /// Input channels (3 for RGB).
    pub in_channels: usize,
    /// Stem / first-stage width (64 in the paper, 8–16 in scaled presets).
    pub width: usize,
    /// Residual blocks per stage; width doubles and stride is 2 between
    /// stages. `[2, 2, 2, 2]` is ResNet-18.
    pub stage_blocks: Vec<usize>,
    /// Output classes.
    pub num_classes: usize,
    /// Residual block family.
    pub block: BlockKind,
}

impl ResNetConfig {
    /// The paper's CIFAR-10 network: ResNet-18, width 64, 3×32×32 inputs.
    pub fn resnet18_cifar(num_classes: usize) -> Self {
        ResNetConfig {
            in_channels: 3,
            width: 64,
            stage_blocks: vec![2, 2, 2, 2],
            num_classes,
            block: BlockKind::Basic,
        }
    }

    /// ResNet-50(v2): bottleneck blocks, stages [3, 4, 6, 3] — the
    /// paper's ImageNet network. Stage widths are the post-expansion
    /// channel counts (width × 4 relative to the bottleneck interior).
    pub fn resnet50_like(num_classes: usize) -> Self {
        ResNetConfig {
            in_channels: 3,
            width: 256,
            stage_blocks: vec![3, 4, 6, 3],
            num_classes,
            block: BlockKind::Bottleneck,
        }
    }

    /// Scaled-down preset for in-session training: 3 stages of 1 block,
    /// width 8. Same topology (residual + BN) at ~1/500 the FLOPs.
    pub fn tiny(in_channels: usize, num_classes: usize) -> Self {
        ResNetConfig {
            in_channels,
            width: 8,
            stage_blocks: vec![1, 1, 1],
            num_classes,
            block: BlockKind::Basic,
        }
    }

    /// Middle preset: 3 stages of 2 blocks, width 16.
    pub fn small(in_channels: usize, num_classes: usize) -> Self {
        ResNetConfig {
            in_channels,
            width: 16,
            stage_blocks: vec![2, 2, 2],
            num_classes,
            block: BlockKind::Basic,
        }
    }

    /// Scaled-down bottleneck preset: exercises the ResNet-50 block
    /// family at experiment-friendly cost.
    pub fn tiny_bottleneck(in_channels: usize, num_classes: usize) -> Self {
        ResNetConfig {
            in_channels,
            width: 16,
            stage_blocks: vec![1, 1, 1],
            num_classes,
            block: BlockKind::Bottleneck,
        }
    }

    /// Builds the network.
    pub fn build(&self, rng: &mut Rng) -> Network {
        let mut layers = Vec::new();
        // Stem: 3×3 conv, stride 1 (CIFAR-style stem; no max-pool).
        layers.push(Layer::Conv(Conv2d::new(
            Conv2dSpec {
                in_channels: self.in_channels,
                out_channels: self.width,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            rng,
        )));
        let mut ch = self.width;
        for (stage, &blocks) in self.stage_blocks.iter().enumerate() {
            let out_ch = self.width << stage;
            for b in 0..blocks {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                layers.push(match self.block {
                    BlockKind::Basic => {
                        Layer::Residual(Box::new(ResidualBlock::new(ch, out_ch, stride, rng)))
                    }
                    BlockKind::Bottleneck => {
                        Layer::Bottleneck(Box::new(BottleneckBlock::new(ch, out_ch, stride, rng)))
                    }
                });
                ch = out_ch;
            }
        }
        // Final pre-activation BN + ReLU, pool, classify.
        layers.push(Layer::BatchNorm(BatchNorm::new(ch)));
        layers.push(Layer::Relu);
        layers.push(Layer::GlobalAvgPool);
        layers.push(Layer::Linear(Linear::new(ch, self.num_classes, rng)));
        Network::new(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcasgd_autograd::Graph;
    use lcasgd_tensor::Tensor;

    #[test]
    fn tiny_resnet_forward_shapes() {
        let mut rng = Rng::seed_from_u64(121);
        let net = ResNetConfig::tiny(3, 10).build(&mut rng);
        let mut g = Graph::new();
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let (logits, ctx) = net.forward(&mut g, x, true);
        assert_eq!(g.value(logits).dims(), &[2, 10]);
        // 3 stages × 1 block × 2 BN + final BN = 7 BN layers.
        assert_eq!(ctx.bn_stats.len(), 7);
        assert_eq!(net.num_bn_layers(), 7);
    }

    #[test]
    fn resnet18_block_count_and_params() {
        let mut rng = Rng::seed_from_u64(122);
        let net = ResNetConfig::resnet18_cifar(10).build(&mut rng);
        // stem + 8 residual blocks + bn + relu + pool + linear
        assert_eq!(net.layers.len(), 1 + 8 + 4);
        // ResNet-18 CIFAR has ~11.2M params; ours is v2-style with 1x1
        // projections — just sanity-bound it.
        let n = net.num_params();
        assert!(n > 10_000_000 && n < 13_000_000, "params {n}");
    }

    #[test]
    fn train_step_reduces_loss_on_fixed_batch() {
        // Full end-to-end smoke: a tiny ResNet overfits one batch.
        let mut rng = Rng::seed_from_u64(123);
        let mut net = ResNetConfig::tiny(2, 3).build(&mut rng);
        let x = Tensor::randn(&[6, 2, 8, 8], 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0, 1, 2];
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..30 {
            let mut g = Graph::new();
            let (logits, ctx) = net.forward(&mut g, x.clone(), true);
            let loss = g.softmax_cross_entropy(logits, &labels);
            g.backward(loss);
            let lv = g.value(loss).item();
            if step == 0 {
                first = lv;
            }
            last = lv;
            let grads = net.flat_grads(&mut g, &ctx);
            net.axpy_params(&grads, -0.1);
        }
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn spatial_downsampling_matches_stage_count() {
        let mut rng = Rng::seed_from_u64(124);
        // 3 stages → 2 stride-2 transitions → 16/4 = 4 final spatial size.
        let net = ResNetConfig::tiny(3, 4).build(&mut rng);
        let mut g = Graph::new();
        let x = Tensor::randn(&[1, 3, 16, 16], 1.0, &mut rng);
        // Walk layers manually up to the pool to inspect the activation.
        let mut ctx = crate::layer::ForwardCtx::new(false);
        let mut v = g.leaf(x);
        for layer in &net.layers[..net.layers.len() - 2] {
            v = layer.forward(&mut g, v, &mut ctx);
        }
        // Last inspected layer is BN+ReLU output before pooling.
        assert_eq!(&g.value(v).dims()[2..], &[4, 4]);
    }
}

#[cfg(test)]
mod bottleneck_tests {
    use super::*;
    use lcasgd_autograd::Graph;
    use lcasgd_tensor::Tensor;

    #[test]
    fn tiny_bottleneck_forward_and_shapes() {
        let mut rng = Rng::seed_from_u64(125);
        let net = ResNetConfig::tiny_bottleneck(3, 10).build(&mut rng);
        let mut g = Graph::new();
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let (logits, ctx) = net.forward(&mut g, x, true);
        assert_eq!(g.value(logits).dims(), &[2, 10]);
        // 3 stages × 1 block × 3 BN + final BN = 10 BN layers.
        assert_eq!(ctx.bn_stats.len(), 10);
        assert_eq!(net.num_bn_layers(), 10);
    }

    #[test]
    fn bottleneck_param_visit_matches_forward_order() {
        let mut rng = Rng::seed_from_u64(126);
        let layer =
            Layer::Bottleneck(Box::new(crate::layer::BottleneckBlock::new(4, 8, 2, &mut rng)));
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[1, 4, 6, 6], 1.0, &mut rng));
        let mut ctx = crate::layer::ForwardCtx::new(true);
        layer.forward(&mut g, x, &mut ctx);
        let mut visited = Vec::new();
        layer.visit_params(&mut |t| visited.push(t.dims().to_vec()));
        let from_vars: Vec<Vec<usize>> =
            ctx.param_vars.iter().map(|&v| g.value(v).dims().to_vec()).collect();
        assert_eq!(visited, from_vars);
    }

    #[test]
    fn bottleneck_trains_on_fixed_batch() {
        let mut rng = Rng::seed_from_u64(127);
        let mut net = ResNetConfig::tiny_bottleneck(2, 3).build(&mut rng);
        let x = Tensor::randn(&[6, 2, 8, 8], 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0, 1, 2];
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..25 {
            let mut g = Graph::new();
            let (logits, ctx) = net.forward(&mut g, x.clone(), true);
            let loss = g.softmax_cross_entropy(logits, &labels);
            g.backward(loss);
            if step == 0 {
                first = g.value(loss).item();
            }
            last = g.value(loss).item();
            let grads = net.flat_grads(&mut g, &ctx);
            net.axpy_params(&grads, -0.1);
        }
        assert!(last < first * 0.6, "loss {first} -> {last}");
    }

    #[test]
    fn resnet50_like_has_50ish_layers() {
        // 3+4+6+3 = 16 bottlenecks × 3 convs + stem + fc ≈ 50 weighted
        // layers, the namesake depth.
        let cfg = ResNetConfig::resnet50_like(1000);
        let convs_per_block = 3;
        let blocks: usize = cfg.stage_blocks.iter().sum();
        assert_eq!(blocks * convs_per_block + 2, 50);
        assert_eq!(cfg.block, BlockKind::Bottleneck);
    }
}
