//! Multi-layer perceptron builder — the fast model for unit/integration
//! tests and quick experiments (BatchNorm1d keeps the Async-BN machinery
//! exercised even without convolutions).

use crate::layer::{BatchNorm, Layer, Linear};
use crate::network::Network;
use lcasgd_tensor::Rng;

/// Builds `dims[0] -> dims[1] -> … -> dims.last()` with ReLU between
/// layers and optional BatchNorm after each hidden linear layer.
pub fn mlp(dims: &[usize], batch_norm: bool, rng: &mut Rng) -> Network {
    assert!(dims.len() >= 2, "mlp needs at least input and output dims");
    let mut layers = Vec::new();
    for w in 0..dims.len() - 1 {
        layers.push(Layer::Linear(Linear::new(dims[w], dims[w + 1], rng)));
        let is_last = w == dims.len() - 2;
        if !is_last {
            if batch_norm {
                layers.push(Layer::BatchNorm(BatchNorm::new(dims[w + 1])));
            }
            layers.push(Layer::Relu);
        }
    }
    Network::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcasgd_autograd::Graph;
    use lcasgd_tensor::Tensor;

    #[test]
    fn layer_structure() {
        let mut rng = Rng::seed_from_u64(131);
        let net = mlp(&[4, 8, 8, 2], true, &mut rng);
        // 3 linear + 2 bn + 2 relu
        assert_eq!(net.layers.len(), 7);
        assert_eq!(net.num_bn_layers(), 2);
        let net2 = mlp(&[4, 8, 2], false, &mut rng);
        assert_eq!(net2.layers.len(), 3);
    }

    #[test]
    fn forward_shape() {
        let mut rng = Rng::seed_from_u64(132);
        let net = mlp(&[5, 16, 3], true, &mut rng);
        let mut g = Graph::new();
        let (y, _) = net.forward(&mut g, Tensor::zeros(&[7, 5]), true);
        assert_eq!(g.value(y).dims(), &[7, 3]);
    }

    #[test]
    fn learns_xor() {
        let mut rng = Rng::seed_from_u64(133);
        let mut net = mlp(&[2, 16, 2], false, &mut rng);
        let x = Tensor::from_vec(vec![0., 0., 0., 1., 1., 0., 1., 1.], &[4, 2]);
        let labels = [0usize, 1, 1, 0];
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut g = Graph::new();
            let (logits, ctx) = net.forward(&mut g, x.clone(), true);
            let loss = g.softmax_cross_entropy(logits, &labels);
            g.backward(loss);
            last = g.value(loss).item();
            let grads = net.flat_grads(&mut g, &ctx);
            net.axpy_params(&grads, -0.5);
        }
        assert!(last < 0.05, "xor loss {last}");
        // Check predictions.
        let mut g = Graph::new();
        let (logits, _) = net.forward(&mut g, x, true);
        assert_eq!(g.value(logits).argmax_rows(), vec![0, 1, 1, 0]);
    }
}
