//! Classification metrics: error rate (the paper's y-axis everywhere).

use crate::network::Network;
use lcasgd_autograd::Graph;
use lcasgd_tensor::Tensor;

/// Fraction of rows whose argmax logit disagrees with the label.
pub fn error_rate(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.dims()[0], labels.len(), "batch/label mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let wrong = preds.iter().zip(labels).filter(|(p, l)| p != l).count();
    wrong as f32 / labels.len() as f32
}

/// Evaluates a network on `(inputs, labels)` in inference mode, in
/// mini-batches, returning `(error rate, mean loss)`.
pub fn evaluate(net: &Network, inputs: &Tensor, labels: &[usize], batch: usize) -> (f32, f32) {
    let n = labels.len();
    assert_eq!(inputs.dims()[0], n);
    let mut wrong = 0usize;
    let mut loss_sum = 0.0f64;
    let mut batches = 0usize;
    let mut start = 0;
    while start < n {
        let end = (start + batch).min(n);
        let rows: Vec<usize> = (start..end).collect();
        let xb = inputs.gather_rows(&rows);
        let yb = &labels[start..end];
        let mut g = Graph::new();
        let (logits, _) = net.forward(&mut g, xb, false);
        let loss = g.softmax_cross_entropy(logits, yb);
        loss_sum += g.value(loss).item() as f64;
        batches += 1;
        let preds = g.value(logits).argmax_rows();
        wrong += preds.iter().zip(yb).filter(|(p, l)| p != l).count();
        start = end;
    }
    (wrong as f32 / n as f32, (loss_sum / batches.max(1) as f64) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::mlp;
    use lcasgd_tensor::Rng;

    #[test]
    fn error_rate_counts_mismatches() {
        let logits = Tensor::from_vec(vec![1., 0., 0., 1., 1., 0.], &[3, 2]);
        // preds: 0, 1, 0
        assert!((error_rate(&logits, &[0, 1, 1]) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(error_rate(&logits, &[0, 1, 0]), 0.0);
        assert_eq!(error_rate(&logits, &[1, 0, 1]), 1.0);
    }

    #[test]
    fn evaluate_runs_batched() {
        let mut rng = Rng::seed_from_u64(141);
        let net = mlp(&[3, 8, 2], true, &mut rng);
        let x = Tensor::randn(&[10, 3], 1.0, &mut rng);
        let labels: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let (err_small_batch, loss1) = evaluate(&net, &x, &labels, 3);
        let (err_full_batch, _) = evaluate(&net, &x, &labels, 10);
        assert!((err_small_batch - err_full_batch).abs() < 1e-6, "batching must not change error");
        assert!(loss1.is_finite());
    }
}
