//! Model checkpointing: a minimal, versioned binary format for a
//! network's flat parameters plus its BatchNorm running state.
//!
//! Long distributed runs need restartability; the format is deliberately
//! architecture-agnostic — it stores only the flat weight vector and BN
//! statistics, and loading validates the element counts against the
//! receiving network.

use crate::network::{BnState, Network};
use lcasgd_tensor::Tensor;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"LCCKPT01";

/// Writes a length-prefixed little-endian f32 slice (the primitive every
/// LC-ASGD on-disk format builds on; also used by the full training
/// checkpoint in lcasgd-core).
pub fn write_f32s(w: &mut impl Write, xs: &[f32]) -> io::Result<()> {
    w.write_all(&(xs.len() as u64).to_le_bytes())?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a slice written by [`write_f32s`], with a sanity cap against
/// corrupted length headers.
pub fn read_f32s(r: &mut impl Read) -> io::Result<Vec<f32>> {
    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let len = u64::from_le_bytes(len8) as usize;
    // Sanity cap (16 GiB of f32s) against corrupted headers.
    if len > (1 << 32) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible tensor length"));
    }
    let mut out = Vec::with_capacity(len);
    let mut b4 = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut b4)?;
        out.push(f32::from_le_bytes(b4));
    }
    Ok(out)
}

/// A serialized model snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    pub params: Vec<f32>,
    pub bn: BnState,
}

impl Checkpoint {
    /// Snapshots a network.
    pub fn capture(net: &Network) -> Self {
        Checkpoint { params: net.flat_params(), bn: net.bn_state() }
    }

    /// Installs the snapshot into an architecture-compatible network.
    /// Panics (with the length mismatch) on incompatible architectures.
    pub fn restore(&self, net: &mut Network) {
        net.set_flat_params(&self.params);
        net.set_bn_state(&self.bn);
    }

    /// Writes the snapshot to a writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_f32s(w, &self.params)?;
        w.write_all(&(self.bn.means.len() as u64).to_le_bytes())?;
        for (mean, var) in self.bn.means.iter().zip(&self.bn.vars) {
            write_f32s(w, mean.data())?;
            write_f32s(w, var.data())?;
        }
        Ok(())
    }

    /// Reads a snapshot from a reader, validating the magic header.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an LC-ASGD checkpoint"));
        }
        let params = read_f32s(r)?;
        let mut len8 = [0u8; 8];
        r.read_exact(&mut len8)?;
        let layers = u64::from_le_bytes(len8) as usize;
        if layers > (1 << 24) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible BN layer count"));
        }
        let mut bn = BnState::default();
        for _ in 0..layers {
            let mean = read_f32s(r)?;
            let var = read_f32s(r)?;
            if mean.len() != var.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "BN mean/var length mismatch",
                ));
            }
            let c = mean.len();
            bn.means.push(Tensor::from_vec(mean, &[c]));
            bn.vars.push(Tensor::from_vec(var, &[c]));
        }
        Ok(Checkpoint { params, bn })
    }

    /// Atomically and durably saves to a file: writes a `<path>.tmp`
    /// sibling, fsyncs it, renames over the destination, and fsyncs the
    /// parent directory so a host crash cannot leave a truncated
    /// "committed" checkpoint.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut w = BufWriter::new(File::create(&tmp)?);
        self.write_to(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        drop(w);
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            File::open(dir)?.sync_all()?;
        }
        Ok(())
    }

    /// Loads from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::read_from(&mut BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::mlp;
    use lcasgd_tensor::Rng;

    #[test]
    fn roundtrip_through_memory() {
        let mut rng = Rng::seed_from_u64(151);
        let net = mlp(&[4, 8, 3], true, &mut rng);
        let ck = Checkpoint::capture(&net);
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn restore_transfers_weights_and_bn() {
        let mut rng = Rng::seed_from_u64(152);
        let net_a = mlp(&[4, 8, 3], true, &mut rng);
        let mut net_b = mlp(&[4, 8, 3], true, &mut rng); // different init
        assert_ne!(net_a.flat_params(), net_b.flat_params());
        Checkpoint::capture(&net_a).restore(&mut net_b);
        assert_eq!(net_a.flat_params(), net_b.flat_params());
        assert_eq!(net_a.bn_state(), net_b.bn_state());
    }

    #[test]
    fn rejects_garbage() {
        let garbage = b"definitely not a checkpoint";
        assert!(Checkpoint::read_from(&mut &garbage[..]).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let mut rng = Rng::seed_from_u64(153);
        let net = mlp(&[4, 8, 3], false, &mut rng);
        let mut buf = Vec::new();
        Checkpoint::capture(&net).write_to(&mut buf).unwrap();
        let cut = &buf[..buf.len() / 2];
        assert!(Checkpoint::read_from(&mut &cut[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = Rng::seed_from_u64(154);
        let net = mlp(&[5, 6, 2], true, &mut rng);
        let ck = Checkpoint::capture(&net);
        let path = std::env::temp_dir().join("lcasgd_ckpt_test.bin");
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, ck);
    }
}
