//! SGD with momentum over flat parameter vectors, plus the step learning-
//! rate schedule the paper uses ("an initial learning rate of 0.3 … divided
//! by ten after 80 and 120 epochs").

/// Piecewise-constant learning-rate schedule: `base` divided by `factor`
/// at each milestone epoch.
#[derive(Clone, Debug)]
pub struct LrSchedule {
    pub base: f32,
    pub milestones: Vec<usize>,
    pub factor: f32,
}

impl LrSchedule {
    /// Constant learning rate.
    pub fn constant(base: f32) -> Self {
        LrSchedule { base, milestones: Vec::new(), factor: 1.0 }
    }

    /// The paper's CIFAR-10 schedule scaled to `epochs` total: /10 at 50%
    /// and 75% of training (80/160 and 120/160).
    pub fn paper_step(base: f32, epochs: usize) -> Self {
        LrSchedule { base, milestones: vec![epochs / 2, epochs * 3 / 4], factor: 10.0 }
    }

    /// Learning rate at the given epoch.
    pub fn at_epoch(&self, epoch: usize) -> f32 {
        let drops = self.milestones.iter().filter(|&&m| epoch >= m).count() as i32;
        self.base / self.factor.powi(drops)
    }
}

/// SGD with classical momentum over a flat parameter buffer.
///
/// The parameter server's weight update (paper Formula 8) is plain SGD
/// (`momentum = 0`); the sequential-SGD baseline uses momentum 0.9 like
/// the ResNet recipe.
pub struct Sgd {
    pub momentum: f32,
    pub weight_decay: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Optimizer for `n` parameters.
    pub fn new(n: usize, momentum: f32, weight_decay: f32) -> Self {
        Sgd { momentum, weight_decay, velocity: vec![0.0; n] }
    }

    /// Applies one update: `v = µv + g + wd·p ; p -= lr·v`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        assert_eq!(params.len(), self.velocity.len(), "optimizer sized for different model");
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            let g = g + self.weight_decay * *p;
            *v = self.momentum * *v + g;
            *p -= lr * *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_drops_at_milestones() {
        let s = LrSchedule { base: 0.3, milestones: vec![80, 120], factor: 10.0 };
        assert!((s.at_epoch(0) - 0.3).abs() < 1e-7);
        assert!((s.at_epoch(79) - 0.3).abs() < 1e-7);
        assert!((s.at_epoch(80) - 0.03).abs() < 1e-7);
        assert!((s.at_epoch(120) - 0.003).abs() < 1e-7);
        assert!((s.at_epoch(159) - 0.003).abs() < 1e-7);
    }

    #[test]
    fn paper_step_scales_milestones() {
        let s = LrSchedule::paper_step(0.3, 40);
        assert_eq!(s.milestones, vec![20, 30]);
    }

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(2, 0.0, 0.0);
        let mut p = vec![1.0, 2.0];
        opt.step(&mut p, &[0.5, -0.5], 0.1);
        assert!((p[0] - 0.95).abs() < 1e-7);
        assert!((p[1] - 2.05).abs() < 1e-7);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(1, 0.9, 0.0);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0], 1.0); // v=1, p=-1
        opt.step(&mut p, &[1.0], 1.0); // v=1.9, p=-2.9
        assert!((p[0] + 2.9).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_pulls_to_zero() {
        let mut opt = Sgd::new(1, 0.0, 0.1);
        let mut p = vec![10.0];
        opt.step(&mut p, &[0.0], 1.0);
        assert!((p[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn quadratic_converges() {
        // minimize f(p) = (p-3)^2 with momentum SGD
        let mut opt = Sgd::new(1, 0.9, 0.0);
        let mut p = vec![0.0f32];
        for _ in 0..200 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(&mut p, &[g], 0.05);
        }
        assert!((p[0] - 3.0).abs() < 1e-3, "p={}", p[0]);
    }
}

/// Adam over a flat parameter buffer — the adaptive option for the online
/// LSTM predictors (whose loss-series inputs are non-stationary; Adam's
/// per-parameter scaling is the standard remedy).
pub struct Adam {
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Optimizer for `n` parameters with the canonical (0.9, 0.999) betas.
    pub fn new(n: usize) -> Self {
        Adam { beta1: 0.9, beta2: 0.999, eps: 1e-8, m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }

    /// One bias-corrected Adam update.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        assert_eq!(params.len(), self.m.len(), "optimizer sized for different model");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, &g), m), v) in params.iter_mut().zip(grads).zip(&mut self.m).zip(&mut self.v) {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod adam_tests {
    use super::*;

    #[test]
    fn quadratic_converges_fast() {
        let mut opt = Adam::new(1);
        let mut p = vec![10.0f32];
        for _ in 0..500 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(&mut p, &[g], 0.1);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "p = {}", p[0]);
    }

    #[test]
    fn step_size_is_scale_invariant() {
        // Adam's signature property: the first-step size is ~lr regardless
        // of gradient magnitude.
        for scale in [1e-3f32, 1.0, 1e3] {
            let mut opt = Adam::new(1);
            let mut p = vec![0.0f32];
            opt.step(&mut p, &[scale], 0.01);
            assert!((p[0] + 0.01).abs() < 1e-3, "scale {scale}: step {}", p[0]);
        }
    }

    #[test]
    fn ill_conditioned_beats_plain_sgd() {
        // f(x, y) = x² + 1000·y²: plain SGD with a stable lr crawls on x;
        // Adam equalizes the directions.
        let grad = |p: &[f32]| vec![2.0 * p[0], 2000.0 * p[1]];
        let mut adam = Adam::new(2);
        let mut pa = vec![5.0f32, 5.0];
        let mut sgd = Sgd::new(2, 0.0, 0.0);
        let mut ps = vec![5.0f32, 5.0];
        for _ in 0..300 {
            let ga = grad(&pa);
            adam.step(&mut pa, &ga, 0.05);
            let gs = grad(&ps);
            sgd.step(&mut ps, &gs, 0.0009); // near the stability limit
        }
        let fa = pa[0] * pa[0] + 1000.0 * pa[1] * pa[1];
        let fs = ps[0] * ps[0] + 1000.0 * ps[1] * ps[1];
        assert!(fa < fs, "adam {fa} vs sgd {fs}");
    }
}
