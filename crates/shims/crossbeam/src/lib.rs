//! In-workspace stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided — the workspace uses crossbeam
//! solely for MPSC channels with disconnect semantics. Backed by
//! `std::sync::mpsc`, whose `Sender` has been `Sync` since Rust 1.72, so
//! the sharing patterns crossbeam permits work unchanged.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of a channel.
    pub struct Sender<T>(Flavor<T>);

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Unbounded(s) => Flavor::Unbounded(s.clone()),
                Flavor::Bounded(s) => Flavor::Bounded(s.clone()),
            })
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// The message could not be delivered: every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like crossbeam, printable regardless of whether `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Nonblocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Timed receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded channel (capacity 0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full. Errors when
        /// all receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Flavor::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Nonblocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocking iterator over incoming messages; ends at disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_reply_channel_pattern() {
        let (tx, rx) = bounded(1);
        tx.send("reply").unwrap();
        assert_eq!(rx.recv(), Ok("reply"));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Disconnected);
    }

    #[test]
    fn cross_thread_fanin() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(w * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut count = 0;
            while rx.recv().is_ok() {
                count += 1;
            }
            assert_eq!(count, 400);
        });
    }
}
