//! In-workspace stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` block macro, range and `any::<T>()` strategies,
//! `prop::collection::vec`, and the `prop_assert*` macros. Inputs are
//! drawn from a deterministic PRNG seeded from the test name, so runs
//! are reproducible; shrinking is not implemented — failures report the
//! full generated input set instead.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Failure raised by `prop_assert!`-style macros inside a case body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic source of test inputs.
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        /// Seeds from the test name so each property gets an independent
        /// but reproducible stream.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            use rand::SeedableRng;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(h ^ (case as u64) << 32 ^ case as u64))
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i64, f32, f64);

/// Marker for types generatable by `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty => $f:expr),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                #[allow(clippy::redundant_closure_call)]
                ($f)(rng)
            }
        }
    )*};
}

impl_arbitrary_uniform!(
    bool => |r: &mut TestRng| { use rand::Rng as _; r.0.gen::<bool>() },
    u64 => |r: &mut TestRng| { use rand::Rng as _; r.0.gen::<u64>() },
    u32 => |r: &mut TestRng| { use rand::RngCore as _; r.0.next_u32() },
    u8 => |r: &mut TestRng| { use rand::RngCore as _; (r.0.next_u32() & 0xff) as u8 },
    usize => |r: &mut TestRng| { use rand::RngCore as _; r.0.next_u64() as usize },
    f32 => |r: &mut TestRng| { use rand::Rng as _; r.0.gen::<f32>() },
    f64 => |r: &mut TestRng| { use rand::Rng as _; r.0.gen::<f64>() }
);

/// Strategy produced by [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Uniform strategy over the whole domain of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// Strategy produced by a single constant (`Just` in real proptest).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a half-open `usize` range or an
    /// exact count. A dedicated conversion target (rather than a generic
    /// `Strategy<Value = usize>`) so bare literals like `0..3` infer as
    /// `usize`, matching real proptest's `Into<SizeRange>` signature.
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy producing `Vec`s with range-drawn length.
    pub struct VecStrategy<E> {
        element: E,
        len: SizeRange,
    }

    pub fn vec<E: Strategy>(element: E, len: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy { element, len: len.into() }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let n = self.len.0.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::` namespace mirroring real proptest's prelude re-export.
pub mod prop {
    pub use crate::collection;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome = {
                    $(let $arg = $arg.clone();)+
                    let mut run = move ||
                        -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    run()
                };
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        format!(
                            concat!($(stringify!($arg), " = {:?}; "),+),
                            $($arg),+
                        ),
                    );
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            x in 0.1f32..3.0,
            n in 1usize..12,
            k in 1u8..=100,
        ) {
            prop_assert!((0.1..3.0).contains(&x));
            prop_assert!((1..12).contains(&n));
            prop_assert!((1..=100).contains(&k));
        }

        #[test]
        fn vec_strategy_obeys_len_and_element_ranges(
            v in prop::collection::vec(1usize..12, 0..5),
            flag in any::<bool>(),
            seed in any::<u64>(),
        ) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&e| (1..12).contains(&e)));
            // trivially true; exercises the macro plumbing for these types
            prop_assert!(flag || !flag);
            prop_assert_eq!(seed, seed);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let s = 0u64..u64::MAX;
        let a = s.sample(&mut TestRng::for_case("abc", 3));
        let b = s.sample(&mut TestRng::for_case("abc", 3));
        let c = s.sample(&mut TestRng::for_case("abd", 3));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u8..=10) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
