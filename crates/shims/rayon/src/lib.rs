//! In-workspace stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the slice-parallelism subset the tensor kernels use —
//! `par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut` with the
//! `zip`/`enumerate`/`for_each` adapters — over `std::thread::scope`.
//!
//! The model is rayon's *indexed* parallel iterator: every producer knows
//! its length and can hand out the item at index `i`; disjointness of
//! mutable items is guaranteed by construction (distinct indices map to
//! non-overlapping slice regions). Work is split into one contiguous index
//! band per thread — the callers already chunk at coarse granularity
//! (bands of matmul rows, whole images), so band splitting loses nothing
//! to rayon's work stealing at this workspace's sizes.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations fan out to.
///
/// Defaults to the machine's available parallelism (overridable with the
/// `RAYON_NUM_THREADS` environment variable, like real rayon). A
/// [`with_num_threads`] scope on the current thread takes precedence —
/// that is how the determinism tests run the same kernel at 1 and N
/// threads within one process.
pub fn current_num_threads() -> usize {
    let forced = THREAD_OVERRIDE.with(|c| c.get());
    if forced > 0 {
        return forced;
    }
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Runs `f` with [`current_num_threads`] pinned to `n` on the current
/// thread (worker threads spawned *inside* the scope still see the global
/// count, but fan-out decisions are made by the calling thread, which is
/// what matters). The previous override is restored on exit, including on
/// panic.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n > 0, "thread count must be positive");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(THREAD_OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// An indexed source of independent items.
///
/// # Safety contract (internal)
/// `get(i)` must be safe to call concurrently from multiple threads as
/// long as each index in `0..len()` is requested **at most once** across
/// the whole iteration — producers of `&mut` items rely on this to hand
/// out aliasing-free references.
pub trait IndexedParallelIterator: Sized + Sync {
    type Item;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// # Safety
    /// Each index may be claimed at most once per iteration (see the trait
    /// docs); callers must stay within `0..len()`.
    unsafe fn get(&self, i: usize) -> Self::Item;

    /// Pairs this iterator with another, truncating to the shorter.
    fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attaches the item index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Consumes every item, in parallel when the pool has >1 thread.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let n = self.len();
        let threads = current_num_threads().min(n);
        if threads <= 1 {
            for i in 0..n {
                // SAFETY: single-threaded pass touches each index once.
                f(unsafe { self.get(i) });
            }
            return;
        }
        let iter = &self;
        let f = &f;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let lo = t * n / threads;
                let hi = (t + 1) * n / threads;
                scope.spawn(move || {
                    for i in lo..hi {
                        // SAFETY: bands are disjoint, so each index is
                        // claimed exactly once across all threads.
                        f(unsafe { iter.get(i) });
                    }
                });
            }
        });
    }
}

/// Shared-slice producer (`par_iter`).
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn get(&self, i: usize) -> &'a T {
        self.slice.get_unchecked(i)
    }
}

/// Mutable-slice producer (`par_iter_mut`).
pub struct ParIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: distinct indices yield references to distinct elements, so
// sharing the producer across threads is sound when `T: Send`.
unsafe impl<T: Send> Sync for ParIterMut<'_, T> {}

impl<'a, T: Send> IndexedParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn get(&self, i: usize) -> &'a mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

/// Shared-chunks producer (`par_chunks`).
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> IndexedParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    unsafe fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.chunk;
        let hi = (lo + self.chunk).min(self.slice.len());
        self.slice.get_unchecked(lo..hi)
    }
}

/// Mutable-chunks producer (`par_chunks_mut`).
pub struct ParChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: chunks at distinct indices cover disjoint index ranges.
unsafe impl<T: Send> Sync for ParChunksMut<'_, T> {}

impl<'a, T: Send> IndexedParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.chunk;
        let hi = (lo + self.chunk).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

/// `zip` adapter.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedParallelIterator, B: IndexedParallelIterator> IndexedParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    unsafe fn get(&self, i: usize) -> Self::Item {
        (self.a.get(i), self.b.get(i))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<A> {
    inner: A,
}

impl<A: IndexedParallelIterator> IndexedParallelIterator for Enumerate<A> {
    type Item = (usize, A::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    unsafe fn get(&self, i: usize) -> Self::Item {
        (i, self.inner.get(i))
    }
}

/// Slice extension methods mirroring `rayon::slice::ParallelSlice*`.
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParIter<'_, T>;
    fn par_chunks(&self, chunk: usize) -> ParChunks<'_, T>;
}

pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }

    fn par_chunks(&self, chunk: usize) -> ParChunks<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ParChunks { slice: self, chunk }
    }
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { ptr: self.as_mut_ptr(), len: self.len(), _marker: std::marker::PhantomData }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ParChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk,
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod prelude {
    pub use crate::{IndexedParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_touches_every_element_once() {
        let mut v = vec![0u64; 10_000];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn zip_of_mut_and_shared() {
        let mut a = vec![0f32; 4096];
        let b: Vec<f32> = (0..4096).map(|i| i as f32).collect();
        a.par_iter_mut().zip(b.par_iter()).for_each(|(x, &y)| *x = 2.0 * y);
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(x, 2.0 * i as f32);
        }
    }

    #[test]
    fn chunks_mut_enumerate_disjoint_and_complete() {
        let mut v = vec![0usize; 1003]; // non-multiple of chunk size
        v.par_chunks_mut(100).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[1002], 11); // 11th chunk holds the 3-element tail
    }

    #[test]
    fn chunks_zip_chunks_matches_sequential() {
        let a: Vec<f32> = (0..900).map(|i| i as f32).collect();
        let mut out = vec![0f32; 900];
        out.par_chunks_mut(64).zip(a.par_chunks(64)).for_each(|(o, src)| {
            for (x, &y) in o.iter_mut().zip(src) {
                *x = y * y;
            }
        });
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, (i * i) as f32);
        }
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut v: Vec<u8> = Vec::new();
        v.par_iter_mut().for_each(|_| unreachable!());
        let w: Vec<u8> = Vec::new();
        w.par_iter().for_each(|_| unreachable!());
    }

    #[test]
    fn thread_count_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn with_num_threads_overrides_and_restores() {
        let outer = super::current_num_threads();
        let inner = super::with_num_threads(7, || {
            // Nesting: innermost override wins, then unwinds.
            assert_eq!(super::with_num_threads(3, super::current_num_threads), 3);
            super::current_num_threads()
        });
        assert_eq!(inner, 7);
        assert_eq!(super::current_num_threads(), outer);
    }

    #[test]
    fn forced_fanout_still_covers_all_elements() {
        let mut v = vec![0u32; 1000];
        super::with_num_threads(8, || {
            v.par_iter_mut().for_each(|x| *x += 1);
        });
        assert!(v.iter().all(|&x| x == 1));
    }
}
