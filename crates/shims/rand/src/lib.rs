//! In-workspace stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *tiny* slice of `rand` 0.8's API it actually consumes:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `RngCore::next_u64`, and
//! the `Rng` extension methods `gen::<f64>()` / `gen_range(0..n)`.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — not the ChaCha12
//! generator real `rand` uses, so seeded *streams differ* from upstream
//! `rand`, but every consumer in this workspace only relies on determinism
//! and statistical quality, both of which xoshiro256** provides.

/// Core random-number-generator interface (the subset the workspace uses).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw generator output.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (`gen_range` argument).
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer in `[0, n)` via Lemire's multiply-shift with rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // Scale a [0,1) sample to [lo, hi]; the closed upper bound
                // is reachable only up to rounding, as in rand itself.
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Extension methods available on every generator (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s full "standard" distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng as _, RngCore, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.gen_range(0usize..7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_range_inclusive() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.gen_range(2u8..=8);
            assert!((2..=8).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut r = StdRng::seed_from_u64(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
