//! In-workspace stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's API shape: `lock()`
//! returns the guard directly (poisoning is absorbed — a panicked holder
//! does not poison the lock for everyone else, matching parking_lot).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
