//! In-workspace stand-in for `criterion`.
//!
//! Provides the harness surface the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a plain
//! wall-clock timer: a warmup pass, then `sample_size` timed samples with
//! mean/min reported to stdout. No statistical analysis or HTML reports.

use std::time::{Duration, Instant};

/// How batched inputs are grouped per timing sample. All variants behave
/// identically here: one setup per routine invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (report flushing happens per-benchmark here).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warmup sample, then the timed ones.
    let mut warmup = Bencher { elapsed: Duration::ZERO };
    f(&mut warmup);
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..sample_size {
        let mut b = Bencher { elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        min = min.min(b.elapsed);
    }
    let mean = total / sample_size as u32;
    println!("bench {id:<48} mean {mean:>12.3?}   min {min:>12.3?}   samples {sample_size}");
}

/// Passed to each benchmark closure; owns the timing of one sample.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

/// Re-export matching criterion's own `black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target_iter(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_function(format!("sum_{}", 2), |b| b.iter(|| (0..2000u64).sum::<u64>()));
        g.finish();
    }

    fn target_batched(c: &mut Criterion) {
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |mut v| { v[0] = 2; v }, BatchSize::SmallInput)
        });
    }

    criterion_group!(plain, target_iter, target_batched);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = target_iter
    }

    #[test]
    fn groups_run_to_completion() {
        plain();
        configured();
    }
}
