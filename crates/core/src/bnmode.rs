//! Batch-normalization statistic handling at the parameter server
//! (paper §5.3).

/// How the parameter server maintains global BN running statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BnMode {
    /// Regular BN: "the parameter server replaces the mean and variance of
    /// all BN layers using the parameter values received from the latest
    /// worker" — whichever worker pushed last wins.
    Regular,
    /// The paper's Async-BN: the server *accumulates* every worker's batch
    /// statistics into a global EMA (Formulas 6–7 with momentum `d`), so
    /// the statistics workers pull are consistent across workers.
    Async,
}

impl BnMode {
    /// Display name matching Table 1's column headers.
    pub fn name(self) -> &'static str {
        match self {
            BnMode::Regular => "BN",
            BnMode::Async => "Async-BN",
        }
    }
}

impl std::fmt::Display for BnMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_headers() {
        assert_eq!(BnMode::Regular.name(), "BN");
        assert_eq!(BnMode::Async.name(), "Async-BN");
    }
}
