//! The five training algorithms under comparison.

use std::fmt;

/// Distributed (or sequential) training algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sequential single-machine SGD — the accuracy baseline.
    Sgd,
    /// Synchronous distributed SGD (Formula 1): barrier each round,
    /// gradients averaged; effective batch grows with M.
    Ssgd,
    /// Asynchronous SGD (Formula 2): no barrier, stale gradients applied
    /// as they arrive.
    Asgd,
    /// Delay-compensated ASGD (Zheng et al., Formula 3): first-order
    /// Hessian approximation `λ·g⊙g⊙(w_t − w_bak)`.
    DcAsgd,
    /// The paper's contribution: ASGD with loss-prediction-based
    /// compensation via the loss and step predictors.
    LcAsgd,
}

impl Algorithm {
    /// All five algorithms in the paper's presentation order.
    pub const ALL: [Algorithm; 5] =
        [Algorithm::Sgd, Algorithm::Ssgd, Algorithm::Asgd, Algorithm::DcAsgd, Algorithm::LcAsgd];

    /// The four distributed ones (ImageNet experiments skip sequential SGD).
    pub const DISTRIBUTED: [Algorithm; 4] =
        [Algorithm::Ssgd, Algorithm::Asgd, Algorithm::DcAsgd, Algorithm::LcAsgd];

    /// Whether this algorithm runs on the cluster (vs a single machine).
    pub fn is_distributed(self) -> bool {
        !matches!(self, Algorithm::Sgd)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Sgd => "SGD",
            Algorithm::Ssgd => "SSGD",
            Algorithm::Asgd => "ASGD",
            Algorithm::DcAsgd => "DC-ASGD",
            Algorithm::LcAsgd => "LC-ASGD",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Algorithm::LcAsgd.to_string(), "LC-ASGD");
        assert_eq!(Algorithm::DcAsgd.to_string(), "DC-ASGD");
    }

    #[test]
    fn distribution_flags() {
        assert!(!Algorithm::Sgd.is_distributed());
        for a in Algorithm::DISTRIBUTED {
            assert!(a.is_distributed());
        }
        assert_eq!(Algorithm::ALL.len(), 5);
    }
}
