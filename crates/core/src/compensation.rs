//! The three readings of the paper's Formula 5,
//! `g_m = ∇_{w_t}(ℓ_m + λ·ℓ_delay)`.
//!
//! `ℓ_delay` is a *scalar* sent by the server (the summed loss predictions
//! for the next `k_m` steps, Formula 9). Read literally, the gradient of a
//! constant is zero, so the formula is a no-op in any reverse-mode
//! framework — the paper does not say how the scalar enters the backward
//! pass. We therefore implement the plausible interpretations and expose
//! them as an ablation (see DESIGN.md §1 and the `ablation_compensation`
//! bench):
//!
//! * [`CompensationMode::Literal`] — treat the compensated scalar as a
//!   rescaled loss: seed the backward pass with
//!   `(ℓ_m + λ·ℓ_delay)/ℓ_m` instead of 1. This is the only way the
//!   formula as written changes anything.
//! * [`CompensationMode::Relative`] — staleness damping (default): scale
//!   the gradient by `1 + λ·(ℓ̄_pred − ℓ̂₁)/(|ℓ̂₁| + ε)`, clamped to
//!   `[0.1, 1]`. `ℓ̄_pred = ℓ_delay/k_m` is the predicted *mean* future
//!   loss and `ℓ̂₁` the predictor's one-step forecast (a smoothed stand-in
//!   for the noisy batch loss). If the predictor says the global loss
//!   will have dropped by the time this gradient lands, the (stale)
//!   gradient is damped toward zero; it is never amplified. This matches
//!   the paper's stated intent ("allows workers to use more accurate loss
//!   values to compute the gradients") and is what reproduces the paper's
//!   qualitative results.
//! * [`CompensationMode::Off`] — no compensation (reduces LC-ASGD to ASGD
//!   plus predictors; the control arm).

/// How a worker folds the server's predicted `ℓ_delay` into its backward
/// pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompensationMode {
    Literal,
    Relative,
    Off,
}

impl CompensationMode {
    /// Backward-seed multiplier for a worker whose measured loss is
    /// `loss`, with predicted summed future loss `l_delay` over `k` steps,
    /// the predictor's one-step forecast `one_step`, and compensation
    /// strength `lambda`.
    ///
    /// Returns the factor the gradient is scaled by (1.0 = plain ASGD).
    pub fn seed(self, loss: f32, l_delay: f32, one_step: f32, k: usize, lambda: f32) -> f32 {
        const EPS: f32 = 1e-6;
        const LO: f32 = 0.1;
        const HI: f32 = 3.0;
        match self {
            CompensationMode::Off => 1.0,
            CompensationMode::Literal => {
                if loss.abs() < EPS {
                    1.0
                } else {
                    ((loss + lambda * l_delay) / loss).clamp(LO, HI)
                }
            }
            CompensationMode::Relative => {
                if k == 0 {
                    return 1.0;
                }
                // Predicted progress over the staleness window, measured
                // against the predictor's *own* one-step forecast rather
                // than the raw batch loss — individual batch losses are
                // noisy and would turn the correction into random
                // per-batch re-weighting.
                let mean_pred = l_delay / k as f32;
                // Damping only: a stale gradient is never *amplified* —
                // the correction accounts for progress the model is
                // predicted to make while the gradient is in flight, and
                // that can only reduce the gradient's validity. The upper
                // clamp at 1.0 also keeps predictor noise from acting as a
                // random learning-rate boost at high staleness.
                (1.0 + lambda * (mean_pred - one_step) / (one_step.abs() + EPS)).clamp(LO, 1.0)
            }
        }
    }

    /// Display name for benches/ablation tables.
    pub fn name(self) -> &'static str {
        match self {
            CompensationMode::Literal => "literal",
            CompensationMode::Relative => "relative",
            CompensationMode::Off => "off",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_identity() {
        assert_eq!(CompensationMode::Off.seed(2.0, 10.0, 2.0, 5, 0.5), 1.0);
    }

    #[test]
    fn literal_scales_by_compensated_ratio() {
        // (2 + 0.1·4) / 2 = 1.2
        let s = CompensationMode::Literal.seed(2.0, 4.0, 2.0, 2, 0.1);
        assert!((s - 1.2).abs() < 1e-6);
    }

    #[test]
    fn literal_handles_zero_loss() {
        assert_eq!(CompensationMode::Literal.seed(0.0, 4.0, 2.0, 2, 0.1), 1.0);
    }

    #[test]
    fn relative_damps_when_future_improves() {
        // predicted mean future loss 1.0 < one-step forecast 2.0 → factor < 1
        let s = CompensationMode::Relative.seed(2.0, 2.0, 2.0, 2, 0.5);
        assert!(s < 1.0, "expected damping, got {s}");
        assert!(s >= 0.1);
    }

    #[test]
    fn relative_never_amplifies() {
        // Even when the predicted future loss exceeds the current one the
        // factor caps at 1.0 (damping-only correction).
        let s = CompensationMode::Relative.seed(2.0, 6.0, 2.0, 2, 0.5);
        assert!((s - 1.0).abs() < 1e-6, "expected cap at 1.0, got {s}");
    }

    #[test]
    fn relative_zero_steps_is_identity() {
        assert_eq!(CompensationMode::Relative.seed(2.0, 0.0, 2.0, 0, 0.5), 1.0);
    }

    #[test]
    fn seeds_are_clamped() {
        let s = CompensationMode::Literal.seed(0.001, 1000.0, 0.001, 1, 1.0);
        assert!(s <= 3.0);
        let s = CompensationMode::Relative.seed(5.0, 0.0, 5.0, 10, 100.0);
        assert!(s >= 0.1);
    }
}
