//! Parameter-server sharding: the flat weight vector split into N
//! contiguous ranges, each owned by its own [`ParameterServer`] with an
//! independent version counter.
//!
//! The split is *coordinator-free*: workers fan each pull/push out to the
//! owning shards over their single ordered link, so no extra process or
//! routing table exists. Because every push carries a slice for **every**
//! shard and the slices of one push are applied together, the per-shard
//! version counters advance in lockstep — shard 0 (the *lead* shard)
//! therefore also carries the merged bookkeeping that is global to the
//! model: the `iter` arrival log feeding the LC-ASGD step predictor, and
//! the BN running statistics. See DESIGN.md §11.

use crate::bnmode::BnMode;
use crate::server::ParameterServer;
use lcasgd_autograd::ops::norm::BnBatchStats;
use lcasgd_nn::network::BnState;
use lcasgd_nn::Network;
use std::ops::Range;

/// Partition of a flat weight vector of length `len` into `n` contiguous
/// ranges. Shard `s` owns `range(s)`; the first `len % n` shards are one
/// element longer so the split is as even as possible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// `n + 1` cut points: `bounds[s]..bounds[s + 1]` is shard `s`.
    bounds: Vec<usize>,
}

impl ShardSpec {
    /// Upper bound on the shard count: per-push slice completion is
    /// tracked in a `u64` bitmask, and more shards than this would only
    /// multiply message count without any remaining parallelism to win.
    pub const MAX_SHARDS: usize = 64;

    /// Evenly partitions `len` weights into `n` shards.
    pub fn even(len: usize, n: usize) -> Result<ShardSpec, String> {
        if n == 0 {
            return Err("shard count must be at least 1".into());
        }
        if n > Self::MAX_SHARDS {
            return Err(format!("shard count {n} exceeds the maximum of {}", Self::MAX_SHARDS));
        }
        if len < n {
            return Err(format!("cannot split {len} weights into {n} non-empty shards"));
        }
        let (base, extra) = (len / n, len % n);
        let mut bounds = Vec::with_capacity(n + 1);
        let mut at = 0;
        bounds.push(0);
        for s in 0..n {
            at += base + usize::from(s < extra);
            bounds.push(at);
        }
        Ok(ShardSpec { bounds })
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total weight count across all shards.
    pub fn len(&self) -> usize {
        *self.bounds.last().unwrap()
    }

    /// True when the partition covers zero weights (never produced by
    /// [`ShardSpec::even`], which rejects `len < n`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The index range shard `s` owns within the flat vector.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Borrows shard `s`'s slice of a full-length flat vector.
    pub fn slice<'a>(&self, flat: &'a [f32], s: usize) -> &'a [f32] {
        assert_eq!(flat.len(), self.len(), "flat vector length mismatch");
        &flat[self.range(s)]
    }

    /// Splits a full-length flat vector into owned per-shard slices.
    pub fn split(&self, flat: &[f32]) -> Vec<Vec<f32>> {
        (0..self.count()).map(|s| self.slice(flat, s).to_vec()).collect()
    }

    /// Concatenates per-shard slices back into the full flat vector,
    /// checking every slice against its owning range.
    pub fn assemble(&self, parts: &[Vec<f32>]) -> Vec<f32> {
        assert_eq!(parts.len(), self.count(), "shard count mismatch");
        let mut flat = Vec::with_capacity(self.len());
        for (s, part) in parts.iter().enumerate() {
            assert_eq!(part.len(), self.range(s).len(), "shard {s} slice length mismatch");
            flat.extend_from_slice(part);
        }
        flat
    }
}

/// The sharded parameter server: one [`ParameterServer`] per shard, all
/// behind the single serialized server event loop. Shard 0 is the *lead*
/// shard carrying the merged (model-global) bookkeeping — the arrival log
/// and BN statistics — while every shard keeps its own weights slice and
/// version counter.
pub struct ShardGroup {
    spec: ShardSpec,
    shards: Vec<ParameterServer>,
}

impl ShardGroup {
    /// Builds `n` shards from the canonical network.
    pub fn new(
        net: &Network,
        num_workers: usize,
        bn_mode: BnMode,
        bn_momentum: f32,
        n: usize,
    ) -> Result<ShardGroup, String> {
        let flat = net.flat_params();
        let spec = ShardSpec::even(flat.len(), n)?;
        let shards = (0..n)
            .map(|s| {
                let mut ps = ParameterServer::new(net, num_workers, bn_mode, bn_momentum);
                ps.weights = spec.slice(&flat, s).to_vec();
                ps
            })
            .collect();
        Ok(ShardGroup { spec, shards })
    }

    /// The partition.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`, immutable.
    pub fn shard(&self, s: usize) -> &ParameterServer {
        &self.shards[s]
    }

    /// Shard `s`, mutable.
    pub fn shard_mut(&mut self, s: usize) -> &mut ParameterServer {
        &mut self.shards[s]
    }

    /// The lead shard (shard 0), owner of the merged bookkeeping.
    pub fn lead(&self) -> &ParameterServer {
        &self.shards[0]
    }

    /// The lead shard, mutable.
    pub fn lead_mut(&mut self) -> &mut ParameterServer {
        &mut self.shards[0]
    }

    /// Merged update count: the number of completed pushes. Identical on
    /// every shard (slices of one push are applied together), so the lead
    /// shard's counter is authoritative.
    pub fn version(&self) -> u64 {
        self.shards[0].version
    }

    /// Per-shard version counters, for checkpointing.
    pub fn versions(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.version).collect()
    }

    /// Restores per-shard version counters from a checkpoint.
    pub fn restore_versions(&mut self, versions: &[u64]) -> Result<(), String> {
        if versions.len() != self.shards.len() {
            return Err(format!(
                "checkpoint carries {} shard versions but the run has {} shards",
                versions.len(),
                self.shards.len()
            ));
        }
        for (shard, &v) in self.shards.iter_mut().zip(versions) {
            shard.version = v;
        }
        Ok(())
    }

    /// Assembles the full flat weight vector from the shard slices.
    pub fn assembled_weights(&self) -> Vec<f32> {
        let parts: Vec<&[f32]> = self.shards.iter().map(|s| s.weights.as_slice()).collect();
        let mut flat = Vec::with_capacity(self.spec.len());
        for part in parts {
            flat.extend_from_slice(part);
        }
        flat
    }

    /// Overwrites every shard's slice from a full flat vector (rollback,
    /// checkpoint restore, failover adoption).
    pub fn load_weights(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.spec.len(), "flat vector length mismatch");
        for (s, shard) in self.shards.iter_mut().enumerate() {
            shard.weights.copy_from_slice(&flat[self.spec.range(s)]);
        }
    }

    /// Formula 8 across all shards: each shard applies its slice, so
    /// every per-shard version counter advances by one.
    pub fn apply_grad(&mut self, grads: &[f32], lr: f32) {
        assert_eq!(grads.len(), self.spec.len(), "gradient length mismatch");
        for (s, shard) in self.shards.iter_mut().enumerate() {
            shard.apply_grad(&grads[self.spec.range(s)], lr);
        }
    }

    /// DC-ASGD's Formula 3 across all shards, against the per-shard
    /// slices of the pushing worker's backup.
    pub fn apply_grad_dc(&mut self, grads: &[f32], lr: f32, lambda: f32, w_bak: &[f32]) {
        assert_eq!(grads.len(), self.spec.len(), "gradient length mismatch");
        assert_eq!(w_bak.len(), self.spec.len(), "backup length mismatch");
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let r = self.spec.range(s);
            shard.apply_grad_dc(&grads[r.clone()], lr, lambda, &w_bak[r]);
        }
    }

    /// SSGD's averaged update (Formula 1) across all shards.
    pub fn apply_grad_avg(&mut self, grads: &[Vec<f32>], lr: f32) {
        assert!(!grads.is_empty());
        for g in grads {
            assert_eq!(g.len(), self.spec.len(), "gradient length mismatch");
        }
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let r = self.spec.range(s);
            let slices: Vec<Vec<f32>> = grads.iter().map(|g| g[r.clone()].to_vec()).collect();
            shard.apply_grad_avg(&slices, lr);
        }
    }

    /// Merged arrival log (lead shard): "Append m to iter" and derive the
    /// actual step count since `m`'s previous arrival.
    pub fn log_arrival(&mut self, m: usize) -> u64 {
        self.shards[0].log_arrival(m)
    }

    /// Forgets worker `m`'s arrival history (worker rejoin).
    pub fn reset_arrival(&mut self, m: usize) {
        self.shards[0].reset_arrival(m);
    }

    /// Merged per-worker version-at-last-arrival, for checkpointing.
    pub fn arrival_state(&self) -> Vec<Option<u64>> {
        self.shards[0].arrival_state()
    }

    /// Restores the merged arrival bookkeeping.
    pub fn restore_arrival_state(&mut self, state: &[Option<u64>]) -> Result<(), String> {
        self.shards[0].restore_arrival_state(state)
    }

    /// Absorbs a worker's BN statistics into the merged (lead-shard) BN
    /// state.
    pub fn absorb_bn(&mut self, worker_running: &BnState, batch: &[BnBatchStats]) {
        self.shards[0].absorb_bn(worker_running, batch);
    }

    /// The merged BN state.
    pub fn bn(&self) -> &BnState {
        &self.shards[0].bn
    }

    /// Overwrites the merged BN state (restore paths).
    pub fn set_bn(&mut self, bn: BnState) {
        self.shards[0].bn = bn;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcasgd_nn::mlp::mlp;
    use lcasgd_tensor::Rng;

    #[test]
    fn even_split_covers_everything_once() {
        for (len, n) in [(10, 1), (10, 3), (64, 64), (7, 7), (1000, 6)] {
            let spec = ShardSpec::even(len, n).unwrap();
            assert_eq!(spec.count(), n);
            assert_eq!(spec.len(), len);
            let mut covered = 0;
            for s in 0..n {
                let r = spec.range(s);
                assert_eq!(r.start, covered, "shards must be contiguous");
                assert!(!r.is_empty(), "no shard may be empty");
                covered = r.end;
            }
            assert_eq!(covered, len);
            // Even to within one element.
            let sizes: Vec<usize> = (0..n).map(|s| spec.range(s).len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "uneven split {sizes:?}");
        }
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        assert!(ShardSpec::even(10, 0).is_err());
        assert!(ShardSpec::even(3, 4).is_err(), "more shards than weights");
        assert!(ShardSpec::even(100, ShardSpec::MAX_SHARDS + 1).is_err());
    }

    #[test]
    fn split_and_assemble_roundtrip() {
        let spec = ShardSpec::even(11, 4).unwrap();
        let flat: Vec<f32> = (0..11).map(|i| i as f32).collect();
        let parts = spec.split(&flat);
        assert_eq!(parts.len(), 4);
        assert_eq!(spec.assemble(&parts), flat);
    }

    fn group(n: usize) -> ShardGroup {
        let mut rng = Rng::seed_from_u64(77);
        let net = mlp(&[4, 6, 2], false, &mut rng);
        ShardGroup::new(&net, 2, BnMode::Regular, 0.5, n).unwrap()
    }

    #[test]
    fn sharded_apply_matches_unsharded() {
        let mut one = group(1);
        let mut four = group(4);
        assert_eq!(one.assembled_weights(), four.assembled_weights());
        let g: Vec<f32> = (0..one.spec().len()).map(|i| (i % 7) as f32 * 0.01).collect();
        one.apply_grad(&g, 0.1);
        four.apply_grad(&g, 0.1);
        assert_eq!(one.assembled_weights(), four.assembled_weights());
        assert_eq!(four.version(), 1);
        assert_eq!(four.versions(), vec![1; 4], "per-shard counters advance in lockstep");

        let bak = one.assembled_weights();
        one.apply_grad_dc(&g, 0.1, 0.04, &bak);
        four.apply_grad_dc(&g, 0.1, 0.04, &bak);
        assert_eq!(one.assembled_weights(), four.assembled_weights());

        one.apply_grad_avg(&[g.clone(), bak.clone()], 0.1);
        four.apply_grad_avg(&[g, bak], 0.1);
        assert_eq!(one.assembled_weights(), four.assembled_weights());
        assert_eq!(four.versions(), vec![3; 4]);
    }

    #[test]
    fn load_weights_roundtrips_through_shards() {
        let mut g = group(3);
        let flat: Vec<f32> = (0..g.spec().len()).map(|i| i as f32 * 0.5).collect();
        g.load_weights(&flat);
        assert_eq!(g.assembled_weights(), flat);
    }

    #[test]
    fn restore_versions_validates_shard_count() {
        let mut g = group(3);
        assert!(g.restore_versions(&[5, 5]).is_err());
        g.restore_versions(&[5, 5, 5]).unwrap();
        assert_eq!(g.version(), 5);
    }
}
