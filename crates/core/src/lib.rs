//! # lcasgd-core
//!
//! The paper's contribution and its baselines:
//!
//! * [`predictor`] — the two online-trained LSTM predictors that define
//!   LC-ASGD: the **loss predictor** (Algorithm 3) forecasting the global
//!   loss `k` steps ahead, and the **step predictor** (Algorithm 4)
//!   forecasting how many other updates will land while a worker computes;
//! * [`server`] — the parameter server (Algorithm 2): weight updates
//!   (Formula 8), the `iter` arrival log, and BN statistics accumulation
//!   (Formulas 6–7 for Async-BN);
//! * [`shard`] — the sharded parameter server: [`shard::ShardSpec`]
//!   partitioning the flat weight vector into contiguous ranges and
//!   [`shard::ShardGroup`] running one per-shard server instance behind
//!   the serialized event loop, with merged (lead-shard) bookkeeping;
//! * [`worker`] — the worker-side computation (Algorithm 1): pull, forward
//!   with BN-stat recording, compensated backward (Formula 5), push;
//! * [`algorithms`] — SGD / SSGD / ASGD / DC-ASGD / LC-ASGD selection;
//! * [`compensation`] — the three readings of Formula 5 (see DESIGN.md §1);
//! * [`trainer`] — experiment drivers over the discrete-event cluster
//!   simulator, plus [`trainer::run_cluster`]: the same five algorithms
//!   over any [`ClusterBackend`](lcasgd_simcluster::ClusterBackend)
//!   (simulator, real threads, or TCP sockets);
//! * [`protocol`] — the wire encoding of the pull / push-state / push-grad
//!   messages those backends carry;
//! * [`supervisor`] — the self-healing health state machine: divergence
//!   sentinels with quarantine and rollback, staleness admission control
//!   (reject / clip / requeue) with straggler resharding, and the graded
//!   LC→DC→ASGD fallback ladder;
//! * [`metrics`] — epoch records, staleness, predictor traces, overheads,
//!   transport statistics;
//! * [`trace`] — the observability layer: phase-tagged span events from
//!   every backend on an explicit clock domain, with Chrome-trace,
//!   Prometheus-text and per-epoch-summary exporters.

pub mod algorithms;
pub mod bnmode;
pub mod checkpoint;
pub mod comm;
pub mod compensation;
pub mod config;
pub mod metrics;
pub mod predictor;
pub mod protocol;
pub mod replication;
pub mod server;
pub mod shard;
pub mod supervisor;
pub mod trace;
pub mod trainer;
pub mod worker;

pub use algorithms::Algorithm;
pub use bnmode::BnMode;
pub use checkpoint::TrainingCheckpoint;
pub use comm::Compression;
pub use compensation::CompensationMode;
pub use config::{CostModel, ExperimentConfig, NetTuning, Scale};
pub use metrics::{EpochRecord, FaultReport, OverheadStats, PredictorTrace, RunResult};
pub use protocol::{ClusterReq, ClusterResp};
pub use replication::{
    EpochFence, Lease, LogRecord, PushVerdict, ReplicaPayload, ReplicationReport, StandbyConfig,
    StandbyReplica,
};
pub use shard::{ShardGroup, ShardSpec};
pub use supervisor::{
    AdmissionPolicy, AlgoMode, HealthEvent, HealthReport, Supervisor, SupervisorConfig,
};
pub use trace::{ClockDomain, TraceEvent, TraceFormat, TraceLog, TraceSink};
