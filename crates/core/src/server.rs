//! The parameter server (paper Algorithm 2).

use crate::bnmode::BnMode;
use lcasgd_autograd::ops::norm::BnBatchStats;
use lcasgd_nn::network::BnState;
use lcasgd_nn::Network;

/// Server-side state: the canonical weights, the global BN statistics,
/// the update counter `t`, and the `iter` arrival log.
pub struct ParameterServer {
    /// Flat canonical weights `w_t`.
    pub weights: Vec<f32>,
    /// Global BN running statistics (`E_z`, `Var_z` per layer).
    pub bn: BnState,
    /// Update counter `t` (number of applied gradients).
    pub version: u64,
    /// Arrival log: which worker's results arrived, in order ("iter").
    pub iter: Vec<usize>,
    /// Per-worker version at their previous logged arrival (for deriving
    /// the actual step count `k_m`).
    last_arrival_version: Vec<Option<u64>>,
    bn_mode: BnMode,
    /// Momentum `d` of Formulas 6–7.
    bn_momentum: f32,
}

impl ParameterServer {
    /// Initializes from the canonical network's weights and BN state.
    pub fn new(net: &Network, num_workers: usize, bn_mode: BnMode, bn_momentum: f32) -> Self {
        ParameterServer {
            weights: net.flat_params(),
            bn: net.bn_state(),
            version: 0,
            iter: Vec::new(),
            last_arrival_version: vec![None; num_workers],
            bn_mode,
            bn_momentum,
        }
    }

    /// Formula 8: `w_{t+1} = w_t − γ·g_m`.
    pub fn apply_grad(&mut self, grads: &[f32], lr: f32) {
        assert_eq!(grads.len(), self.weights.len(), "gradient length mismatch");
        for (w, &g) in self.weights.iter_mut().zip(grads) {
            *w -= lr * g;
        }
        self.version += 1;
    }

    /// DC-ASGD's Formula 3:
    /// `w_{t+τ+1} = w_{t+τ} − γ·(g + λ·g⊙g⊙(w_{t+τ} − w_bak))`.
    /// `w_bak` is the snapshot the pushing worker pulled.
    pub fn apply_grad_dc(&mut self, grads: &[f32], lr: f32, lambda: f32, w_bak: &[f32]) {
        assert_eq!(grads.len(), self.weights.len());
        assert_eq!(w_bak.len(), self.weights.len());
        for ((w, &g), &b) in self.weights.iter_mut().zip(grads).zip(w_bak) {
            let compensated = g + lambda * g * g * (*w - b);
            *w -= lr * compensated;
        }
        self.version += 1;
    }

    /// Averages M gradients and applies one update (SSGD, Formula 1).
    pub fn apply_grad_avg(&mut self, grads: &[Vec<f32>], lr: f32) {
        assert!(!grads.is_empty());
        let scale = lr / grads.len() as f32;
        for g in grads {
            assert_eq!(g.len(), self.weights.len());
        }
        for (i, w) in self.weights.iter_mut().enumerate() {
            let sum: f32 = grads.iter().map(|g| g[i]).sum();
            *w -= scale * sum;
        }
        self.version += 1;
    }

    /// Logs worker `m`'s result arrival ("Append m to iter") and returns
    /// the number of server updates since `m`'s previous arrival — the
    /// *actual* step count used as the step predictor's training label.
    pub fn log_arrival(&mut self, m: usize) -> u64 {
        self.iter.push(m);
        let actual = self.last_arrival_version[m].map(|v| self.version - v).unwrap_or(0);
        self.last_arrival_version[m] = Some(self.version);
        actual
    }

    /// Forgets worker `m`'s arrival history. Called when a crashed worker
    /// rejoins: its next arrival is the restarted process's *first*, so
    /// the derived step count must restart from "no history" instead of
    /// spanning the crash (Algorithm 2's `k_m` bookkeeping per worker).
    pub fn reset_arrival(&mut self, m: usize) {
        self.last_arrival_version[m] = None;
    }

    /// Per-worker version-at-last-arrival, for checkpointing.
    pub fn arrival_state(&self) -> Vec<Option<u64>> {
        self.last_arrival_version.clone()
    }

    /// Restores the arrival bookkeeping captured by
    /// [`ParameterServer::arrival_state`]. Errs on a worker-count
    /// mismatch (e.g. a checkpoint taken with a different `--workers`)
    /// instead of aborting, so the caller can surface the mismatch
    /// through checkpoint load.
    pub fn restore_arrival_state(&mut self, state: &[Option<u64>]) -> Result<(), String> {
        if state.len() != self.last_arrival_version.len() {
            return Err(format!(
                "checkpoint arrival state covers {} workers but the run has {}; \
                 resume with --workers {} or start fresh",
                state.len(),
                self.last_arrival_version.len(),
                state.len()
            ));
        }
        self.last_arrival_version = state.to_vec();
        Ok(())
    }

    /// Absorbs a worker's BN statistics into the global state.
    ///
    /// * Regular BN: replace with the worker's local running stats
    ///   (`worker_running`) — last writer wins (paper §5.3).
    /// * Async-BN: EMA-accumulate the worker's *batch* stats with momentum
    ///   `d` (Formulas 6–7).
    pub fn absorb_bn(&mut self, worker_running: &BnState, batch: &[BnBatchStats]) {
        match self.bn_mode {
            BnMode::Regular => {
                self.bn = worker_running.clone();
            }
            BnMode::Async => {
                assert_eq!(batch.len(), self.bn.means.len(), "BN layer-count mismatch");
                let d = self.bn_momentum;
                for (i, s) in batch.iter().enumerate() {
                    self.bn.means[i].scale_add_inplace(1.0 - d, &s.mean, d);
                    self.bn.vars[i].scale_add_inplace(1.0 - d, &s.var, d);
                }
            }
        }
    }

    /// The BN handling mode.
    pub fn bn_mode(&self) -> BnMode {
        self.bn_mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcasgd_nn::mlp::mlp;
    use lcasgd_tensor::{Rng, Tensor};

    fn server(bn_mode: BnMode) -> ParameterServer {
        let mut rng = Rng::seed_from_u64(221);
        let net = mlp(&[4, 6, 2], true, &mut rng);
        ParameterServer::new(&net, 3, bn_mode, 0.5)
    }

    #[test]
    fn formula8_update() {
        let mut s = server(BnMode::Async);
        let w0 = s.weights[0];
        let mut g = vec![0.0; s.weights.len()];
        g[0] = 2.0;
        s.apply_grad(&g, 0.1);
        assert!((s.weights[0] - (w0 - 0.2)).abs() < 1e-7);
        assert_eq!(s.version, 1);
    }

    #[test]
    fn formula3_dc_compensation() {
        let mut s = server(BnMode::Async);
        let n = s.weights.len();
        // Set a known state: w = 1, g = 1, w_bak = 0 → compensated = 1 + λ·1·1·1.
        s.weights = vec![1.0; n];
        let g = vec![1.0; n];
        let bak = vec![0.0; n];
        s.apply_grad_dc(&g, 0.1, 0.5, &bak);
        // w = 1 − 0.1·(1 + 0.5) = 0.85
        assert!((s.weights[0] - 0.85).abs() < 1e-6);
    }

    #[test]
    fn dc_equals_plain_when_no_drift() {
        // w_bak == w → compensation vanishes.
        let mut a = server(BnMode::Async);
        let mut b = server(BnMode::Async);
        let g: Vec<f32> = (0..a.weights.len()).map(|i| (i % 5) as f32 * 0.1).collect();
        let bak = a.weights.clone();
        a.apply_grad_dc(&g, 0.2, 0.7, &bak);
        b.apply_grad(&g, 0.2);
        for (x, y) in a.weights.iter().zip(&b.weights) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn averaged_update_matches_mean() {
        let mut s = server(BnMode::Async);
        let n = s.weights.len();
        let w0 = s.weights.clone();
        let g1 = vec![1.0; n];
        let g2 = vec![3.0; n];
        s.apply_grad_avg(&[g1, g2], 0.1);
        for (w, w0) in s.weights.iter().zip(&w0) {
            assert!((w - (w0 - 0.2)).abs() < 1e-6); // mean grad = 2, lr 0.1
        }
    }

    #[test]
    fn arrival_log_derives_steps() {
        let mut s = server(BnMode::Async);
        let g = vec![0.0; s.weights.len()];
        assert_eq!(s.log_arrival(0), 0); // first arrival: no history
        s.apply_grad(&g, 0.1);
        s.apply_grad(&g, 0.1);
        // Worker 1 interleaves — irrelevant to worker 0's count.
        assert_eq!(s.log_arrival(1), 0);
        s.apply_grad(&g, 0.1);
        assert_eq!(s.log_arrival(0), 3); // three updates since its last arrival
        assert_eq!(s.iter, vec![0, 1, 0]);
    }

    #[test]
    fn restore_arrival_state_rejects_worker_count_mismatch() {
        let mut s = server(BnMode::Async); // 3 workers
        let err = s.restore_arrival_state(&[Some(4), None]).unwrap_err();
        assert!(err.contains("2 workers"), "{err}");
        assert!(err.contains("has 3"), "{err}");
        // Matching count restores and is observable through log_arrival.
        s.restore_arrival_state(&[Some(0), None, None]).unwrap();
        let g = vec![0.0; s.weights.len()];
        s.apply_grad(&g, 0.1);
        assert_eq!(s.log_arrival(0), 1, "restored history survives the roundtrip");
    }

    #[test]
    fn regular_bn_replaces() {
        let mut s = server(BnMode::Regular);
        let mut running = s.bn.clone();
        running.means[0] = Tensor::full(&[6], 9.0);
        s.absorb_bn(&running, &[]);
        assert_eq!(s.bn.means[0].data(), &[9.0; 6]);
    }

    #[test]
    fn async_bn_accumulates_formulas_6_7() {
        let mut s = server(BnMode::Async); // d = 0.5, initial mean 0, var 1
        let batch =
            vec![BnBatchStats { mean: Tensor::full(&[6], 4.0), var: Tensor::full(&[6], 3.0) }];
        let dummy_running = s.bn.clone();
        s.absorb_bn(&dummy_running, &batch);
        // E = 0.5·0 + 0.5·4 = 2 ; Var = 0.5·1 + 0.5·3 = 2
        assert_eq!(s.bn.means[0].data(), &[2.0; 6]);
        assert_eq!(s.bn.vars[0].data(), &[2.0; 6]);
        s.absorb_bn(&dummy_running, &batch);
        assert_eq!(s.bn.means[0].data(), &[3.0; 6]);
    }
}
